//! Crash-point certification sweep (`figures -- crash`, writes
//! `BENCH_crash.json` + `JOURNAL_crash.bin`).
//!
//! The control plane is one coordinator process; this sweep certifies
//! that losing it at *any* journal instant is recoverable. Two
//! representative fixed-seed scenarios run crash-free first to establish
//! the baseline journal, then the coordinator is killed at every journal
//! record index (the smoke subset strides the same ladder) and resumed:
//!
//! * **frozen-ladder** — Q95/S3 under seeded object loss plus a mid-job
//!   whole-server failure with failure-aware rescheduling (the full
//!   recovery ladder of the frozen engine);
//! * **adaptive-drift2x** — the adaptive engine under 2× compute drift
//!   plus object loss, where recovery must also replay journaled replan
//!   splices without re-optimizing.
//!
//! Every crash point asserts the recovered run is **bit-identical** to
//! the crash-free run (final metrics, task timelines, attempt history,
//! replan decisions), that the resumed journal passes
//! [`ditto_exec::validate_journal`], that the recovered run's telemetry
//! certifies race-free under [`ditto_audit::check_trace`], and that the
//! journal ↔ trace [`ditto_exec::cross_check`] is clean. Recovery
//! overhead is bounded by construction — checkpointed stages restore
//! instead of re-simulating — and the sweep reports the realized
//! re-simulation counts so the regression gate can hold the line.

use crate::setup::prepare;
use ditto_audit::RaceOptions;
use ditto_cluster::{ResourceManager, ServerId};
use ditto_core::{DittoScheduler, JointOptions, Objective, Schedule};
use ditto_exec::{
    cross_check, decode_journal, simulate, try_simulate_adaptive_journaled,
    try_simulate_with_faults_journaled, validate_journal, AdaptiveConfig, ExecError,
    ExecutionTrace, FaultPlan, FaultRates, JobMetrics, JournalSession, RecoveryPolicy,
    ReschedulingContext,
};
use ditto_obs::{Recorder, TraceData};
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;

/// Seed naming the fault history of both scenarios.
pub const CRASH_SEED: u64 = 31;
/// Smoke subset: at most this many crash points per scenario.
pub const CRASH_SMOKE_POINTS: u64 = 8;

/// One scenario's crash-sweep certification summary.
#[derive(Debug, Clone, Serialize)]
pub struct CrashSweepRow {
    /// Scenario name (`frozen-ladder` / `adaptive-drift2x`).
    pub scenario: String,
    /// Records in the crash-free baseline journal.
    pub journal_records: u64,
    /// Crash points exercised (= records for the full sweep).
    pub crash_points: u64,
    /// Baseline (and recovered — they are asserted equal) JCT, seconds.
    pub jct_seconds: f64,
    /// True iff every crash point recovered bit-identically.
    pub bit_identical: bool,
    /// True iff every resumed journal + recovered trace certified clean
    /// (journal invariants, race-freedom, journal ↔ trace cross-check).
    pub certified_clean: bool,
    /// Mean stages re-simulated per recovery (not restored from
    /// checkpoints) — the recovery-overhead headline, lower is better.
    pub mean_resim_stages: f64,
    /// Worst-case stages re-simulated across all crash points.
    pub max_resim_stages: u32,
    /// Re-delivered object commits deduplicated across all recoveries.
    pub deduped_commits: u64,
}

/// The sweep's cluster: the adaptive sweep's slot-constrained pair, so
/// drift-triggered replans have real trade-offs to move.
pub const CRASH_SLOTS: &[u32] = &[24, 16];

fn crash_cluster() -> ResourceManager {
    ResourceManager::from_free_slots(CRASH_SLOTS.to_vec())
}

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    adaptive: bool,
}

fn scenarios(dag_jct: f64) -> Vec<Scenario> {
    let loss = FaultPlan::from_rates(FaultRates {
        loss_prob: 0.05,
        ..FaultRates::none(CRASH_SEED)
    });
    vec![
        Scenario {
            name: "frozen-ladder",
            plan: loss
                .clone()
                .and_server_failure(ServerId(1), dag_jct * 0.3),
            adaptive: false,
        },
        Scenario {
            name: "adaptive-drift2x",
            plan: FaultPlan::from_rates(FaultRates {
                loss_prob: 0.02,
                ..FaultRates::none(CRASH_SEED)
            })
            .with_drift(2.0),
            adaptive: true,
        },
    ]
}

struct Harness {
    dag: ditto_dag::JobDag,
    gt: ditto_exec::GroundTruth,
    model: ditto_timemodel::JobTimeModel,
    rm: ResourceManager,
    schedule: Schedule,
}

fn harness() -> Harness {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = crash_cluster();
    let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    Harness {
        dag: p.plan.dag.clone(),
        gt: p.gt,
        model: p.model,
        rm,
        schedule,
    }
}

impl Harness {
    fn ctx(&self) -> ReschedulingContext<'_> {
        ReschedulingContext {
            model: &self.model,
            resources: &self.rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        }
    }

    fn run(
        &self,
        sc: &Scenario,
        obs: &Recorder,
        session: &mut JournalSession,
    ) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
        let policy = RecoveryPolicy::default();
        if sc.adaptive {
            try_simulate_adaptive_journaled(
                &self.dag,
                &self.schedule,
                &self.gt,
                &sc.plan,
                &policy,
                &self.ctx(),
                &AdaptiveConfig::default(),
                obs,
                session,
            )
        } else {
            try_simulate_with_faults_journaled(
                &self.dag,
                &self.schedule,
                &self.gt,
                &sc.plan,
                &policy,
                Some(&self.ctx()),
                obs,
                session,
            )
        }
    }
}

/// Full certification sweep: crash at *every* journal record index.
pub fn crash_sweep() -> Vec<CrashSweepRow> {
    crash_sweep_with(None)
}

/// CI smoke subset: the same ladder strided down to at most
/// [`CRASH_SMOKE_POINTS`] crash points per scenario.
pub fn crash_sweep_smoke() -> Vec<CrashSweepRow> {
    crash_sweep_with(Some(CRASH_SMOKE_POINTS))
}

fn crash_sweep_with(max_points: Option<u64>) -> Vec<CrashSweepRow> {
    let h = harness();
    let (_, base) = simulate(&h.dag, &h.schedule, &h.gt);
    let mut rows = Vec::new();
    for sc in scenarios(base.jct) {
        let mut clean = JournalSession::fresh(None);
        let (bt, bm) = h
            .run(&sc, &Recorder::disabled(), &mut clean)
            .expect("crash-free journaled run");
        let total = clean.records_written();
        let v = validate_journal(&decode_journal(clean.durable_bytes()).unwrap().records);
        assert!(v.is_empty(), "{}: baseline journal dirty: {v:?}", sc.name);

        let stride = match max_points {
            Some(m) if total > m => total.div_ceil(m),
            _ => 1,
        };
        let n_stages = h.dag.num_stages() as u32;
        let mut bit_identical = true;
        let mut certified_clean = true;
        let mut resim: Vec<u32> = Vec::new();
        let mut deduped = 0u64;
        let mut points = 0u64;
        for k in (0..total).step_by(stride as usize) {
            points += 1;
            let mut armed = JournalSession::fresh(Some(k));
            let err = h
                .run(&sc, &Recorder::disabled(), &mut armed)
                .expect_err("armed crash must kill the run");
            assert!(
                matches!(err, ExecError::CoordinatorCrash { at_record } if at_record == k),
                "{}: crash point {k} surfaced {err}",
                sc.name
            );
            let mut resumed =
                JournalSession::resume(armed.durable_bytes()).expect("torn journal resumes");
            let obs = Recorder::new();
            let (rt, rm2) = h
                .run(&sc, &obs, &mut resumed)
                .expect("recovery must terminate");
            let trace = obs.finish();
            if rm2 != bm || rt.tasks != bt.tasks || rt.attempts != bt.attempts
                || rt.replans != bt.replans
            {
                bit_identical = false;
            }
            certified_clean &= certify(&resumed, &trace);
            resim.push(n_stages - resumed.restored_stages());
            deduped += resumed.deduped();
        }
        rows.push(CrashSweepRow {
            scenario: sc.name.to_string(),
            journal_records: total,
            crash_points: points,
            jct_seconds: bm.jct,
            bit_identical,
            certified_clean,
            mean_resim_stages: resim.iter().map(|&r| r as f64).sum::<f64>()
                / resim.len().max(1) as f64,
            max_resim_stages: resim.iter().copied().max().unwrap_or(0),
            deduped_commits: deduped,
        });
    }
    rows
}

/// The three certificates every recovered run must pass: journal
/// invariants, race-freedom of the recovered telemetry, and the
/// journal ↔ trace cross-check.
fn certify(session: &JournalSession, trace: &TraceData) -> bool {
    let decoded = match decode_journal(session.durable_bytes()) {
        Ok(d) => d,
        Err(_) => return false,
    };
    if decoded.torn.is_some() || !validate_journal(&decoded.records).is_empty() {
        return false;
    }
    if !cross_check(&decoded.records, trace).is_empty() {
        return false;
    }
    let race = ditto_audit::check_trace(
        trace,
        &RaceOptions {
            capacities: Some(CRASH_SLOTS.to_vec()),
            ..Default::default()
        },
    );
    race.is_clean()
}

/// The recovered-run exemplar for `figures -- crash --trace-out` and the
/// CI double-run byte-identity check: crash the adaptive scenario at the
/// middle journal record, resume with a live recorder, and return the
/// recovered run's trace plus the final (resumed) journal bytes.
/// Simulation timestamps are sim-time and the scheduler spans of the
/// live replan run on a [`Recorder::deterministic`] virtual clock, so
/// the exported artifact is byte-reproducible run over run.
pub fn traced_crash_recovery() -> (TraceData, Vec<u8>) {
    let h = harness();
    let (_, base) = simulate(&h.dag, &h.schedule, &h.gt);
    let sc = scenarios(base.jct)
        .into_iter()
        .find(|s| s.adaptive)
        .expect("adaptive scenario exists");
    let mut clean = JournalSession::fresh(None);
    h.run(&sc, &Recorder::disabled(), &mut clean)
        .expect("crash-free journaled run");
    let mid = clean.records_written() / 2;
    let mut armed = JournalSession::fresh(Some(mid));
    h.run(&sc, &Recorder::disabled(), &mut armed)
        .expect_err("armed crash");
    let mut resumed = JournalSession::resume(armed.durable_bytes()).expect("resume");
    let obs = Recorder::deterministic();
    h.run(&sc, &obs, &mut resumed).expect("recovery");
    (obs.finish(), resumed.durable_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_smoke_certifies_every_point() {
        let rows = crash_sweep_smoke();
        assert_eq!(rows.len(), 2, "both scenarios swept");
        for r in &rows {
            assert!(r.journal_records > 4, "{r:?}");
            assert!(r.crash_points > 0 && r.crash_points <= CRASH_SMOKE_POINTS + 1);
            assert!(r.bit_identical, "recovery diverged: {r:?}");
            assert!(r.certified_clean, "certification failed: {r:?}");
            assert!(
                r.mean_resim_stages <= r.max_resim_stages as f64 + 1e-12,
                "{r:?}"
            );
        }
        // The adaptive scenario must have exercised replan replay.
        let ad = rows.iter().find(|r| r.scenario == "adaptive-drift2x").unwrap();
        assert!(ad.deduped_commits > 0, "commit dedup never exercised: {ad:?}");
    }

    #[test]
    fn traced_recovery_artifact_is_deterministic() {
        let (a, ja) = traced_crash_recovery();
        let (b, jb) = traced_crash_recovery();
        assert_eq!(
            ditto_obs::to_chrome_trace(&a),
            ditto_obs::to_chrome_trace(&b),
            "recovered-run trace must export byte-identically"
        );
        assert_eq!(ja, jb, "recovered journal must be byte-identical");
        // The recovered trace announces the resume on the scheduler track.
        assert!(a.events.iter().any(|e| e.name == "recovery.resume"));
    }
}
