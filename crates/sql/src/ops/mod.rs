//! Relational operators: join, group-by, distinct, sort-limit.
//!
//! Filter and projection live on [`crate::table::Table`] directly
//! (`filter`, `project`); this module holds the operators with real
//! algorithmic content. All operators are deterministic: outputs are in a
//! stable row order so distributed runs can be compared to single-threaded
//! references.

pub mod group_by;
pub mod join;
pub mod sort;
pub mod union;

pub use group_by::{group_by, AggSpec};
pub use join::{hash_join, JoinKind};
pub use sort::{distinct, sort_limit, SortOrder};
pub use union::{union, union_all};
