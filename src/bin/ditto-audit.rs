//! `ditto-audit` — schedule a JSON job spec and certify the result.
//!
//! ```sh
//! ditto-audit job.json                    # schedule + audit, human report
//! cat job.json | ditto-audit              # spec on stdin
//! ditto-audit --json job.json             # machine-readable report
//! ditto-audit --deadline 120 job.json     # also check a JCT deadline
//! ditto-audit --cost-budget 5e6 job.json  # also check a GB·s budget
//! ```
//!
//! Runs the full certificate chain of `ditto_audit` on the schedule the
//! joint optimizer produces for the spec: structural sanity, stage-group
//! well-formedness, placement feasibility, colocation claims, DoP-ratio
//! optimality (Eqs. 3–4) and, with the flags above, objective adherence.
//! Exits 0 iff the schedule is certified (no error-severity findings),
//! 1 on audit errors, 2 on a malformed spec or bad flags.

use ditto::jobspec::JobSpec;
use ditto_audit::AuditOptions;
use std::io::Read as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag(&mut args, "--json");
    let deadline = take_value(&mut args, "--deadline");
    let cost_budget = take_value(&mut args, "--cost-budget");

    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ditto-audit [--json] [--deadline SECS] [--cost-budget GBS] <job.json>"
        );
        std::process::exit(2);
    }
    let text = match args.first().map(|s| s.as_str()) {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ditto-audit: cannot read {path:?}: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("ditto-audit: failed to read stdin");
                std::process::exit(2);
            }
            buf
        }
    };

    let spec = match JobSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ditto-audit: {e}");
            std::process::exit(2);
        }
    };
    let (dag, model, rm, objective) = match spec.lower() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("ditto-audit: {e}");
            std::process::exit(2);
        }
    };
    let schedule = ditto_core::joint_optimize(
        &dag,
        &model,
        &rm,
        objective,
        &ditto_core::JointOptions::default(),
    );
    let opts = AuditOptions {
        deadline,
        cost_budget,
        ..Default::default()
    };
    let report = ditto_audit::audit_with(&dag, &model, &rm, &schedule, &opts);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let had = args.iter().any(|a| a == name);
    args.retain(|a| a != name);
    had
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<f64> {
    let i = args.iter().position(|a| a == name)?;
    args.remove(i);
    if i >= args.len() {
        eprintln!("ditto-audit: {name} needs a numeric argument");
        std::process::exit(2);
    }
    let raw = args.remove(i);
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Some(v),
        _ => {
            eprintln!("ditto-audit: {name} needs a positive number, got {raw:?}");
            std::process::exit(2);
        }
    }
}
