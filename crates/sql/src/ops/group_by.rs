//! Group-by aggregation with HAVING support.

use crate::column::{Column, DataType};
use crate::expr::Pred;
use crate::table::{Field, Schema, Table};
use std::collections::{HashMap, HashSet};

/// An aggregate over one input column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (ignored for `Count`).
    pub input: String,
    /// Output column name.
    pub output: String,
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (`COUNT(*)`), output i64.
    Count,
    /// Distinct values of the input column, output i64.
    CountDistinct,
    /// Sum of a numeric column, output f64.
    Sum,
    /// Mean of a numeric column, output f64.
    Avg,
    /// Minimum of a numeric column, output f64.
    Min,
    /// Maximum of a numeric column, output f64.
    Max,
}

impl AggSpec {
    /// `COUNT(*) AS output`.
    pub fn count(output: &str) -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: String::new(),
            output: output.into(),
        }
    }

    /// `FUNC(input) AS output`.
    pub fn new(func: AggFunc, input: &str, output: &str) -> Self {
        AggSpec {
            func,
            input: input.into(),
            output: output.into(),
        }
    }
}

/// Hashable composite group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    I(i64),
    S(String),
}

fn key_of(cols: &[&Column], row: usize) -> Vec<KeyPart> {
    cols.iter()
        .map(|c| match c {
            Column::I64(v) => KeyPart::I(v[row]),
            Column::Str(v) => KeyPart::S(v[row].clone()),
            Column::F64(_) => panic!("cannot group by a float column"),
        })
        .collect()
}

fn numeric_at(col: &Column, row: usize) -> f64 {
    match col {
        Column::I64(v) => v[row] as f64,
        Column::F64(v) => v[row],
        Column::Str(_) => panic!("numeric aggregate over a string column"),
    }
}

/// Distinct-tracking needs hashable values; floats are hashed by bits.
fn distinct_key(col: &Column, row: usize) -> KeyPart {
    match col {
        Column::I64(v) => KeyPart::I(v[row]),
        Column::F64(v) => KeyPart::I(v[row].to_bits() as i64),
        Column::Str(v) => KeyPart::S(v[row].clone()),
    }
}

/// `SELECT keys, aggs FROM t GROUP BY keys [HAVING having]`.
///
/// With empty `keys`, computes a single global aggregate row (0 rows when
/// the input is empty, matching SQL's behaviour for grouped aggregates).
/// Output rows are ordered by first appearance of the group in the input —
/// deterministic for comparing distributed and reference runs.
///
/// ```
/// use ditto_sql::column::{Column, DataType};
/// use ditto_sql::ops::{group_by, AggSpec};
/// use ditto_sql::ops::group_by::AggFunc;
/// use ditto_sql::table::{Schema, Table};
///
/// let t = Table::new(
///     Schema::new(&[("store", DataType::I64), ("amt", DataType::F64)]),
///     vec![Column::I64(vec![1, 2, 1]), Column::F64(vec![10.0, 5.0, 30.0])],
/// );
/// let g = group_by(&t, &["store"], &[AggSpec::new(AggFunc::Sum, "amt", "total")], None);
/// assert_eq!(g.column_req("store").as_i64(), &[1, 2]);
/// assert_eq!(g.column_req("total").as_f64(), &[40.0, 5.0]);
/// ```
pub fn group_by(t: &Table, keys: &[&str], aggs: &[AggSpec], having: Option<&Pred>) -> Table {
    let key_cols: Vec<&Column> = keys.iter().map(|k| t.column_req(k)).collect();
    // group key → (first-appearance index, rows)
    let mut groups: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
    let mut order: Vec<Vec<KeyPart>> = Vec::new();
    for row in 0..t.num_rows() {
        let k = key_of(&key_cols, row);
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(row);
    }

    // Assemble output columns: keys first, then aggregates.
    let mut fields: Vec<Field> = Vec::new();
    let mut out_cols: Vec<Column> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        fields.push(Field {
            name: k.to_string(),
            dtype: key_cols[i].dtype(),
        });
        let col = match key_cols[i].dtype() {
            DataType::I64 => Column::I64(
                order
                    .iter()
                    .map(|key| match &key[i] {
                        KeyPart::I(v) => *v,
                        KeyPart::S(_) => unreachable!(),
                    })
                    .collect(),
            ),
            DataType::Str => Column::Str(
                order
                    .iter()
                    .map(|key| match &key[i] {
                        KeyPart::S(v) => v.clone(),
                        KeyPart::I(_) => unreachable!(),
                    })
                    .collect(),
            ),
            DataType::F64 => unreachable!("rejected above"),
        };
        out_cols.push(col);
    }

    for spec in aggs {
        let dtype = match spec.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::I64,
            _ => DataType::F64,
        };
        fields.push(Field {
            name: spec.output.clone(),
            dtype,
        });
        let col = match spec.func {
            AggFunc::Count => Column::I64(
                order.iter().map(|k| groups[k].len() as i64).collect(),
            ),
            AggFunc::CountDistinct => {
                let input = t.column_req(&spec.input);
                Column::I64(
                    order
                        .iter()
                        .map(|k| {
                            let set: HashSet<KeyPart> =
                                groups[k].iter().map(|&r| distinct_key(input, r)).collect();
                            set.len() as i64
                        })
                        .collect(),
                )
            }
            AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max => {
                let input = t.column_req(&spec.input);
                Column::F64(
                    order
                        .iter()
                        .map(|k| {
                            let rows = &groups[k];
                            let vals = rows.iter().map(|&r| numeric_at(input, r));
                            match spec.func {
                                AggFunc::Sum => vals.sum(),
                                AggFunc::Avg => {
                                    vals.sum::<f64>() / rows.len() as f64
                                }
                                AggFunc::Min => vals.fold(f64::INFINITY, f64::min),
                                AggFunc::Max => vals.fold(f64::NEG_INFINITY, f64::max),
                                _ => unreachable!(),
                            }
                        })
                        .collect(),
                )
            }
        };
        out_cols.push(col);
    }

    let out = Table::new(Schema { fields }, out_cols);
    match having {
        Some(p) => {
            let mask = p.eval(&out);
            out.filter(&mask)
        }
        None => out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred};

    fn t() -> Table {
        Table::new(
            Schema::new(&[
                ("store", DataType::I64),
                ("cust", DataType::Str),
                ("amt", DataType::F64),
            ]),
            vec![
                Column::I64(vec![1, 1, 2, 2, 2, 1]),
                Column::Str(vec![
                    "a".into(),
                    "b".into(),
                    "a".into(),
                    "a".into(),
                    "c".into(),
                    "a".into(),
                ]),
                Column::F64(vec![10.0, 20.0, 5.0, 15.0, 30.0, 40.0]),
            ],
        )
    }

    #[test]
    fn sum_count_by_key() {
        let g = group_by(
            &t(),
            &["store"],
            &[
                AggSpec::new(AggFunc::Sum, "amt", "total"),
                AggSpec::count("n"),
            ],
            None,
        );
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.column_req("store").as_i64(), &[1, 2]); // appearance order
        assert_eq!(g.column_req("total").as_f64(), &[70.0, 50.0]);
        assert_eq!(g.column_req("n").as_i64(), &[3, 3]);
    }

    #[test]
    fn multi_key_groups() {
        let g = group_by(&t(), &["store", "cust"], &[AggSpec::count("n")], None);
        assert_eq!(g.num_rows(), 4); // (1,a)(1,b)(2,a)(2,c)
        assert_eq!(g.column_req("n").as_i64(), &[2, 1, 2, 1]);
    }

    #[test]
    fn count_distinct() {
        let g = group_by(
            &t(),
            &["store"],
            &[AggSpec::new(AggFunc::CountDistinct, "cust", "dc")],
            None,
        );
        assert_eq!(g.column_req("dc").as_i64(), &[2, 2]);
    }

    #[test]
    fn avg_min_max() {
        let g = group_by(
            &t(),
            &["store"],
            &[
                AggSpec::new(AggFunc::Avg, "amt", "avg"),
                AggSpec::new(AggFunc::Min, "amt", "min"),
                AggSpec::new(AggFunc::Max, "amt", "max"),
            ],
            None,
        );
        let avg = g.column_req("avg").as_f64();
        assert!((avg[0] - 70.0 / 3.0).abs() < 1e-9);
        assert_eq!(g.column_req("min").as_f64(), &[10.0, 5.0]);
        assert_eq!(g.column_req("max").as_f64(), &[40.0, 30.0]);
    }

    #[test]
    fn having_filters_groups() {
        let having = Pred::Cmp {
            col: "dc".into(),
            op: CmpOp::Gt,
            value: crate::column::Value::I64(1),
        };
        let g = group_by(
            &t(),
            &["store", "cust"],
            &[AggSpec::new(AggFunc::CountDistinct, "amt", "dc")],
            Some(&having),
        );
        // Only groups with >1 distinct amt: (1,a) has 10,40.
        assert_eq!(g.num_rows(), 2);
    }

    #[test]
    fn global_aggregate_empty_keys() {
        let g = group_by(&t(), &[], &[AggSpec::new(AggFunc::Sum, "amt", "s")], None);
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.column_req("s").as_f64(), &[120.0]);
    }

    #[test]
    fn empty_input_empty_output() {
        let e = Table::empty(Schema::new(&[("store", DataType::I64), ("amt", DataType::F64)]));
        let g = group_by(&e, &["store"], &[AggSpec::count("n")], None);
        assert_eq!(g.num_rows(), 0);
        let g2 = group_by(&e, &[], &[AggSpec::count("n")], None);
        assert_eq!(g2.num_rows(), 0, "grouped aggregate over empty input");
    }

    #[test]
    #[should_panic(expected = "float column")]
    fn float_group_key_rejected() {
        group_by(&t(), &["amt"], &[AggSpec::count("n")], None);
    }
}
