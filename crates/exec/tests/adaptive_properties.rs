//! Property tests for the adaptive execution engine: for arbitrary
//! random DAGs and injected faults (object loss × drift inflation), the
//! engine terminates within policy bounds, every stage still runs, every
//! recorded replan passes its feasibility certificate, and with no
//! injected faults the adaptive engine is bit-identical to the frozen
//! fault-path simulator.

use ditto_cluster::ResourceManager;
use ditto_core::{
    DittoScheduler, JointOptions, Objective, Schedule, Scheduler, SchedulingContext,
};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_dag::JobDag;
use ditto_exec::{
    try_simulate_adaptive, try_simulate_with_faults, AdaptiveConfig, ExecConfig, FaultPlan,
    FaultRates, GroundTruth, RecoveryPolicy, ReschedulingContext,
};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use proptest::prelude::*;

fn setup(dag_seed: u64, stages: usize) -> (JobDag, JobTimeModel, ResourceManager, Schedule) {
    let dag = random_dag(dag_seed, &RandomDagConfig::sized(stages));
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(vec![24, 16]);
    let schedule = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    (dag, model, rm, schedule)
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Termination and coverage: under object loss plus drift the
    /// adaptive engine finishes within policy bounds, the realized JCT is
    /// finite and positive, and every stage still executes its tasks.
    /// (b) Certification: every recorded replan is audit-clean (the
    /// engine returns an error on an uncertified splice, so reaching the
    /// trace at all means the certificate passed — asserted explicitly
    /// anyway).
    #[test]
    fn adaptive_run_terminates_and_certifies(
        dag_seed in 0u64..1024,
        stages in 4usize..9,
        loss in 0.0f64..0.15,
        drift in 1.0f64..3.0,
        fault_seed in 0u64..u64::MAX,
    ) {
        let (dag, model, rm, schedule) = setup(dag_seed, stages);
        let mut plan = FaultPlan::from_rates(FaultRates {
            loss_prob: loss,
            ..FaultRates::none(fault_seed)
        });
        if drift != 1.0 {
            plan = plan.with_drift(drift);
        }
        let ctx = ReschedulingContext {
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let gt = GroundTruth::new(ExecConfig::default());
        let (trace, metrics) = try_simulate_adaptive(
            &dag, &schedule, &gt, &plan, &policy(), &ctx, &AdaptiveConfig::default(),
        ).expect("bounded fault rates must recover within policy bounds");

        prop_assert!(metrics.jct.is_finite() && metrics.jct > 0.0);
        for s in dag.stages() {
            let tasks = trace.tasks.iter().filter(|t| t.stage == s.id.0).count();
            prop_assert!(tasks > 0, "stage {} never ran", s.name);
        }
        for r in &trace.replans {
            prop_assert!(r.audit_clean, "uncertified replan on the trace: {r:?}");
            prop_assert!(r.old_predicted_jct.is_finite() && r.new_predicted_jct.is_finite());
            prop_assert!(r.risk_penalty.is_finite());
        }
        prop_assert!(
            trace.replans.iter().filter(|r| r.applied).count() as u32
                <= AdaptiveConfig::default().max_replans
        );
    }

    /// (c) Identity: with unit drift and zero loss the adaptive engine
    /// must be bit-identical to the frozen fault-path simulator — same
    /// JCT, same serialized trace, zero replans.
    #[test]
    fn clean_run_is_bit_identical_to_frozen_engine(
        dag_seed in 0u64..1024,
        stages in 4usize..9,
    ) {
        let (dag, model, rm, schedule) = setup(dag_seed, stages);
        let plan = FaultPlan::none();
        let ctx = ReschedulingContext {
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let gt = GroundTruth::new(ExecConfig::default());
        let (frozen_trace, frozen) =
            try_simulate_with_faults(&dag, &schedule, &gt, &plan, &policy(), None).unwrap();
        let (adaptive_trace, adaptive) = try_simulate_adaptive(
            &dag, &schedule, &gt, &plan, &policy(), &ctx, &AdaptiveConfig::default(),
        ).unwrap();

        prop_assert!(adaptive_trace.replans.is_empty(), "clean run must not replan");
        prop_assert_eq!(adaptive.jct.to_bits(), frozen.jct.to_bits(), "JCT must be bit-identical");
        prop_assert_eq!(
            adaptive_trace.to_chrome_trace(),
            frozen_trace.to_chrome_trace(),
            "serialized traces must be identical"
        );
    }
}
