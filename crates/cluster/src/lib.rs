#![warn(missing_docs)]

//! # ditto-cluster — simulated function-server cluster
//!
//! The paper's testbed is eight 96-vCPU servers, each hosting a bounded
//! number of single-core *function slots*; the control plane sees only the
//! per-server free-slot counts. This crate reproduces that resource surface:
//!
//! * [`Server`] / [`Cluster`] — slot accounting with reserve/release;
//! * [`SlotDistribution`] — the §6.1 availability patterns: uniform slot
//!   usage (100–25 %), `Norm-1.0`/`Norm-0.8` and `Zipf-0.9`/`Zipf-0.99`
//!   per-server slot ratios;
//! * [`ResourceManager`] — snapshot + transactional allocation used by the
//!   scheduler's placement check;
//! * [`RuntimeMonitor`] — per-task runtime statistics collection (the
//!   paper's per-server runtime monitor), feeding profiles back into the
//!   execution-time model.

pub mod cluster;
pub mod distribution;
pub mod manager;
pub mod monitor;
pub mod server;

pub use cluster::Cluster;
pub use distribution::SlotDistribution;
pub use manager::ResourceManager;
pub use monitor::{DriftConfig, DriftDetector, DriftEvent, RuntimeMonitor, TaskRecord};
pub use server::{Server, ServerId};
