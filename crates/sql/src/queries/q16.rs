//! TPC-DS Q16 (simplified): catalog orders shipped within a two-month
//! window to Georgia addresses from selected call centers and never
//! returned — `COUNT(DISTINCT order)`, `SUM(ship_cost)`, `SUM(profit)`.
//!
//! Structure: a 10-stage DAG — fact scan joined against two dimension
//! broadcasts, an anti-join against the returns table (the `NOT EXISTS`),
//! and a global aggregate. Q94 shares this skeleton on the web channel
//! (the paper picked the two precisely because their shapes rhyme while
//! their data volumes differ).

use crate::datagen::Database;
use crate::expr::Pred;
use crate::ops::group_by::{AggFunc, AggSpec};
use crate::plan::{JoinKind, QueryPlan, StageOp, StageSpec};
use crate::table::Table;
use ditto_dag::{DagBuilder, EdgeKind, StageKind};
use std::collections::HashSet;

/// Parameters distinguishing Q16 (catalog channel) from Q94 (web channel).
pub(crate) struct ShippingQueryConfig {
    pub name: &'static str,
    pub fact: &'static str,
    pub returns: &'static str,
    pub order_col: &'static str,
    pub date_col: &'static str,
    pub addr_col: &'static str,
    pub dim_col: &'static str,
    pub cost_col: &'static str,
    pub profit_col: &'static str,
    pub returns_order_col: &'static str,
    /// Secondary dimension table (call_center / web_site) + its key and
    /// the predicate restricting it.
    pub dim_table: &'static str,
    pub dim_key: &'static str,
    pub dim_pred: Pred,
    /// Ship-to state filter.
    pub state: &'static str,
    /// Date surrogate-key window.
    pub date_lo: i64,
    pub date_hi: i64,
}

/// Q16's configuration.
pub(crate) fn q16_config() -> ShippingQueryConfig {
    ShippingQueryConfig {
        name: "q16",
        fact: "catalog_sales",
        returns: "catalog_returns",
        order_col: "cs_order_number",
        date_col: "cs_ship_date_sk",
        addr_col: "cs_ship_addr_sk",
        dim_col: "cs_call_center_sk",
        cost_col: "cs_ext_ship_cost",
        profit_col: "cs_net_profit",
        returns_order_col: "cr_order_number",
        dim_table: "call_center",
        dim_key: "cc_call_center_sk",
        dim_pred: Pred::InStr {
            col: "cc_county".into(),
            set: vec![
                "Williamson County".into(),
                "Ziebach County".into(),
                "Walker County".into(),
                "Daviess County".into(),
                "Barrow County".into(),
                "Luce County".into(),
            ],
        },
        state: "GA",
        // Year 2002 (day index 1460..1824 → sk 1461..1825). TPC-DS uses a
        // 60-day window; at laptop-scale row counts that selects ~zero
        // rows, so the window is a full year to keep the query's output
        // non-trivial while preserving its shape.
        date_lo: 1461,
        date_hi: 1825,
    }
}

/// Build the 10-stage shipping-query plan for the given channel.
pub(crate) fn shipping_plan(cfg: &ShippingQueryConfig) -> QueryPlan {
    let dag = DagBuilder::new(cfg.name)
        .stage("fact_scan", StageKind::Map, 0, 0)
        .stage("addr_scan", StageKind::Map, 0, 0)
        .stage("join_addr", StageKind::Join, 0, 0)
        .stage("dim_scan", StageKind::Map, 0, 0)
        .stage("join_dim", StageKind::Join, 0, 0)
        .stage("ret_scan", StageKind::Map, 0, 0)
        .stage("anti_ret", StageKind::Join, 0, 0)
        .stage("dedup", StageKind::GroupBy, 0, 0)
        .stage("agg", StageKind::Reduce, 0, 0)
        .stage("final", StageKind::Reduce, 0, 0)
        .edge("fact_scan", "join_addr", EdgeKind::Gather, 0)
        .edge("addr_scan", "join_addr", EdgeKind::AllGather, 0)
        .edge("join_addr", "join_dim", EdgeKind::Gather, 0)
        .edge("dim_scan", "join_dim", EdgeKind::AllGather, 0)
        .edge("join_dim", "anti_ret", EdgeKind::Shuffle, 0)
        .edge("ret_scan", "anti_ret", EdgeKind::Shuffle, 0)
        .edge("anti_ret", "dedup", EdgeKind::Gather, 0)
        .edge("dedup", "agg", EdgeKind::Gather, 0)
        .edge("agg", "final", EdgeKind::Gather, 0)
        .build()
        .expect("shipping DAG is well-formed");

    let stages = vec![
        // fact_scan: date-windowed fact rows.
        StageSpec {
            op: StageOp::Scan {
                table: cfg.fact.into(),
                projection: vec![
                    cfg.order_col.into(),
                    cfg.addr_col.into(),
                    cfg.dim_col.into(),
                    cfg.cost_col.into(),
                    cfg.profit_col.into(),
                ],
                predicate: Some(Pred::between_i64(cfg.date_col, cfg.date_lo, cfg.date_hi)),
            },
            output_key: Some(cfg.order_col.into()),
        },
        // addr_scan: addresses in the target state.
        StageSpec {
            op: StageOp::Scan {
                table: "customer_address".into(),
                projection: vec!["ca_address_sk".into()],
                predicate: Some(Pred::eq_str("ca_state", cfg.state)),
            },
            output_key: None,
        },
        // join_addr: semi join (address broadcast).
        StageSpec {
            op: StageOp::Join {
                left: "fact_scan".into(),
                right: "addr_scan".into(),
                left_key: cfg.addr_col.into(),
                right_key: "ca_address_sk".into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some(cfg.order_col.into()),
        },
        // dim_scan: the restricted secondary dimension.
        StageSpec {
            op: StageOp::Scan {
                table: cfg.dim_table.into(),
                projection: vec![cfg.dim_key.into()],
                predicate: Some(cfg.dim_pred.clone()),
            },
            output_key: None,
        },
        // join_dim: semi join (dimension broadcast).
        StageSpec {
            op: StageOp::Join {
                left: "join_addr".into(),
                right: "dim_scan".into(),
                left_key: cfg.dim_col.into(),
                right_key: cfg.dim_key.into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some(cfg.order_col.into()),
        },
        // ret_scan: returned order numbers.
        StageSpec {
            op: StageOp::Scan {
                table: cfg.returns.into(),
                projection: vec![cfg.returns_order_col.into()],
                predicate: None,
            },
            output_key: Some(cfg.returns_order_col.into()),
        },
        // anti_ret: NOT EXISTS returns.
        StageSpec {
            op: StageOp::Join {
                left: "join_dim".into(),
                right: "ret_scan".into(),
                left_key: cfg.order_col.into(),
                right_key: cfg.returns_order_col.into(),
                kind: JoinKind::LeftAnti,
            },
            output_key: Some(cfg.order_col.into()),
        },
        // dedup: per-order partial rollup (keeps distinct-order semantics
        // additive downstream: orders are partitioned by the shuffle).
        StageSpec {
            op: StageOp::GroupBy {
                input: "anti_ret".into(),
                keys: vec![cfg.order_col.into()],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum, cfg.cost_col, "order_cost"),
                    AggSpec::new(AggFunc::Sum, cfg.profit_col, "order_profit"),
                ],
                having: None,
            },
            output_key: Some(cfg.order_col.into()),
        },
        // agg: partial global aggregate.
        StageSpec {
            op: StageOp::GroupBy {
                input: "dedup".into(),
                keys: vec![],
                aggs: vec![
                    AggSpec::count("order_count"),
                    AggSpec::new(AggFunc::Sum, "order_cost", "total_shipping_cost"),
                    AggSpec::new(AggFunc::Sum, "order_profit", "total_net_profit"),
                ],
                having: None,
            },
            output_key: None,
        },
        // final: merge partials (columnwise-additive global aggregate).
        StageSpec {
            op: StageOp::GroupBy {
                input: "agg".into(),
                keys: vec![],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum, "order_count", "order_count"),
                    AggSpec::new(AggFunc::Sum, "total_shipping_cost", "total_shipping_cost"),
                    AggSpec::new(AggFunc::Sum, "total_net_profit", "total_net_profit"),
                ],
                having: None,
            },
            output_key: None,
        },
    ];

    QueryPlan {
        name: cfg.name.into(),
        dag,
        stages,
    }
}

/// Build the Q16 plan.
pub fn plan() -> QueryPlan {
    shipping_plan(&q16_config())
}

/// The oracle result: `(distinct orders, Σ ship cost, Σ profit)`.
pub(crate) fn shipping_reference(db: &Database, cfg: &ShippingQueryConfig) -> (i64, f64, f64) {
    let fact = db.table(cfg.fact);
    let dates = fact.column_req(cfg.date_col).as_i64();
    let addrs = fact.column_req(cfg.addr_col).as_i64();
    let dims = fact.column_req(cfg.dim_col).as_i64();
    let orders = fact.column_req(cfg.order_col).as_i64();
    let costs = fact.column_req(cfg.cost_col).as_f64();
    let profits = fact.column_req(cfg.profit_col).as_f64();

    let addr_tab = db.table("customer_address");
    let good_addrs: HashSet<i64> = addr_tab
        .column_req("ca_address_sk")
        .as_i64()
        .iter()
        .zip(addr_tab.column_req("ca_state").as_str())
        .filter(|&(_, s)| s == cfg.state)
        .map(|(&a, _)| a)
        .collect();

    let dim_tab = db.table(cfg.dim_table);
    let dim_mask = cfg.dim_pred.eval(dim_tab);
    let good_dims: HashSet<i64> = dim_tab
        .column_req(cfg.dim_key)
        .as_i64()
        .iter()
        .zip(&dim_mask)
        .filter(|&(_, &m)| m)
        .map(|(&d, _)| d)
        .collect();

    let returned: HashSet<i64> = db
        .table(cfg.returns)
        .column_req(cfg.returns_order_col)
        .as_i64()
        .iter()
        .copied()
        .collect();

    let mut kept_orders = HashSet::new();
    let (mut cost, mut profit) = (0.0, 0.0);
    for i in 0..fact.num_rows() {
        if dates[i] >= cfg.date_lo
            && dates[i] <= cfg.date_hi
            && good_addrs.contains(&addrs[i])
            && good_dims.contains(&dims[i])
            && !returned.contains(&orders[i])
        {
            kept_orders.insert(orders[i]);
            cost += costs[i];
            profit += profits[i];
        }
    }
    (kept_orders.len() as i64, cost, profit)
}

/// Q16 oracle.
pub fn reference(db: &Database) -> (i64, f64, f64) {
    shipping_reference(db, &q16_config())
}

/// Extract `(count, cost, profit)` from the plan's output table.
pub fn result_triple(t: &Table) -> (i64, f64, f64) {
    if t.num_rows() == 0 {
        return (0, 0.0, 0.0);
    }
    (
        t.column_req("order_count").as_f64()[0] as i64,
        t.column_req("total_shipping_cost").as_f64()[0],
        t.column_req("total_net_profit").as_f64()[0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;

    #[test]
    fn shape_ten_stages() {
        let p = plan();
        assert_eq!(p.dag.num_stages(), 10);
        assert_eq!(p.dag.num_edges(), 9);
        assert_eq!(p.dag.initial_stages().len(), 4, "four scans");
        // Two broadcast dimensions.
        let ag = p
            .dag
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::AllGather)
            .count();
        assert_eq!(ag, 2);
    }

    #[test]
    fn plan_matches_oracle() {
        let db = Database::generate(ScaleConfig::with_sf(0.5));
        let (n, cost, profit) = reference(&db);
        assert!(n > 0, "premise: Q16 selects some orders");
        let out = plan().execute_reference(&db);
        let (gn, gc, gp) = result_triple(&out);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0), "{gc} vs {cost}");
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
    }
}
