//! Re-import exported traces as event streams.
//!
//! The race checker (`ditto-audit`) consumes a [`TraceData`] event
//! stream. In-process callers hand it a live [`crate::Recorder`] finish;
//! offline callers only have a `--trace-out` artifact — Chrome JSON or
//! JSONL. [`events_from_chrome`] and [`events_from_jsonl`] parse those
//! back into [`TraceData`] *events* (spans, counters and metrics are not
//! round-tripped: the hb analysis only reads instant events).
//!
//! [`EventRecord`] keys its name and attribute keys as `&'static str`,
//! so the importer interns against the stack's known event vocabulary
//! and skips (but counts) anything it does not recognize — a foreign or
//! future-version trace degrades to a partial import instead of an
//! error, and [`ImportStats`] says exactly how partial.

use crate::span::{AttrValue, EventRecord, TraceData, Track};
use serde_json::Value;

/// What an import managed to recover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Instant events successfully re-imported.
    pub events: usize,
    /// Events dropped because their name is not in the known vocabulary
    /// (or the record was structurally unusable).
    pub skipped_events: usize,
    /// Attributes dropped off otherwise-imported events (unknown key or
    /// non-scalar value).
    pub skipped_attrs: usize,
}

/// The stack's instant-event vocabulary. Importing interns against this
/// list because [`EventRecord::name`] is `&'static str`.
const KNOWN_EVENTS: &[&str] = &[
    "hb.write",
    "hb.read",
    "hb.slot_acquire",
    "hb.slot_release",
    "hb.seam",
    "hb.object_commit",
    "hb.object_fetch",
    "fault.object_lost",
    "fault.object_corrupt",
    "fault.crashed",
    "fault.server_lost",
    "fault.superseded",
    "recovery.lineage_reexec",
    "sched.replan",
    "sched.failover",
    "sched.merge",
    "drift.detected",
    "predictor.sample",
    "recovery.resume",
];

/// Known attribute keys, for the same interning reason.
const KNOWN_KEYS: &[&str] = &[
    "stage",
    "task",
    "server",
    "attempt",
    "edge",
    "src_stage",
    "dst_stage",
    "pipelined",
    "medium",
    "kind",
    "key",
    "write_start",
    "compute_start",
    "reader_stage",
    "reexec_s",
    "trigger",
    "at_stage",
    "at_time",
    "factor",
    "samples",
    "suffix_stages",
    "old_predicted_jct",
    "new_predicted_jct",
    "applied",
    "risk_penalty",
    "audit_clean",
    "failed_server",
    "decision_seq",
    "resumed_stages",
    "replayed_commits",
    "replayed_replans",
    "torn",
    "torn_at",
];

fn intern(name: &str, table: &[&'static str]) -> Option<&'static str> {
    table.iter().copied().find(|&k| k == name)
}

fn attr_value(v: &Value) -> Option<AttrValue> {
    if let Some(u) = v.as_u64() {
        return Some(AttrValue::U64(u));
    }
    if let Some(f) = v.as_f64() {
        return Some(AttrValue::F64(f));
    }
    v.as_str().map(|s| AttrValue::Text(s.to_string()))
}

fn import_attrs(args: Option<&Value>, stats: &mut ImportStats) -> Vec<(&'static str, AttrValue)> {
    let mut attrs = Vec::new();
    let Some(obj) = args.and_then(Value::as_object) else {
        return attrs;
    };
    for (k, v) in obj.iter() {
        match (intern(k, KNOWN_KEYS), attr_value(v)) {
            (Some(key), Some(val)) => attrs.push((key, val)),
            _ => stats.skipped_attrs += 1,
        }
    }
    attrs
}

/// Re-import the instant events of a Chrome `trace_event` export
/// (`ph == "i"`; timestamps are integral microseconds and come back as
/// seconds). Returns the partial [`TraceData`] plus what was dropped.
pub fn events_from_chrome(json: &str) -> Result<(TraceData, ImportStats), String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("root must be an object with a `traceEvents` array")?;
    let mut data = TraceData::default();
    let mut stats = ImportStats::default();
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) != Some("i") {
            continue;
        }
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        let Some(name) = intern(name, KNOWN_EVENTS) else {
            stats.skipped_events += 1;
            continue;
        };
        let ts = ev.get("ts").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6;
        let group = ev.get("pid").and_then(Value::as_u64).unwrap_or(0) as u32;
        let lane = ev.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32;
        let attrs = import_attrs(ev.get("args"), &mut stats);
        data.events.push(EventRecord {
            name,
            track: Track { group, lane },
            ts,
            wall: 0.0,
            attrs,
        });
        stats.events += 1;
    }
    Ok((data, stats))
}

/// Re-import the `kind == "event"` lines of a JSONL export (lossless
/// timestamps — the race checker's preferred artifact format). Lines of
/// other kinds are ignored; malformed lines count as skipped.
pub fn events_from_jsonl(text: &str) -> Result<(TraceData, ImportStats), String> {
    let mut data = TraceData::default();
    let mut stats = ImportStats::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        if v.get("kind").and_then(Value::as_str) != Some("event") {
            continue;
        }
        let name = v.get("name").and_then(Value::as_str).unwrap_or("");
        let Some(name) = intern(name, KNOWN_EVENTS) else {
            stats.skipped_events += 1;
            continue;
        };
        let ts = v.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        let wall = v.get("wall").and_then(Value::as_f64).unwrap_or(0.0);
        let track = v.get("track");
        let group = track
            .and_then(|t| t.get("group"))
            .and_then(Value::as_u64)
            .unwrap_or(0) as u32;
        let lane = track
            .and_then(|t| t.get("lane"))
            .and_then(Value::as_u64)
            .unwrap_or(0) as u32;
        let attrs = import_attrs(v.get("attrs"), &mut stats);
        data.events.push(EventRecord {
            name,
            track: Track { group, lane },
            ts,
            wall,
            attrs,
        });
        stats.events += 1;
    }
    Ok((data, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::to_chrome_trace;
    use crate::jsonl::to_jsonl;
    use crate::span::Recorder;

    fn sample_trace() -> TraceData {
        let rec = Recorder::new();
        rec.event(
            "hb.write",
            Track::server(1, 7),
            2.5,
            vec![
                ("stage", 3u32.into()),
                ("task", 4u32.into()),
                ("server", 1u32.into()),
                ("write_start", 2.25f64.into()),
            ],
        );
        rec.event(
            "hb.seam",
            Track::scheduler(0),
            3.0,
            vec![
                ("edge", 2u32.into()),
                ("src_stage", 1u32.into()),
                ("dst_stage", 4u32.into()),
            ],
        );
        rec.span("task", Track::server(1, 7), 0.0, 2.5, vec![]);
        rec.finish()
    }

    #[test]
    fn jsonl_round_trips_events_losslessly() {
        let orig = sample_trace();
        let (back, stats) = events_from_jsonl(&to_jsonl(&orig)).unwrap();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.skipped_events, 0);
        assert_eq!(stats.skipped_attrs, 0);
        assert_eq!(back.events.len(), orig.events.len());
        for (a, b) in orig.events.iter().zip(back.events.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ts, b.ts, "jsonl must preserve exact timestamps");
            assert_eq!(a.track.group, b.track.group);
            assert_eq!(a.attrs.len(), b.attrs.len());
        }
    }

    #[test]
    fn chrome_round_trips_events_to_microsecond_precision() {
        let orig = sample_trace();
        let (back, stats) = events_from_chrome(&to_chrome_trace(&orig)).unwrap();
        assert_eq!(stats.events, 2);
        assert_eq!(back.events.len(), 2);
        for (a, b) in orig.events.iter().zip(back.events.iter()) {
            assert_eq!(a.name, b.name);
            assert!((a.ts - b.ts).abs() < 1e-6 + 1e-12, "{} vs {}", a.ts, b.ts);
        }
    }

    #[test]
    fn unknown_events_and_attrs_are_counted_not_fatal() {
        let text = concat!(
            r#"{"kind":"event","name":"totally.unknown","track":{"group":0,"lane":0},"ts":1.0,"wall":0.0,"attrs":{}}"#,
            "\n",
            r#"{"kind":"event","name":"hb.seam","track":{"group":0,"lane":0},"ts":1.0,"wall":0.0,"attrs":{"edge":1,"src_stage":0,"dst_stage":2,"mystery":9}}"#,
            "\n",
            r#"{"kind":"span","name":"task","track":{"group":0,"lane":0},"ts":0.0}"#,
            "\n",
        );
        let (data, stats) = events_from_jsonl(text).unwrap();
        assert_eq!(data.events.len(), 1);
        assert_eq!(stats.skipped_events, 1);
        assert_eq!(stats.skipped_attrs, 1);
        assert!(events_from_jsonl("not json\n").is_err());
    }
}
