//! Error type for DAG construction and validation.

use crate::stage::StageId;
use std::fmt;

/// Errors raised while building or validating a [`crate::JobDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a stage id that does not exist in the DAG.
    UnknownStage(StageId),
    /// An edge was added with identical source and destination.
    SelfLoop(StageId),
    /// The same (src, dst) dependency was added twice.
    DuplicateEdge(StageId, StageId),
    /// The graph contains a cycle; the id is one stage on the cycle.
    Cycle(StageId),
    /// Two stages were given the same name.
    DuplicateName(String),
    /// The DAG has no stages at all.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownStage(s) => write!(f, "edge references unknown stage {s}"),
            DagError::SelfLoop(s) => write!(f, "self-loop on stage {s}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle(s) => write!(f, "cycle detected through stage {s}"),
            DagError::DuplicateName(n) => write!(f, "duplicate stage name {n:?}"),
            DagError::Empty => write!(f, "DAG has no stages"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DagError::UnknownStage(StageId(3)).to_string(),
            "edge references unknown stage s3"
        );
        assert_eq!(DagError::SelfLoop(StageId(1)).to_string(), "self-loop on stage s1");
        assert_eq!(
            DagError::DuplicateEdge(StageId(0), StageId(1)).to_string(),
            "duplicate edge s0 -> s1"
        );
        assert_eq!(DagError::Cycle(StageId(2)).to_string(), "cycle detected through stage s2");
        assert_eq!(
            DagError::DuplicateName("map".into()).to_string(),
            "duplicate stage name \"map\""
        );
        assert_eq!(DagError::Empty.to_string(), "DAG has no stages");
    }
}
