//! Property tests for the happens-before race checker against the
//! executor's own traces: on arbitrary random DAGs with injected faults
//! (crashes × stragglers × object loss/corruption × drift), every traced
//! run yields an acyclic happens-before graph with zero malformed
//! events, and the full race checker certifies the run clean — the
//! engine's intended orderings are the recorded orderings. Both the
//! frozen fault engine and the adaptive replanning engine are covered.

use ditto_audit::{check_trace, HbGraph, RaceOptions};
use ditto_cluster::ResourceManager;
use ditto_core::{
    DittoScheduler, JointOptions, Objective, Schedule, Scheduler, SchedulingContext,
};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_dag::JobDag;
use ditto_exec::{
    try_simulate_adaptive_traced, try_simulate_with_faults_traced, AdaptiveConfig, ExecConfig,
    FaultPlan, FaultRates, GroundTruth, RecoveryPolicy, ReschedulingContext,
};
use ditto_obs::Recorder;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use proptest::prelude::*;

const SLOTS: [u32; 2] = [24, 16];

fn setup(dag_seed: u64, stages: usize) -> (JobDag, JobTimeModel, ResourceManager, Schedule) {
    let dag = random_dag(dag_seed, &RandomDagConfig::sized(stages));
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let rm = ResourceManager::from_free_slots(SLOTS.to_vec());
    let schedule = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    (dag, model, rm, schedule)
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    }
}

fn plan(crash: f64, loss: f64, seed: u64) -> FaultPlan {
    FaultPlan::from_rates(FaultRates {
        crash_prob: crash,
        straggler_prob: 0.1,
        straggler_slowdown: 3.0,
        loss_prob: loss,
        corruption_prob: 0.05,
        ..FaultRates::none(seed)
    })
}

/// Race options with the sweep's real per-server slot capacities, so the
/// oversubscription rule is exercised with the bound the scheduler
/// actually planned against.
fn opts() -> RaceOptions {
    RaceOptions {
        capacities: Some(SLOTS.to_vec()),
        ..RaceOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Happens-before soundness: the hb graph of any clean traced run is
    /// acyclic (vector clocks exist), parses every hb event it emitted
    /// (zero malformed), and actually contains the run's reads/writes.
    #[test]
    fn hb_graph_is_acyclic_on_clean_runs(
        dag_seed in 0u64..512,
        stages in 4usize..9,
        crash in 0.0f64..0.2,
        loss in 0.0f64..0.15,
        fault_seed in 0u64..u64::MAX,
    ) {
        let (dag, _model, _rm, schedule) = setup(dag_seed, stages);
        let gt = GroundTruth::new(ExecConfig::default());
        let obs = Recorder::new();
        try_simulate_with_faults_traced(
            &dag, &schedule, &gt, &plan(crash, loss, fault_seed), &policy(), None, &obs,
        ).expect("bounded fault rates must recover within policy bounds");
        let g = HbGraph::build(&obs.finish());

        prop_assert!(g.cycle.is_empty(), "hb cycle through ops {:?}", g.cycle);
        prop_assert_eq!(g.malformed, 0, "engine emitted malformed hb events");
        prop_assert!(!g.ops.is_empty(), "traced run produced no hb ops");
        prop_assert!(!g.edges.is_empty(), "hb graph has ops but no orderings");
        // Every intended ordering is visible to the vector clocks.
        for e in &g.edges {
            prop_assert!(
                g.happens_before(e.from, e.to),
                "edge {:?} not reflected in vector clocks", e.rule
            );
        }
    }

    /// Race-free certification, frozen engine: faulted runs (including
    /// lineage re-execution of lost/corrupt objects) check out clean
    /// under the real slot capacities.
    #[test]
    fn faulted_runs_certify_race_free(
        dag_seed in 0u64..512,
        stages in 4usize..9,
        crash in 0.0f64..0.2,
        loss in 0.0f64..0.15,
        fault_seed in 0u64..u64::MAX,
    ) {
        let (dag, _model, _rm, schedule) = setup(dag_seed, stages);
        let gt = GroundTruth::new(ExecConfig::default());
        let obs = Recorder::new();
        try_simulate_with_faults_traced(
            &dag, &schedule, &gt, &plan(crash, loss, fault_seed), &policy(), None, &obs,
        ).expect("bounded fault rates must recover within policy bounds");
        let report = check_trace(&obs.finish(), &opts());
        prop_assert!(report.is_clean(), "frozen engine raced:\n{}", report.render());
    }

    /// Race-free certification, adaptive engine: drift-triggered replans
    /// splice new suffix placements mid-run; seam edges must still order
    /// every suffix read after the splice.
    #[test]
    fn adaptive_runs_certify_race_free(
        dag_seed in 0u64..512,
        stages in 4usize..9,
        loss in 0.0f64..0.15,
        drift in 1.5f64..3.0,
        fault_seed in 0u64..u64::MAX,
    ) {
        let (dag, model, rm, schedule) = setup(dag_seed, stages);
        let gt = GroundTruth::new(ExecConfig::default());
        let plan = FaultPlan::from_rates(FaultRates {
            loss_prob: loss,
            ..FaultRates::none(fault_seed)
        }).with_drift(drift);
        let ctx = ReschedulingContext {
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let obs = Recorder::new();
        try_simulate_adaptive_traced(
            &dag, &schedule, &gt, &plan, &policy(), &ctx, &AdaptiveConfig::default(), &obs,
        ).expect("bounded fault rates must recover within policy bounds");
        let report = check_trace(&obs.finish(), &opts());
        prop_assert!(report.is_clean(), "adaptive engine raced:\n{}", report.render());
    }
}
