//! Deadline-constrained scheduling (extension, not in the paper):
//! minimize cost subject to `predicted JCT ≤ deadline`.
//!
//! Serverless users rarely want the absolute fastest *or* the absolute
//! cheapest run — they want "done by X, as cheap as possible". Under the
//! step model both extremes are available in closed form (the JCT-optimal
//! and cost-optimal DoP vectors of §4.2); any convex blend of the two is
//! a valid allocation of the same `C` slots, its predicted JCT moving
//! continuously between the two endpoints. We bisect the blend factor to
//! find the cheapest configuration that still meets the deadline.
//!
//! This is a heuristic: the blend family does not contain every feasible
//! DoP vector, so the result is an upper bound on the optimal cost. It
//! inherits the paper's machinery unchanged (grouping first, then DoPs).

use crate::dop::{compute_dop, round_dops};
use crate::joint::{joint_optimize, JointOptions};
use crate::objective::Objective;
use crate::placement::can_place_with;
use crate::predict::{predicted_cost, predicted_jct};
use crate::schedule::Schedule;
use ditto_cluster::ResourceManager;
use ditto_dag::JobDag;
use ditto_timemodel::JobTimeModel;

/// Result of the deadline blend at the DoP level.
#[derive(Debug, Clone)]
pub struct DeadlineDop {
    /// Fractional DoPs meeting the deadline.
    pub fractional: Vec<f64>,
    /// The blend factor used: 0 = cost-optimal, 1 = JCT-optimal.
    pub lambda: f64,
    /// Predicted JCT at the blend.
    pub predicted_jct: f64,
    /// Predicted cost at the blend.
    pub predicted_cost: f64,
}

/// Find the cheapest DoP vector in the cost↔JCT blend family whose
/// predicted JCT meets `deadline`, for a fixed co-location mask. Returns
/// `None` when even the JCT-optimal configuration misses the deadline.
pub fn deadline_constrained_dop(
    dag: &JobDag,
    model: &JobTimeModel,
    colocated: &[bool],
    c: u32,
    deadline: f64,
) -> Option<DeadlineDop> {
    assert!(deadline > 0.0, "deadline must be positive");
    let jct_opt = compute_dop(dag, model, colocated, Objective::Jct, c);
    let cost_opt = compute_dop(dag, model, colocated, Objective::Cost, c);

    let eval = |lambda: f64| -> (Vec<f64>, f64, f64) {
        let d: Vec<f64> = cost_opt
            .fractional
            .iter()
            .zip(&jct_opt.fractional)
            .map(|(&dc, &dj)| (1.0 - lambda) * dc + lambda * dj)
            .collect();
        let jct = predicted_jct(dag, model, &d, colocated);
        let cost = predicted_cost(dag, model, &d, colocated);
        (d, jct, cost)
    };

    let (_, jct_best, _) = eval(1.0);
    if jct_best > deadline {
        return None; // even the fastest configuration misses it
    }
    let (d0, jct0, cost0) = eval(0.0);
    if jct0 <= deadline {
        return Some(DeadlineDop {
            fractional: d0,
            lambda: 0.0,
            predicted_jct: jct0,
            predicted_cost: cost0,
        });
    }

    // Bisect the smallest λ with JCT(λ) ≤ deadline.
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        let (_, jct, _) = eval(mid);
        if jct <= deadline {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (d, jct, cost) = eval(hi);
    debug_assert!(jct <= deadline * (1.0 + 1e-9));
    Some(DeadlineDop {
        fractional: d,
        lambda: hi,
        predicted_jct: jct,
        predicted_cost: cost,
    })
}

/// Full deadline-constrained scheduling: Algorithm 3's joint loop, with
/// the DoP-ratio step replaced by the deadline blend. Each candidate
/// grouping is committed only if the blended integer DoPs for its mask
/// both meet the deadline and pass the placement check — so the final
/// schedule's grouping and parallelism are mutually consistent (unlike a
/// post-hoc DoP swap, whose cost-leaning DoPs can outgrow the groups a
/// JCT-optimized pass chose). Returns `None` when the deadline is
/// unreachable even ungrouped and unguided.
pub fn schedule_with_deadline(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    deadline: f64,
    opts: &JointOptions,
) -> Option<Schedule> {
    use crate::grouping::{greedy_group_order, StageGroups};
    let c = rm.total_free();
    let n = dag.num_stages();

    // A trial evaluator: blend + rounding + placement for a given mask.
    // The cheapest deadline-meeting blend may be unplaceable (its
    // cost-leaning DoPs can outgrow the servers hosting a stage group);
    // any higher λ still meets the deadline, so walk λ toward the
    // JCT-optimal end until a placeable configuration appears.
    let try_mask = |groups: &StageGroups, walk: bool| -> Option<(Vec<u32>, crate::placement::PlacementPlan, f64)> {
        let mask = groups.colocation_mask(dag);
        let blend = deadline_constrained_dop(dag, model, &mask, c, deadline)?;
        let jct_opt = compute_dop(dag, model, &mask, Objective::Jct, c);
        let steps: u32 = if walk { 12 } else { 0 };
        for i in 0..=steps {
            let mu = i as f64 / 12.0; // 0 = cheapest blend, 1 = JCT-opt
            let frac: Vec<f64> = blend
                .fractional
                .iter()
                .zip(&jct_opt.fractional)
                .map(|(&a, &b)| (1.0 - mu) * a + mu * b)
                .collect();
            let dop = round_dops(&frac, c);
            if let Some(plan) =
                can_place_with(dag, &dop, groups, rm, opts.gather_decomposition, opts.fit_strategy)
            {
                let cost = predicted_cost(dag, model, &frac, &mask);
                return Some((dop, plan, cost));
            }
        }
        None
    };

    let mut groups = StageGroups::singletons(n);
    let (mut dop, mut plan, mut cost) = try_mask(&groups, true).or_else(|| {
        // The blend may be infeasible ungrouped yet feasible with grouping
        // (co-location shrinks α and thus predicted JCT). Borrow the
        // fully-joint JCT schedule's grouping as a rescue attempt.
        let rescue = joint_optimize(dag, model, rm, Objective::Jct, opts);
        let mut g = StageGroups::singletons(n);
        for e in dag.edges() {
            if rescue.colocated[e.id.index()] {
                g.union(e.src, e.dst);
            }
        }
        try_mask(&g, true).inspect(|_| groups = g)
    })?;

    // Greedy grouping loop (cost order: the objective we minimize here).
    let mut ungrouped: Vec<ditto_dag::EdgeId> = dag.edges().iter().map(|e| e.id).collect();
    ungrouped.retain(|&e| {
        let edge = dag.edge(e);
        !groups.same_group(edge.src, edge.dst)
    });
    loop {
        let mask = groups.colocation_mask(dag);
        let order: Vec<ditto_dag::EdgeId> =
            greedy_group_order(dag, model, &dop, &mask, Objective::Cost)
                .into_iter()
                .filter(|e| ungrouped.contains(e))
                .collect();
        let mut committed = None;
        for e in order {
            let edge = dag.edge(e);
            let mut trial = groups.clone();
            trial.union(edge.src, edge.dst);
            // During the grouping loop the cheapest blend itself must
            // place (no μ-walk): walking toward faster-but-costlier DoPs
            // here would commit groupings the cost objective should
            // reject, exactly like Algorithm 3's hard placement check.
            if let Some((d, p, k)) = try_mask(&trial, false) {
                if k <= cost + 1e-9 {
                    groups = trial;
                    dop = d;
                    plan = p;
                    cost = k;
                    committed = Some(e);
                    break;
                }
            }
        }
        match committed {
            Some(e) => ungrouped.retain(|&x| x != e),
            None => break,
        }
    }

    Some(Schedule {
        scheduler: format!("ditto-deadline-{deadline:.0}s"),
        dop,
        group_of: groups.group_of(n),
        groups: groups.groups(n),
        colocated: groups.colocation_mask(dag),
        placement: plan.stage_placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;

    fn setup() -> (JobDag, JobTimeModel, ResourceManager) {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96, 48, 24, 12]);
        (dag, model, rm)
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let (dag, model, rm) = setup();
        let none = model.no_colocation();
        assert!(deadline_constrained_dop(&dag, &model, &none, rm.total_free(), 1e-6).is_none());
    }

    #[test]
    fn loose_deadline_gives_cost_optimal() {
        let (dag, model, rm) = setup();
        let none = model.no_colocation();
        let c = rm.total_free();
        let d = deadline_constrained_dop(&dag, &model, &none, c, 1e9).unwrap();
        assert_eq!(d.lambda, 0.0);
        let cost_opt = compute_dop(&dag, &model, &none, Objective::Cost, c);
        assert_eq!(d.fractional, cost_opt.fractional);
    }

    #[test]
    fn blend_meets_deadline_and_saves_cost() {
        let (dag, model, rm) = setup();
        let none = model.no_colocation();
        let c = rm.total_free();
        let jct_opt = compute_dop(&dag, &model, &none, Objective::Jct, c);
        let jct_best = predicted_jct(&dag, &model, &jct_opt.fractional, &none);
        let cost_at_jct_opt = predicted_cost(&dag, &model, &jct_opt.fractional, &none);
        let cost_opt = compute_dop(&dag, &model, &none, Objective::Cost, c);
        let jct_at_cost_opt = predicted_jct(&dag, &model, &cost_opt.fractional, &none);
        // Pick a deadline strictly between the two extremes.
        let deadline = 0.5 * (jct_best + jct_at_cost_opt);
        let d = deadline_constrained_dop(&dag, &model, &none, c, deadline).unwrap();
        assert!(d.predicted_jct <= deadline * (1.0 + 1e-9));
        assert!(d.lambda > 0.0 && d.lambda < 1.0);
        assert!(
            d.predicted_cost <= cost_at_jct_opt + 1e-9,
            "blend ({}) must not cost more than the JCT-optimal ({cost_at_jct_opt})",
            d.predicted_cost
        );
    }

    #[test]
    fn scheduled_deadline_is_valid() {
        let (dag, model, rm) = setup();
        let fast = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let frac: Vec<f64> = fast.dop.iter().map(|&x| x as f64).collect();
        let floor = predicted_jct(&dag, &model, &frac, &fast.colocated);
        let s = schedule_with_deadline(&dag, &model, &rm, floor * 1.5, &JointOptions::default())
            .expect("reachable deadline");
        s.validate(&dag).unwrap();
        assert!(s.total_slots() <= rm.total_free());
        assert!(s.scheduler.starts_with("ditto-deadline"));
        // An impossible deadline returns None.
        assert!(schedule_with_deadline(&dag, &model, &rm, 1e-6, &JointOptions::default()).is_none());
    }
}
