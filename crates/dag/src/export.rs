//! Graphviz (DOT) export of job DAGs.
//!
//! `to_dot` renders the bare DAG; `to_dot_grouped` colors stages by an
//! assigned group index (Ditto's stage groups), making co-location
//! decisions visible at a glance:
//!
//! ```sh
//! cargo run --example quickstart | …  # or programmatically:
//! ```
//!
//! ```
//! use ditto_dag::{generators, export};
//! let dag = generators::fig1_join();
//! let dot = export::to_dot(&dag);
//! assert!(dot.contains("digraph"));
//! ```

use crate::graph::{EdgeKind, JobDag};

/// Pleasant, color-blind-safe fill colors cycled per group.
const GROUP_COLORS: &[&str] = &[
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

fn human_bytes(b: u64) -> String {
    match b {
        b if b >= 1 << 30 => format!("{:.1}GB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.1}MB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.1}KB", b as f64 / 1024.0),
        b => format!("{b}B"),
    }
}

fn edge_style(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Shuffle => "solid",
        EdgeKind::Gather => "dashed",
        EdgeKind::AllGather => "bold",
    }
}

/// Render the DAG as Graphviz DOT.
pub fn to_dot(dag: &JobDag) -> String {
    to_dot_impl(dag, None, None)
}

/// Render with group coloring and per-stage DoP labels (`group_of` and
/// `dop` indexed by stage).
pub fn to_dot_grouped(dag: &JobDag, group_of: &[usize], dop: &[u32]) -> String {
    to_dot_impl(dag, Some(group_of), Some(dop))
}

fn to_dot_impl(dag: &JobDag, group_of: Option<&[usize]>, dop: Option<&[u32]>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", dag.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, style=\"rounded,filled\", fontname=\"sans-serif\"];");
    for s in dag.stages() {
        let mut label = format!("{}\\n[{}]", s.name, s.kind);
        if let Some(d) = dop {
            let _ = write!(label, "\\ndop={}", d[s.id.index()]);
        }
        let color = group_of
            .map(|g| GROUP_COLORS[g[s.id.index()] % GROUP_COLORS.len()])
            .unwrap_or("#eeeeee");
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", fillcolor=\"{}\"];",
            s.id.index(),
            label,
            color
        );
    }
    for e in dag.edges() {
        let mut attrs = format!(
            "label=\"{}\", style={}",
            human_bytes(e.bytes),
            edge_style(e.kind)
        );
        if e.pipelined {
            attrs.push_str(", color=blue");
        }
        let _ = writeln!(
            out,
            "  {} -> {} [{}];",
            e.src.index(),
            e.dst.index(),
            attrs
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn renders_basic_dot() {
        let dag = generators::fig1_join();
        let dot = to_dot(&dag);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("map1"));
        assert!(dot.contains("join"));
        assert!(dot.contains("->"));
        // Edge labels carry the shuffle volumes (800 MB / 200 MB).
        assert!(dot.contains("800.0MB"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn grouped_rendering_colors_and_labels() {
        let dag = generators::fig1_join();
        let dot = to_dot_grouped(&dag, &[0, 1, 1], &[10, 4, 6]);
        assert!(dot.contains("dop=10"));
        // Stages 1 and 2 share a group → same fill color; stage 0 differs.
        let color_of = |idx: usize| {
            dot.lines()
                .find(|l| l.trim_start().starts_with(&format!("{idx} [")))
                .and_then(|l| l.split("fillcolor=\"").nth(1))
                .map(|s| s.split('"').next().unwrap().to_string())
                .unwrap()
        };
        assert_eq!(color_of(1), color_of(2));
        assert_ne!(color_of(0), color_of(1));
    }

    #[test]
    fn edge_kinds_have_distinct_styles() {
        let dag = generators::q95_shape();
        let dot = to_dot(&dag);
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=bold"));
    }

    #[test]
    fn pipelined_edges_highlighted() {
        let mut dag = generators::chain(2, 1 << 20, 0.5);
        dag.set_pipelined(crate::EdgeId(0), true);
        let dot = to_dot(&dag);
        assert!(dot.contains("color=blue"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 << 20), "3.0MB");
        assert_eq!(human_bytes(5 << 30), "5.0GB");
    }
}
