//! Content checksums for intermediate objects (xxhash-style 64-bit).
//!
//! Every blob the [`ObjectStore`] holds is fingerprinted on `put` and
//! re-verified on `get`, so silent corruption of an intermediate partition
//! surfaces as a typed [`StoreError::Corrupted`] instead of propagating
//! garbage rows downstream. The hash is the XXH64 mixing schedule (prime
//! multiply-rotate lanes over 32-byte stripes) implemented in-tree — the
//! workspace is offline and carries no hashing crate.
//!
//! [`ObjectStore`]: crate::object_store::ObjectStore
//! [`StoreError::Corrupted`]: crate::object_store::StoreError::Corrupted

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

/// 64-bit checksum of `data` under the given `seed`.
pub fn checksum64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h: u64 = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ read_u32(rest).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

/// Default store seed: objects are fingerprinted unsalted.
pub const STORE_SEED: u64 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical XXH64 implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(checksum64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(checksum64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(checksum64(b"abc", 0), 0x44BC2CF5AD770999);
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(checksum64(b"abc", 0), checksum64(b"abc", 1));
    }

    #[test]
    fn stripe_boundaries() {
        // Cross the 32-byte stripe and 8/4/1-byte tail paths.
        for n in [0usize, 1, 3, 4, 7, 8, 31, 32, 33, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            let h1 = checksum64(&data, 7);
            let h2 = checksum64(&data, 7);
            assert_eq!(h1, h2);
            if n > 0 {
                let mut flipped = data.clone();
                flipped[n / 2] ^= 0x01;
                assert_ne!(checksum64(&flipped, 7), h1, "len {n}");
            }
        }
    }
}
