//! Flamegraph export: inferno-compatible collapsed-stack lines.
//!
//! [`to_folded`] renders a finished trace as the `folded` format that
//! `flamegraph.pl` / `inferno-flamegraph` consume: one
//! `frame;frame;leaf <value>` line per unique stack, values in integer
//! microseconds of *self time* (a span's duration minus its children's).
//! Stacks root at the span's track group (scheduler, storage, job,
//! `server_N`), then follow the recorded parent chain, so scheduler
//! rounds nest under the scheduler root and tasks sit in their server's
//! subtree. Task spans carrying the `read_start` / `compute_start` /
//! `write_start` phase attributes expand into `setup` / `read` /
//! `compute` / `write` leaf frames — the flamegraph shows the same
//! step-level attribution as the critical-path analyzer, just across
//! *all* lanes instead of only the critical chain.
//!
//! Output is deterministic: identical stacks aggregate, lines sort
//! lexicographically, zero-valued and still-open spans are skipped.

use crate::span::{SpanRecord, Track, TraceData};

/// Round a span duration (seconds) to integer microseconds.
fn us(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        0
    } else {
        (seconds * 1e6).round() as u64
    }
}

/// Frame names may not contain the folded format's separators.
fn sanitize(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

/// Root frame of a track group: the recorded track name when present,
/// otherwise a stable default per group id.
fn group_frame(data: &TraceData, group: u32) -> String {
    if let Some(name) = data.track_names.get(&group) {
        return sanitize(name);
    }
    match group {
        Track::SCHEDULER_GROUP => "scheduler".to_string(),
        Track::STORAGE_GROUP => "storage".to_string(),
        Track::JOB_GROUP => "job".to_string(),
        g if g >= Track::SERVER_BASE => format!("server_{}", g - Track::SERVER_BASE),
        g => format!("track_{g}"),
    }
}

/// Step boundaries of a task span (same fallback as the critical-path
/// analyzer: all-compute when phase attrs are absent or inconsistent).
fn step_bounds(span: &SpanRecord) -> [f64; 5] {
    if let (Some(r), Some(c), Some(w)) = (
        span.attr_f64("read_start"),
        span.attr_f64("compute_start"),
        span.attr_f64("write_start"),
    ) {
        let b = [span.start, r, c, w, span.end];
        if b.windows(2).all(|p| p[1] >= p[0]) {
            return b;
        }
    }
    [span.start, span.start, span.start, span.end, span.end]
}

/// Render a finished trace as collapsed-stack (folded) lines. Pipe the
/// result through `flamegraph.pl` or `inferno-flamegraph` to get an
/// interactive SVG of where the run's seconds went.
pub fn to_folded(data: &TraceData) -> String {
    // children[i] = indices of spans whose parent is span id i+1.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); data.spans.len()];
    for (idx, s) in data.spans.iter().enumerate() {
        if s.parent != 0 {
            if let Some(slot) = children.get_mut(s.parent as usize - 1) {
                slot.push(idx);
            }
        }
    }

    // Stack prefix per span, built in id order (parents precede children
    // in the recorder, but don't rely on it — resolve lazily).
    let mut stacks: Vec<Option<String>> = vec![None; data.spans.len()];
    fn stack_of(data: &TraceData, stacks: &mut Vec<Option<String>>, idx: usize) -> String {
        if let Some(s) = &stacks[idx] {
            return s.clone();
        }
        let span = &data.spans[idx];
        let own = sanitize(span.name);
        let stack = if span.parent == 0 || span.parent as usize > data.spans.len() {
            format!("{};{}", group_frame(data, span.track.group), own)
        } else {
            let parent = stack_of(data, stacks, span.parent as usize - 1);
            format!("{parent};{own}")
        };
        stacks[idx] = Some(stack.clone());
        stack
    }

    let mut totals: std::collections::BTreeMap<String, u64> = Default::default();
    for (idx, span) in data.spans.iter().enumerate() {
        if !span.end.is_finite() {
            continue;
        }
        let stack = stack_of(data, &mut stacks, idx);
        let child_time: f64 = children[idx]
            .iter()
            .map(|&c| data.spans[c].duration())
            .sum();
        if span.name == "task" {
            // Expand the task's own time into its step leaves; child
            // spans (if any) still subtract from the last overlapping
            // step so totals never double-count.
            let b = step_bounds(span);
            let mut segs = [
                b[1] - b[0], // setup
                b[2] - b[1], // read
                b[3] - b[2], // compute
                b[4] - b[3], // write
            ];
            let mut remaining = child_time;
            for seg in segs.iter_mut().rev() {
                let take = remaining.min(*seg);
                *seg -= take;
                remaining -= take;
            }
            for (name, seg) in ["setup", "read", "compute", "write"].iter().zip(segs) {
                let v = us(seg);
                if v > 0 {
                    *totals.entry(format!("{stack};{name}")).or_insert(0) += v;
                }
            }
        } else {
            let v = us(span.duration() - child_time);
            if v > 0 {
                *totals.entry(stack).or_insert(0) += v;
            }
        }
    }

    let mut out = String::new();
    for (stack, v) in &totals {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, SpanId, Track};

    #[test]
    fn task_spans_expand_into_step_leaves() {
        let rec = Recorder::new();
        rec.name_track(Track::SERVER_BASE, "server 0");
        rec.span(
            "task",
            Track::server(0, 0),
            0.0,
            4.0,
            vec![
                ("stage", 0u32.into()),
                ("read_start", 0.5f64.into()),
                ("compute_start", 1.5f64.into()),
                ("write_start", 3.5f64.into()),
            ],
        );
        let folded = to_folded(&rec.finish());
        assert_eq!(
            folded,
            "server_0;task;compute 2000000\n\
             server_0;task;read 1000000\n\
             server_0;task;setup 500000\n\
             server_0;task;write 500000\n"
        );
    }

    #[test]
    fn nesting_and_self_time() {
        let rec = Recorder::new();
        let root = rec.span("sched.joint", Track::scheduler(0), 0.0, 10.0, vec![]);
        rec.span_with_parent("sched.round", Track::scheduler(0), 1.0, 4.0, root, vec![]);
        rec.span_with_parent("sched.round", Track::scheduler(0), 4.0, 6.0, root, vec![]);
        let folded = to_folded(&rec.finish());
        // Root keeps 10 - 3 - 2 = 5s of self time; rounds aggregate.
        assert!(folded.contains("scheduler;sched.joint 5000000\n"));
        assert!(folded.contains("scheduler;sched.joint;sched.round 5000000\n"));
    }

    #[test]
    fn open_and_zero_spans_are_skipped() {
        let rec = Recorder::new();
        rec.begin("sched.joint", Track::scheduler(0), 0.0, SpanId::NONE, vec![]);
        rec.span("sched.round", Track::scheduler(0), 1.0, 1.0, vec![]);
        assert_eq!(to_folded(&rec.finish()), "");
    }

    #[test]
    fn frame_names_are_sanitized() {
        let rec = Recorder::new();
        rec.name_track(Track::SERVER_BASE + 3, "server 3; big");
        rec.span("task", Track::server(3, 0), 0.0, 1.0, vec![]);
        let folded = to_folded(&rec.finish());
        assert!(folded.starts_with("server_3:_big;task;"), "{folded}");
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            let rec = Recorder::new();
            for i in 0..5u32 {
                rec.span(
                    "task",
                    Track::server(i % 2, i),
                    i as f64,
                    i as f64 + 1.0,
                    vec![("stage", i.into())],
                );
            }
            to_folded(&rec.finish())
        };
        assert_eq!(build(), build());
    }
}
