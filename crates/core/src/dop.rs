//! DoP ratio computing (paper §4.2, Algorithm 1).
//!
//! The key observation: under the step model `T = α/d + β`, the *ratio* of
//! optimal DoPs between stages is independent of the slot budget `C`:
//!
//! * consecutive (parent–child) stages: `dᵢ/dⱼ = √(αᵢ/αⱼ)` — optimal by
//!   Cauchy–Schwarz (Appendix A.1);
//! * sibling stages (same downstream consumer): `dᵢ/dⱼ = αᵢ/αⱼ` — the
//!   balanced structure is optimal (Appendix A.2).
//!
//! Merging two stages with their optimal ratio yields a *virtual stage*
//! that still obeys the step model:
//!
//! * intra-path merge: `α = (√αᵢ + √αⱼ)²`, `β = βᵢ + βⱼ` (paper Eq. 3);
//! * inter-path merge: `α = αᵢ + αⱼ`, `β = max(βᵢ, βⱼ)` (paper Eq. 4).
//!
//! Algorithm 1 applies these merges bottom-up — siblings first, then
//! parent–child — until the DAG collapses to one virtual stage; walking
//! the merge tree back down splits the slot budget `C` by the recorded
//! ratios. Each stage is merged exactly once: `O(|V|)`.
//!
//! **General DAGs.** A stage with several downstream consumers
//! (out-degree above 1) breaks the tree structure. Following the paper's
//! guidance that sibling-then-parent merging remains the right strategy,
//! we reduce the DAG to a spanning in-forest: each such stage is attached
//! to its *primary* consumer — the one on the heaviest α-path to the sink
//! — and the merge runs on that forest. The stage's full I/O (all
//! out-edges) still counts in its α, so only the ratio bookkeeping, not
//! the modeled work, is approximated.
//!
//! **Cost.** Minimizing Σ M·T reduces to single-path JCT with parallelized
//! times `ρᵢαᵢ` (§4.2), giving `dᵢ/dⱼ = √(ρᵢαᵢ)/√(ρⱼαⱼ)` for *all* stage
//! pairs.

use crate::objective::Objective;
use ditto_dag::{JobDag, StageId};
use ditto_timemodel::JobTimeModel;

/// The merge tree produced by the bottom-up pass. Exposed for tests and
/// for the ablation benches; normal callers use [`compute_dop`].
#[derive(Debug, Clone)]
pub enum MergeNode {
    /// An original stage.
    Leaf {
        /// The stage.
        stage: StageId,
        /// Its effective parallelized time.
        alpha: f64,
    },
    /// Two sibling (parallel) subtrees merged with the inter-path ratio.
    Inter {
        /// Left subtree.
        left: Box<MergeNode>,
        /// Right subtree.
        right: Box<MergeNode>,
        /// Merged α = α_left + α_right.
        alpha: f64,
    },
    /// An upstream subtree merged with its downstream consumer stage with
    /// the intra-path ratio.
    Intra {
        /// The upstream (earlier) subtree.
        upstream: Box<MergeNode>,
        /// The downstream (later) subtree.
        downstream: Box<MergeNode>,
        /// Merged α = (√α_up + √α_down)².
        alpha: f64,
    },
}

impl MergeNode {
    /// The node's merged parallelized time α.
    pub fn alpha(&self) -> f64 {
        match self {
            MergeNode::Leaf { alpha, .. }
            | MergeNode::Inter { alpha, .. }
            | MergeNode::Intra { alpha, .. } => *alpha,
        }
    }
}

/// Result of DoP ratio computing.
#[derive(Debug, Clone)]
pub struct DopAssignment {
    /// Exact (real-valued) per-stage DoPs summing to `C`.
    pub fractional: Vec<f64>,
    /// Rounded DoPs (§4.5: floor, at least 1, Σ ≤ max(C, #stages)).
    pub dop: Vec<u32>,
    /// α of the fully merged virtual stage: the predicted parallelizable
    /// time of the whole job is `merged_alpha / C` for the JCT objective.
    pub merged_alpha: f64,
}

/// Build the spanning in-forest: for every stage with out-degree > 1 pick
/// the consumer on the heaviest α-path to the sink. Returns
/// `primary_child[stage] = Some(child)` (`None` for final stages).
fn primary_children(dag: &JobDag, alpha: &[f64]) -> Vec<Option<StageId>> {
    // Longest α-weighted path from each stage to any sink.
    let order = dag.topo_order().expect("scheduler requires a valid DAG");
    let n = dag.num_stages();
    let mut longest = vec![0.0_f64; n];
    for &s in order.iter().rev() {
        let best_child = dag
            .children_of(s)
            .map(|c| longest[c.index()])
            .fold(0.0_f64, f64::max);
        longest[s.index()] = alpha[s.index()] + best_child;
    }
    (0..n)
        .map(|i| {
            let s = StageId(i as u32);
            dag.children_of(s).max_by(|&a, &b| {
                // total_cmp: a NaN weight must not panic the scheduler.
                longest[a.index()]
                    .total_cmp(&longest[b.index()])
                    .then(b.cmp(&a)) // tie → smaller id
            })
        })
        .collect()
}

/// Run the bottom-up merge (Algorithm 1) and return the merge tree.
///
/// `alpha[s]` is each stage's effective parallelized time under the current
/// placement (already scaled by ρ for the cost objective if desired).
pub fn bottom_up_merge(dag: &JobDag, alpha: &[f64]) -> MergeNode {
    assert_eq!(alpha.len(), dag.num_stages());
    let primary = primary_children(dag, alpha);

    // tree_parents[s] = upstream stages merged into s (their primary child
    // is s), sorted for determinism.
    let mut tree_parents: Vec<Vec<StageId>> = vec![Vec::new(); dag.num_stages()];
    for (i, pc) in primary.iter().enumerate() {
        if let Some(c) = pc {
            tree_parents[c.index()].push(StageId(i as u32));
        }
    }
    for tp in &mut tree_parents {
        tp.sort_unstable();
    }

    fn build(s: StageId, alpha: &[f64], tree_parents: &[Vec<StageId>]) -> MergeNode {
        let leaf = MergeNode::Leaf {
            stage: s,
            alpha: alpha[s.index()],
        };
        let feeders = &tree_parents[s.index()];
        if feeders.is_empty() {
            return leaf;
        }
        // Merge sibling subtrees with the inter-path rule (Eq. 4)...
        let mut iter = feeders.iter();
        let first = build(*iter.next().expect("feeders checked non-empty"), alpha, tree_parents);
        let upstream = iter.fold(first, |acc, &f| {
            let rhs = build(f, alpha, tree_parents);
            let a = acc.alpha() + rhs.alpha();
            MergeNode::Inter {
                left: Box::new(acc),
                right: Box::new(rhs),
                alpha: a,
            }
        });
        // ...then merge with the downstream stage via the intra-path rule
        // (Eq. 3).
        let a = (upstream.alpha().sqrt() + leaf.alpha().sqrt()).powi(2);
        MergeNode::Intra {
            upstream: Box::new(upstream),
            downstream: Box::new(leaf),
            alpha: a,
        }
    }

    // Each final stage roots a tree; several sinks run in parallel and are
    // inter-merged.
    let finals = dag.final_stages();
    let mut iter = finals.iter();
    let first = build(*iter.next().expect("validated DAG is non-empty"), alpha, &tree_parents);
    iter.fold(first, |acc, &f| {
        let rhs = build(f, alpha, &tree_parents);
        let a = acc.alpha() + rhs.alpha();
        MergeNode::Inter {
            left: Box::new(acc),
            right: Box::new(rhs),
            alpha: a,
        }
    })
}

/// Split `d` slots down the merge tree by the recorded optimal ratios.
pub fn distribute(node: &MergeNode, d: f64, out: &mut [f64]) {
    match node {
        MergeNode::Leaf { stage, .. } => out[stage.index()] = d,
        MergeNode::Inter { left, right, .. } => {
            // dᵢ/dⱼ = αᵢ/αⱼ (balanced structure).
            let (al, ar) = (left.alpha(), right.alpha());
            let share = if al + ar > 0.0 { al / (al + ar) } else { 0.5 };
            distribute(left, d * share, out);
            distribute(right, d * (1.0 - share), out);
        }
        MergeNode::Intra {
            upstream,
            downstream,
            ..
        } => {
            // dᵢ/dⱼ = √αᵢ/√αⱼ (Cauchy–Schwarz optimum).
            let (su, sd) = (upstream.alpha().sqrt(), downstream.alpha().sqrt());
            let share = if su + sd > 0.0 { su / (su + sd) } else { 0.5 };
            distribute(upstream, d * share, out);
            distribute(downstream, d * (1.0 - share), out);
        }
    }
}

/// Round fractional DoPs per §4.5: floor, at least one task per stage.
/// When flooring + clamping overshoots `C` (only possible if `C` is small
/// relative to the stage count), slots are taken back from the largest
/// DoPs so the budget holds whenever `C ≥ #stages`.
pub fn round_dops(fractional: &[f64], c: u32) -> Vec<u32> {
    let mut dop: Vec<u32> = fractional.iter().map(|&f| (f.floor() as u32).max(1)).collect();
    let n = dop.len() as u32;
    let budget = c.max(n); // every stage needs ≥ 1 task regardless
    let mut sum: u32 = dop.iter().sum();
    while sum > budget {
        // Shrink the currently largest DoP (deterministic: first max).
        let (idx, _) = dop
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, usize::MAX - i))
            .expect("dop vector is non-empty");
        debug_assert!(dop[idx] > 1);
        dop[idx] -= 1;
        sum -= 1;
    }
    dop
}

/// Alternative rounding (extension, not in the paper): floor + at least
/// one task, then hand the *leftover* slots (`C − Σ⌊dᵢ⌋`) to the stages
/// with the largest fractional remainders. Uses every slot the paper's
/// plain floor strategy would waste; compared in the rounding ablation.
pub fn round_dops_largest_remainder(fractional: &[f64], c: u32) -> Vec<u32> {
    let mut dop = round_dops(fractional, c);
    let mut sum: u32 = dop.iter().sum();
    if sum >= c {
        return dop;
    }
    // Stages sorted by descending remainder, ties toward smaller index.
    let mut order: Vec<usize> = (0..dop.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = fractional[a] - fractional[a].floor();
        let rb = fractional[b] - fractional[b].floor();
        // total_cmp: a NaN remainder must not panic; index tie-break keeps
        // the comparator total, so the unstable sort is deterministic.
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    let mut i = 0;
    while sum < c {
        dop[order[i % order.len()]] += 1;
        sum += 1;
        i += 1;
    }
    dop
}

/// The full DoP ratio computing pass: effective αs under the co-location
/// mask, bottom-up merge (JCT) or the single-path reduction (cost), budget
/// split and rounding.
///
/// ```
/// use ditto_core::{compute_dop, Objective};
/// use ditto_timemodel::{model::RateConfig, JobTimeModel};
///
/// // The paper's Fig. 1 join DAG: map1 and map2 are *siblings*, so the
/// // inter-path ratio applies — slots proportional to their α (≈ the 4x
/// // data ratio), balancing the two parallel scans' execution times.
/// let dag = ditto_dag::generators::fig1_join();
/// let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
/// let a = compute_dop(&dag, &model, &model.no_colocation(), Objective::Jct, 60);
/// assert_eq!(a.dop.len(), 3);
/// let ratio = a.fractional[0] / a.fractional[1];
/// assert!(ratio > 3.0 && ratio < 5.5, "sibling ratio ≈ alpha ratio: {ratio}");
/// assert!(a.dop.iter().sum::<u32>() <= 60);
/// ```
pub fn compute_dop(
    dag: &JobDag,
    model: &JobTimeModel,
    colocated: &[bool],
    objective: Objective,
    c: u32,
) -> DopAssignment {
    assert!(c >= 1, "need at least one function slot");
    let n = dag.num_stages();
    let alpha: Vec<f64> = dag
        .stages()
        .iter()
        .map(|s| model.stage_alpha(dag, s.id, colocated))
        .collect();

    match objective {
        Objective::Jct => {
            let tree = bottom_up_merge(dag, &alpha);
            let mut fractional = vec![0.0; n];
            distribute(&tree, c as f64, &mut fractional);
            let dop = round_dops(&fractional, c);
            DopAssignment {
                fractional,
                dop,
                merged_alpha: tree.alpha(),
            }
        }
        Objective::Cost => {
            // Single-path reduction: dᵢ ∝ √(ρᵢ αᵢ).
            let shares: Vec<f64> = (0..n)
                .map(|i| (model.resource(StageId(i as u32)).rho * alpha[i]).sqrt())
                .collect();
            let total: f64 = shares.iter().sum();
            let fractional: Vec<f64> = if total > 0.0 {
                shares.iter().map(|s| s / total * c as f64).collect()
            } else {
                vec![c as f64 / n as f64; n]
            };
            let merged_alpha = total * total; // (Σ√(ρα))² by Eq. 3 cascade
            let dop = round_dops(&fractional, c);
            DopAssignment {
                fractional,
                dop,
                merged_alpha,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::{DagBuilder, EdgeKind, StageKind};
    use ditto_timemodel::model::{EdgeIo, StageSteps};
    use ditto_timemodel::ResourceModel;

    /// A model with explicit per-stage compute αs and zero I/O, so the
    /// stage αs equal the given values exactly.
    fn explicit_model(dag: &JobDag, alphas: &[f64]) -> JobTimeModel {
        let stages = alphas
            .iter()
            .map(|&a| StageSteps::compute_only(a, 0.0))
            .collect();
        let edges = (0..dag.num_edges()).map(|_| EdgeIo::zero()).collect();
        let res = vec![ResourceModel::default(); dag.num_stages()];
        JobTimeModel::new(dag, stages, edges, res)
    }

    fn two_stage_chain() -> JobDag {
        DagBuilder::new("chain2")
            .stage("s1", StageKind::Map, 0, 0)
            .stage("s2", StageKind::Reduce, 0, 0)
            .edge("s1", "s2", EdgeKind::Shuffle, 0)
            .build()
            .unwrap()
    }

    /// Paper Fig. 4: α₁=60, α₂=15, C=15 ⇒ intra-path ratio √(60/15)=2
    /// ⇒ d₁=10, d₂=5 (completion 9 vs 10 for the data-size split 12/3).
    #[test]
    fn fig4_intra_path_ratio() {
        let dag = two_stage_chain();
        let model = explicit_model(&dag, &[60.0, 15.0]);
        let a = compute_dop(&dag, &model, &[false], Objective::Jct, 15);
        assert!((a.fractional[0] - 10.0).abs() < 1e-9, "{:?}", a.fractional);
        assert!((a.fractional[1] - 5.0).abs() < 1e-9);
        assert_eq!(a.dop, vec![10, 5]);
        // Merged virtual stage: (√60 + √15)² = 135... check Eq. 3.
        let expect = (60.0_f64.sqrt() + 15.0_f64.sqrt()).powi(2);
        assert!((a.merged_alpha - expect).abs() < 1e-9);
        // Completion time at the optimum: 60/10 + 15/5 = 9 (paper's value).
        let t = 60.0 / a.fractional[0] + 15.0 / a.fractional[1];
        assert!((t - 9.0).abs() < 1e-9);
        // The data-size-proportional split (12, 3) gives 10 — worse.
        assert!(t < 60.0 / 12.0 + 15.0 / 3.0);
    }

    /// Paper Fig. 5: siblings α₁=24, α₂=12 ⇒ inter-path ratio 2 ⇒ with 6
    /// slots between them, d₁=4, d₂=2, completion 6 (vs 8 at 3/3).
    #[test]
    fn fig5_inter_path_ratio() {
        // Two siblings feeding a sink with negligible work.
        let dag = DagBuilder::new("sib")
            .stage("s1", StageKind::Map, 0, 0)
            .stage("s2", StageKind::Map, 0, 0)
            .stage("sink", StageKind::Reduce, 0, 0)
            .edge("s1", "sink", EdgeKind::Shuffle, 0)
            .edge("s2", "sink", EdgeKind::Shuffle, 0)
            .build()
            .unwrap();
        let model = explicit_model(&dag, &[24.0, 12.0, 1e-12]);
        let a = compute_dop(&dag, &model, &[false, false], Objective::Jct, 6);
        // Sink's α≈0 absorbs ~no slots; siblings split ~6 at ratio 2:1.
        let ratio = a.fractional[0] / a.fractional[1];
        assert!((ratio - 2.0).abs() < 1e-6, "ratio={ratio}");
        assert!(a.fractional[0] + a.fractional[1] > 5.99);
        // Balanced: equal execution times.
        let t1 = 24.0 / a.fractional[0];
        let t2 = 12.0 / a.fractional[1];
        assert!((t1 - t2).abs() < 1e-6);
    }

    /// Intra-path optimality (Appendix A.1): the computed split beats any
    /// perturbed split for a 3-stage chain.
    #[test]
    fn intra_path_is_optimal() {
        let dag = DagBuilder::new("chain3")
            .stage("a", StageKind::Map, 0, 0)
            .stage("b", StageKind::Custom, 0, 0)
            .stage("c", StageKind::Reduce, 0, 0)
            .edge("a", "b", EdgeKind::Shuffle, 0)
            .edge("b", "c", EdgeKind::Shuffle, 0)
            .build()
            .unwrap();
        let alphas = [50.0, 18.0, 2.0];
        let model = explicit_model(&dag, &alphas);
        let c = 30.0;
        let a = compute_dop(&dag, &model, &[false, false], Objective::Jct, 30);
        let jct = |d: &[f64]| alphas.iter().zip(d).map(|(al, dd)| al / dd).sum::<f64>();
        let best = jct(&a.fractional);
        // Perturb mass between stage pairs; optimum must not improve.
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let mut d = a.fractional.clone();
                let eps = 0.05 * d[i];
                d[i] -= eps;
                d[j] += eps;
                assert!(jct(&d) >= best - 1e-9, "perturbation {i}->{j} improved");
            }
        }
        assert!((a.fractional.iter().sum::<f64>() - c).abs() < 1e-9);
    }

    /// Cost mode: dᵢ ∝ √(ρᵢαᵢ) for every pair, even siblings.
    #[test]
    fn cost_mode_single_path_reduction() {
        let dag = DagBuilder::new("sib")
            .stage("s1", StageKind::Map, 0, 0)
            .stage("s2", StageKind::Map, 0, 0)
            .stage("sink", StageKind::Reduce, 0, 0)
            .edge("s1", "sink", EdgeKind::Shuffle, 0)
            .edge("s2", "sink", EdgeKind::Shuffle, 0)
            .build()
            .unwrap();
        let mut model = explicit_model(&dag, &[64.0, 16.0, 4.0]);
        *model.resource_mut(StageId(0)) = ResourceModel::new(1.0, 0.0);
        *model.resource_mut(StageId(1)) = ResourceModel::new(4.0, 0.0);
        *model.resource_mut(StageId(2)) = ResourceModel::new(1.0, 0.0);
        let a = compute_dop(&dag, &model, &[false, false], Objective::Cost, 28);
        // √(ρα) = √64=8, √64=8, √4=2 → shares 8:8:2 of 28 → 12.44,12.44,3.11
        let f = &a.fractional;
        assert!((f[0] - f[1]).abs() < 1e-9);
        assert!((f[0] / f[2] - 4.0).abs() < 1e-9);
        assert!((f.iter().sum::<f64>() - 28.0).abs() < 1e-9);
    }

    /// Cost optimality: the computed split minimizes Σ ρα/d among
    /// perturbations under Σd = C.
    #[test]
    fn cost_mode_is_optimal() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &Default::default());
        let none = model.no_colocation();
        let a = compute_dop(&dag, &model, &none, Objective::Cost, 100);
        let rho_alpha: Vec<f64> = dag
            .stages()
            .iter()
            .map(|s| model.resource(s.id).rho * model.stage_alpha(&dag, s.id, &none))
            .collect();
        let cost = |d: &[f64]| rho_alpha.iter().zip(d).map(|(ra, dd)| ra / dd).sum::<f64>();
        let best = cost(&a.fractional);
        for i in 0..dag.num_stages() {
            for j in 0..dag.num_stages() {
                if i == j {
                    continue;
                }
                let mut d = a.fractional.clone();
                let eps = 0.02 * d[i];
                d[i] -= eps;
                d[j] += eps;
                assert!(cost(&d) >= best - 1e-9);
            }
        }
    }

    #[test]
    fn rounding_floors_and_clamps() {
        assert_eq!(round_dops(&[3.9, 0.2, 5.0], 10), vec![3, 1, 5]);
        // Over budget from clamping: C=3, three stages → all get 1 (the
        // floored 2 is shrunk back to keep Σd ≤ C).
        assert_eq!(round_dops(&[0.5, 0.5, 2.0], 3), vec![1, 1, 1]);
        let r = round_dops(&[0.1, 0.1, 0.1], 3);
        assert_eq!(r, vec![1, 1, 1]);
    }

    #[test]
    fn largest_remainder_uses_all_slots() {
        let fr = vec![10.7, 20.3, 0.4, 8.6];
        let c = 40;
        let r = round_dops_largest_remainder(&fr, c);
        assert_eq!(r.iter().sum::<u32>(), c, "{r:?}");
        assert!(r.iter().all(|&d| d >= 1));
        // The biggest remainder (0.7) gets the first leftover slot.
        assert!(r[0] >= 11);
    }

    #[test]
    fn largest_remainder_matches_floor_when_exact() {
        let fr = vec![10.0, 20.0, 10.0];
        assert_eq!(round_dops_largest_remainder(&fr, 40), vec![10, 20, 10]);
    }

    #[test]
    fn rounding_never_exceeds_budget_when_feasible() {
        let fr = vec![10.7, 20.3, 0.4, 8.6];
        let c = 40;
        let r = round_dops(&fr, c);
        assert!(r.iter().sum::<u32>() <= c);
        assert!(r.iter().all(|&d| d >= 1));
    }

    /// Colocation shifts slots: zero-copy removes a stage's I/O α, so its
    /// DoP share shrinks in favour of stages that still pay for I/O.
    #[test]
    fn colocation_changes_ratios() {
        let dag = ditto_dag::generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &Default::default());
        let none = model.no_colocation();
        let a_remote = compute_dop(&dag, &model, &none, Objective::Jct, 60);
        let mut colo = none.clone();
        colo[0] = true; // map1 -- join via shared memory
        let a_colo = compute_dop(&dag, &model, &colo, Objective::Jct, 60);
        // map1's α shrinks → its share drops relative to map2's.
        let share_remote = a_remote.fractional[0] / a_remote.fractional[1];
        let share_colo = a_colo.fractional[0] / a_colo.fractional[1];
        assert!(share_colo < share_remote);
    }

    /// The merged α of the whole q95 DAG decreases when edges co-locate
    /// (predicted JCT improves), and the budget is fully distributed.
    #[test]
    fn q95_distribution_sums_to_budget() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &Default::default());
        let none = model.no_colocation();
        let a = compute_dop(&dag, &model, &none, Objective::Jct, 200);
        assert!((a.fractional.iter().sum::<f64>() - 200.0).abs() < 1e-6);
        assert!(a.dop.iter().sum::<u32>() <= 200);
        let mut colo = none.clone();
        colo[0] = true;
        let a2 = compute_dop(&dag, &model, &colo, Objective::Jct, 200);
        assert!(a2.merged_alpha < a.merged_alpha);
    }

    /// Multi-sink and multi-consumer DAGs still distribute the full budget.
    #[test]
    fn general_dag_handled() {
        let dag = ditto_dag::generators::diamond(1 << 30);
        let model = JobTimeModel::from_rates(&dag, &Default::default());
        let none = model.no_colocation();
        let a = compute_dop(&dag, &model, &none, Objective::Jct, 50);
        assert!((a.fractional.iter().sum::<f64>() - 50.0).abs() < 1e-6);
        assert!(a.fractional.iter().all(|&f| f > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one function slot")]
    fn zero_budget_rejected() {
        let dag = two_stage_chain();
        let model = explicit_model(&dag, &[1.0, 1.0]);
        compute_dop(&dag, &model, &[false], Objective::Jct, 0);
    }
}
