//! The shared step-timing shape: setup / read / compute / write seconds.
//!
//! Task timelines in `ditto-exec` and runtime-monitor records in
//! `ditto-cluster` carry the same four step durations; this struct is the
//! single definition both reuse (and the unit the critical-path analyzer
//! attributes JCT into).

/// Durations of the four steps of one task (or means over many), seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize)]
pub struct StepTimings {
    /// Container / function setup.
    pub setup: f64,
    /// Reading inputs (external or intermediate).
    pub read: f64,
    /// Pure computation.
    pub compute: f64,
    /// Writing outputs.
    pub write: f64,
}

impl StepTimings {
    /// All-zero timings.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Timings from explicit step durations.
    pub fn new(setup: f64, read: f64, compute: f64, write: f64) -> Self {
        StepTimings {
            setup,
            read,
            compute,
            write,
        }
    }

    /// Total across the four steps.
    pub fn total(&self) -> f64 {
        self.setup + self.read + self.compute + self.write
    }

    /// Element-wise accumulate (for building sums before [`scaled`]).
    ///
    /// [`scaled`]: StepTimings::scaled
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.setup += other.setup;
        self.read += other.read;
        self.compute += other.compute;
        self.write += other.write;
    }

    /// Element-wise scale (e.g. `sum.scaled(1.0 / n)` for a mean).
    pub fn scaled(&self, k: f64) -> StepTimings {
        StepTimings {
            setup: self.setup * k,
            read: self.read * k,
            compute: self.compute * k,
            write: self.write * k,
        }
    }

    /// The steps as `(setup, read, compute, write)`.
    pub fn as_tuple(&self) -> (f64, f64, f64, f64) {
        (self.setup, self.read, self.compute, self.write)
    }

    /// Element-wise observed/predicted ratio against `predicted`.
    ///
    /// Steps whose prediction is ~zero (below `eps`) yield a neutral 1.0 —
    /// there is no signal to learn a correction from when the model says a
    /// step costs nothing. The drift detector in `ditto-cluster` feeds
    /// these ratios into its per-step EWMAs.
    pub fn ratio_to(&self, predicted: &StepTimings, eps: f64) -> StepTimings {
        let r = |obs: f64, pred: f64| if pred > eps { obs / pred } else { 1.0 };
        StepTimings {
            setup: r(self.setup, predicted.setup),
            read: r(self.read, predicted.read),
            compute: r(self.compute, predicted.compute),
            write: r(self.write, predicted.write),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut sum = StepTimings::zero();
        sum.accumulate(&StepTimings::new(0.5, 1.0, 2.0, 0.5));
        sum.accumulate(&StepTimings::new(0.5, 3.0, 4.0, 1.5));
        assert_eq!(sum.total(), 13.0);
        let mean = sum.scaled(0.5);
        assert_eq!(mean.as_tuple(), (0.5, 2.0, 3.0, 1.0));
    }

    #[test]
    fn ratios_with_zero_guard() {
        let obs = StepTimings::new(1.0, 4.0, 6.0, 0.5);
        let pred = StepTimings::new(1.0, 2.0, 3.0, 0.0);
        let r = obs.ratio_to(&pred, 1e-9);
        assert_eq!(r.as_tuple(), (1.0, 2.0, 2.0, 1.0));
    }
}
