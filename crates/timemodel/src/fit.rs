//! Least-squares fitting of profile samples to the `α/d + β` step model.
//!
//! The paper fits α and β offline from ~5 profiled degrees of parallelism
//! per step (§6.5, Table 2). With the substitution `x = 1/d` the model is
//! linear (`t = α·x + β`), so ordinary least squares applies directly.

/// Result of fitting `(d, t)` samples to `t = α/d + β`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Fitted parallelizable time (seconds·tasks), ≥ 0.
    pub alpha: f64,
    /// Fitted inherent time (seconds), ≥ 0.
    pub beta: f64,
    /// Coefficient of determination on the provided samples (1.0 = exact).
    /// When the samples have no variance, defined as 1.0 for a perfect
    /// constant fit and 0.0 otherwise.
    pub r_squared: f64,
}

/// Fit `t = α/d + β` to samples of `(dop, seconds)` by ordinary least
/// squares on `x = 1/d`, with non-negativity projection: a negative
/// unconstrained α or β is clamped to zero and the other parameter re-fit
/// (the one-dimensional problems have closed forms).
///
/// ```
/// use ditto_timemodel::fit_step;
/// // Five profiled DoPs from t = 120/d + 3 recover the parameters.
/// let samples: Vec<(u32, f64)> =
///     [10, 20, 40, 80, 120].iter().map(|&d| (d, 120.0 / d as f64 + 3.0)).collect();
/// let fit = fit_step(&samples);
/// assert!((fit.alpha - 120.0).abs() < 1e-6);
/// assert!((fit.beta - 3.0).abs() < 1e-6);
/// ```
///
/// # Panics
/// Panics if fewer than 2 samples are given or any `dop == 0`.
pub fn fit_step(samples: &[(u32, f64)]) -> FitResult {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let n = samples.len() as f64;
    let xs: Vec<f64> = samples
        .iter()
        .map(|&(d, _)| {
            assert!(d > 0, "degree of parallelism must be positive");
            1.0 / d as f64
        })
        .collect();
    let ts: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();

    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_t = ts.iter().sum::<f64>() / n;
    let var_x: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    let cov_xt: f64 = xs
        .iter()
        .zip(&ts)
        .map(|(x, t)| (x - mean_x) * (t - mean_t))
        .sum();

    let (mut alpha, mut beta);
    if var_x < 1e-18 {
        // All samples at the same DoP: attribute everything to β.
        alpha = 0.0;
        beta = mean_t;
    } else {
        alpha = cov_xt / var_x;
        beta = mean_t - alpha * mean_x;
    }

    // Non-negativity projection.
    if alpha < 0.0 {
        alpha = 0.0;
        beta = mean_t;
    }
    if beta < 0.0 {
        beta = 0.0;
        // Re-fit α alone: minimize Σ (t - αx)² ⇒ α = Σ tx / Σ x².
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        alpha = if sxx > 0.0 {
            xs.iter().zip(&ts).map(|(x, t)| x * t).sum::<f64>() / sxx
        } else {
            0.0
        };
        alpha = alpha.max(0.0);
    }
    beta = beta.max(0.0);

    // R² on the final (projected) parameters.
    let ss_tot: f64 = ts.iter().map(|t| (t - mean_t).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ts)
        .map(|(x, t)| (t - (alpha * x + beta)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-18 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };

    FitResult {
        alpha,
        beta,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_model() {
        // t = 120/d + 3
        let samples: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&d| (d, 120.0 / d as f64 + 3.0))
            .collect();
        let fit = fit_step(&samples);
        assert!((fit.alpha - 120.0).abs() < 1e-9);
        assert!((fit.beta - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn robust_to_noise() {
        // t = 60/d + 1, with deterministic ±2% perturbation.
        let samples: Vec<(u32, f64)> = [2u32, 4, 8, 16, 32, 64]
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let noise = if i % 2 == 0 { 1.02 } else { 0.98 };
                (d, (60.0 / d as f64 + 1.0) * noise)
            })
            .collect();
        let fit = fit_step(&samples);
        assert!((fit.alpha - 60.0).abs() / 60.0 < 0.05, "alpha={}", fit.alpha);
        assert!((fit.beta - 1.0).abs() < 0.5, "beta={}", fit.beta);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn constant_samples_attributed_to_beta() {
        let fit = fit_step(&[(1, 5.0), (10, 5.0), (100, 5.0)]);
        assert!(fit.alpha.abs() < 1e-9);
        assert!((fit.beta - 5.0).abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn same_dop_samples() {
        let fit = fit_step(&[(4, 5.0), (4, 7.0)]);
        assert_eq!(fit.alpha, 0.0);
        assert!((fit.beta - 6.0).abs() < 1e-9);
    }

    #[test]
    fn projects_negative_beta() {
        // Time *drops faster* than 1/d near small d: unconstrained β < 0.
        let fit = fit_step(&[(1, 100.0), (2, 40.0), (4, 15.0)]);
        assert!(fit.beta >= 0.0);
        assert!(fit.alpha > 0.0);
    }

    #[test]
    fn projects_negative_alpha() {
        // Time *increases* with d (launch overhead dominates): α clamps to 0.
        let fit = fit_step(&[(1, 1.0), (2, 2.0), (4, 4.0)]);
        assert_eq!(fit.alpha, 0.0);
        assert!((fit.beta - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        fit_step(&[(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dop_sample() {
        fit_step(&[(0, 1.0), (2, 1.0)]);
    }
}
