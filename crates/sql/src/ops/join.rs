//! Hash join: inner, left-semi and left-anti over single-column keys.
//!
//! Vectorized: `i64` keys go through a raw [`I64RowMap`] (open addressing,
//! `u32` row chains, no enum boxing); string keys are dictionary-encoded on
//! the build side so probes compare dense codes instead of cloning
//! `String`s into boxed keys. Output is bit-identical to
//! [`crate::reference::hash_join_reference`]: probe order follows the left
//! input, matches within a key follow ascending build-row order.

use crate::column::Column;
use crate::dict::StrDict;
use crate::hash::I64RowMap;
use crate::selvec::SelVec;
use crate::table::{Field, Schema, Table};

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// All matching (left, right) row pairs; output carries both sides'
    /// columns (right-side name collisions get an `_r` suffix).
    Inner,
    /// Left rows with at least one match; left columns only (`EXISTS`).
    LeftSemi,
    /// Left rows with no match; left columns only (`NOT EXISTS`).
    LeftAnti,
}

/// Hash join `left ⋈ right` on `left_key = right_key`.
///
/// Builds the hash table on the right side, probes with the left, so row
/// order follows the left input (deterministic).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
) -> Table {
    let lcol = left.column_req(left_key);
    let rcol = right.column_req(right_key);
    assert_eq!(
        lcol.dtype(),
        rcol.dtype(),
        "join key types differ: {left_key} vs {right_key}"
    );
    assert!(
        left.num_rows() < u32::MAX as usize,
        "probe side too large for u32 row ids"
    );

    match (lcol, rcol) {
        (Column::I64(lk), Column::I64(rk)) => {
            let map = I64RowMap::build(rk);
            match kind {
                JoinKind::Inner => {
                    let mut lidx: Vec<u32> = Vec::new();
                    let mut ridx: Vec<u32> = Vec::new();
                    for (l, &k) in lk.iter().enumerate() {
                        for r in map.rows(k) {
                            lidx.push(l as u32);
                            ridx.push(r);
                        }
                    }
                    inner_output(left, right, lidx, ridx)
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    let want = kind == JoinKind::LeftSemi;
                    let mask: Vec<bool> =
                        lk.iter().map(|&k| map.contains(k) == want).collect();
                    left.gather(&SelVec::from_mask(&mask))
                }
            }
        }
        (Column::Str(ls), Column::Str(rs)) => {
            // Dictionary-encode the build side; chain codes like i64 keys.
            let mut dict = StrDict::with_capacity(rs.len());
            let rcodes: Vec<i64> = rs.iter().map(|s| dict.intern(s) as i64).collect();
            let map = I64RowMap::build(&rcodes);
            match kind {
                JoinKind::Inner => {
                    let mut lidx: Vec<u32> = Vec::new();
                    let mut ridx: Vec<u32> = Vec::new();
                    for (l, s) in ls.iter().enumerate() {
                        if let Some(code) = dict.lookup(s) {
                            for r in map.rows(code as i64) {
                                lidx.push(l as u32);
                                ridx.push(r);
                            }
                        }
                    }
                    inner_output(left, right, lidx, ridx)
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    let want = kind == JoinKind::LeftSemi;
                    let mask: Vec<bool> = ls
                        .iter()
                        .map(|s| dict.lookup(s).is_some() == want)
                        .collect();
                    left.gather(&SelVec::from_mask(&mask))
                }
            }
        }
        // Float keys (or any other combination the dtype assert let
        // through). The reference rejects floats lazily, per evaluated
        // row, so fully empty inputs produce an empty join instead.
        _ => {
            if left.num_rows() > 0 || right.num_rows() > 0 {
                panic!("cannot join on a float column");
            }
            match kind {
                JoinKind::Inner => inner_output(left, right, Vec::new(), Vec::new()),
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    left.gather(&SelVec::all(0))
                }
            }
        }
    }
}

/// Assemble an inner join's output from matched row-pair indices: gather
/// both sides, merge schemas, suffix right-side name collisions with `_r`.
fn inner_output(left: &Table, right: &Table, lidx: Vec<u32>, ridx: Vec<u32>) -> Table {
    let lpart = left.gather(&SelVec::Rows(lidx));
    let rpart = right.gather(&SelVec::Rows(ridx));
    let mut fields = lpart.schema.fields.clone();
    let mut cols = lpart.columns;
    for (f, c) in rpart.schema.fields.iter().zip(rpart.columns) {
        let name = if lpart.schema.index_of(&f.name).is_some() {
            format!("{}_r", f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field {
            name,
            dtype: f.dtype,
        });
        cols.push(c);
    }
    Table::new(Schema { fields }, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn left() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("lx", DataType::F64)]),
            vec![
                Column::I64(vec![1, 2, 2, 3]),
                Column::F64(vec![10.0, 20.0, 21.0, 30.0]),
            ],
        )
    }

    fn right() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("ry", DataType::Str)]),
            vec![
                Column::I64(vec![2, 3, 3, 5]),
                Column::Str(vec!["b".into(), "c1".into(), "c2".into(), "e".into()]),
            ],
        )
    }

    #[test]
    fn inner_join_pairs() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::Inner);
        // k=2 matches 1 right row ×2 left rows; k=3 matches 2 right rows.
        assert_eq!(j.num_rows(), 4);
        // Right key column collided → suffixed.
        assert!(j.column("k_r").is_some());
        assert_eq!(j.column_req("k").as_i64(), &[2, 2, 3, 3]);
        assert_eq!(
            j.column_req("ry").as_str(),
            &["b".to_string(), "b".into(), "c1".into(), "c2".into()]
        );
    }

    #[test]
    fn semi_join_keeps_matching_left_rows_once() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::LeftSemi);
        assert_eq!(j.column_req("k").as_i64(), &[2, 2, 3]);
        assert_eq!(j.num_columns(), 2, "left columns only");
    }

    #[test]
    fn anti_join_keeps_unmatched() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::LeftAnti);
        assert_eq!(j.column_req("k").as_i64(), &[1]);
    }

    #[test]
    fn string_keys_work() {
        let l = Table::new(
            Schema::new(&[("s", DataType::Str)]),
            vec![Column::Str(vec!["x".into(), "y".into()])],
        );
        let r = Table::new(
            Schema::new(&[("s2", DataType::Str)]),
            vec![Column::Str(vec!["y".into()])],
        );
        let j = hash_join(&l, &r, "s", "s2", JoinKind::Inner);
        assert_eq!(j.num_rows(), 1);
        // No collision: right column keeps its name.
        assert!(j.column("s2").is_some());
    }

    #[test]
    fn empty_sides() {
        let e = Table::empty(Schema::new(&[("k", DataType::I64)]));
        assert_eq!(hash_join(&e, &right(), "k", "k", JoinKind::Inner).num_rows(), 0);
        assert_eq!(hash_join(&left(), &e, "k", "k", JoinKind::Inner).num_rows(), 0);
        assert_eq!(
            hash_join(&left(), &e, "k", "k", JoinKind::LeftAnti).num_rows(),
            4,
            "anti join against empty right keeps everything"
        );
    }

    #[test]
    #[should_panic(expected = "key types differ")]
    fn mismatched_key_types() {
        let r = Table::new(
            Schema::new(&[("k", DataType::Str)]),
            vec![Column::Str(vec!["1".into()])],
        );
        hash_join(&left(), &r, "k", "k", JoinKind::Inner);
    }

    #[test]
    #[should_panic(expected = "float column")]
    fn float_key_rejected() {
        // Both key columns are f64 so the type-equality check passes and
        // the float-key rejection fires.
        hash_join(&left(), &left(), "lx", "lx", JoinKind::Inner);
    }

    #[test]
    fn matches_reference_on_all_kinds_and_key_types() {
        use crate::reference::hash_join_reference;
        for kind in [JoinKind::Inner, JoinKind::LeftSemi, JoinKind::LeftAnti] {
            assert_eq!(
                hash_join(&left(), &right(), "k", "k", kind),
                hash_join_reference(&left(), &right(), "k", "k", kind),
                "{kind:?} i64"
            );
            // Flip sides: string key join via the ry column.
            let l = right();
            let r = Table::new(
                Schema::new(&[("ry", DataType::Str)]),
                vec![Column::Str(vec!["c1".into(), "b".into(), "b".into()])],
            );
            assert_eq!(
                hash_join(&l, &r, "ry", "ry", kind),
                hash_join_reference(&l, &r, "ry", "ry", kind),
                "{kind:?} str"
            );
        }
    }
}
