//! Reachability and ancestry queries over a [`JobDag`].

use crate::graph::JobDag;
use crate::stage::StageId;
use std::collections::{BTreeSet, HashSet};

/// All stages reachable downstream from `from` (excluding `from` itself).
/// Ordered by stage id, so iteration is deterministic.
pub fn descendants(dag: &JobDag, from: StageId) -> BTreeSet<StageId> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<StageId> = dag.children_of(from).collect();
    while let Some(s) = stack.pop() {
        if seen.insert(s) {
            stack.extend(dag.children_of(s));
        }
    }
    seen
}

/// All stages reachable upstream from `from` (excluding `from` itself).
/// Ordered by stage id, so iteration is deterministic.
pub fn ancestors(dag: &JobDag, from: StageId) -> BTreeSet<StageId> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<StageId> = dag.parents_of(from).collect();
    while let Some(s) = stack.pop() {
        if seen.insert(s) {
            stack.extend(dag.parents_of(s));
        }
    }
    seen
}

/// `true` if there is a directed path `a -> ... -> b`.
pub fn reaches(dag: &JobDag, a: StageId, b: StageId) -> bool {
    if a == b {
        return true;
    }
    descendants(dag, a).contains(&b)
}

/// Sibling stages of `s`: stages (≠ `s`) that share at least one downstream
/// consumer with `s`. In the paper's tree setting these are the stages whose
/// execution times the inter-path DoP ratio balances.
pub fn siblings(dag: &JobDag, s: StageId) -> Vec<StageId> {
    let mut out: Vec<StageId> = Vec::new();
    let mut seen = HashSet::new();
    for parent in dag.children_of(s) {
        for sib in dag.parents_of(parent) {
            if sib != s && seen.insert(sib) {
                out.push(sib);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::stage::StageKind;

    fn sample() -> (JobDag, Vec<StageId>) {
        // a -> c, b -> c, c -> d
        let mut g = JobDag::new("t");
        let a = g.add_stage("a", StageKind::Map);
        let b = g.add_stage("b", StageKind::Map);
        let c = g.add_stage("c", StageKind::Join);
        let d = g.add_stage("d", StageKind::Reduce);
        g.add_edge(a, c, EdgeKind::Shuffle, 1).unwrap();
        g.add_edge(b, c, EdgeKind::Shuffle, 1).unwrap();
        g.add_edge(c, d, EdgeKind::Gather, 1).unwrap();
        (g, vec![a, b, c, d])
    }

    #[test]
    fn descendants_and_ancestors() {
        let (g, s) = sample();
        assert_eq!(descendants(&g, s[0]), [s[2], s[3]].into_iter().collect());
        assert_eq!(ancestors(&g, s[3]), [s[0], s[1], s[2]].into_iter().collect());
        assert!(descendants(&g, s[3]).is_empty());
        assert!(ancestors(&g, s[0]).is_empty());
    }

    #[test]
    fn reaches_works() {
        let (g, s) = sample();
        assert!(reaches(&g, s[0], s[3]));
        assert!(reaches(&g, s[1], s[2]));
        assert!(!reaches(&g, s[0], s[1]));
        assert!(reaches(&g, s[2], s[2]));
    }

    #[test]
    fn siblings_share_a_consumer() {
        let (g, s) = sample();
        assert_eq!(siblings(&g, s[0]), vec![s[1]]);
        assert_eq!(siblings(&g, s[1]), vec![s[0]]);
        assert!(siblings(&g, s[2]).is_empty());
        assert!(siblings(&g, s[3]).is_empty());
    }
}
