//! Elastic vs fixed parallelism on Q95 (the paper's Fig. 14/15 story).
//!
//! Under a skewed cluster (Zipf-0.9 slot availability), a fixed per-stage
//! DoP wastes slots on short stages and starves the long ones. Ditto
//! expands the critical-path stages and shrinks the overlapped ones; this
//! example prints both Gantt charts and the per-stage step breakdown.
//!
//! ```sh
//! cargo run --release --example elastic_vs_fixed
//! ```

use ditto::cluster::{Cluster, ResourceManager, SlotDistribution};
use ditto::core::baselines::FixedDopScheduler;
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, simulate, ExecConfig, GroundTruth};
use ditto::sql::queries::Query;
use ditto::sql::{Database, ScaleConfig};

fn main() {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let mut plan = Query::Q95.prepared_plan(&db);
    plan.scale_volumes(40_000.0); // paper-scale volumes

    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
    let (model, _) = profile.build_model(&plan.dag);

    let cluster = Cluster::paper_testbed(&SlotDistribution::zipf_09());
    let rm = ResourceManager::snapshot(&cluster);
    println!(
        "cluster: {} servers, {} free slots {:?}\n",
        cluster.num_servers(),
        rm.total_free(),
        cluster.free_slots()
    );

    let fixed_dop = rm.total_free() / plan.dag.num_stages() as u32;
    let fixed = FixedDopScheduler { dop: fixed_dop }.schedule(&SchedulingContext {
        dag: &plan.dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let elastic = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &plan.dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });

    let (ft, fm) = simulate(&plan.dag, &fixed, &gt);
    let (et, em) = simulate(&plan.dag, &elastic, &gt);

    println!("=== fixed parallelism (DoP {fixed_dop} everywhere) ===");
    println!("{}", ft.ascii_gantt(64));
    println!("per-stage breakdown (mean seconds per task):");
    println!("  stage            tasks  setup   read  compute  write");
    for b in ft.stage_breakdowns() {
        println!(
            "  {:>2} {:<12} {:>5}  {:>5.1}  {:>5.1}  {:>7.1}  {:>5.1}",
            b.stage + 1,
            plan.dag.stages()[b.stage as usize].name,
            b.tasks,
            b.setup,
            b.read,
            b.compute,
            b.write
        );
    }

    println!("\n=== elastic parallelism (Ditto) ===");
    println!("per-stage DoP: {:?}", elastic.dop);
    println!("{}", et.ascii_gantt(64));

    println!(
        "fixed JCT = {:.1}s, elastic JCT = {:.1}s  ({:.2}x speedup, same slot budget)",
        fm.jct,
        em.jct,
        fm.jct / em.jct
    );
}
