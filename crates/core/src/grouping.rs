//! Stage groups and the greedy grouping order (paper §4.3, Algorithm 2).

use crate::objective::Objective;
use ditto_dag::paths::{critical_path, DagWeights};
use ditto_dag::{EdgeId, JobDag, StageId};
use ditto_timemodel::JobTimeModel;

/// A union-find over stages tracking which stages share a group.
///
/// The *stage group* is Ditto's scheduling granularity: all tasks of all
/// stages in a group are placed on the same server so intermediate data
/// moves through zero-copy shared memory.
#[derive(Debug, Clone)]
pub struct StageGroups {
    parent: Vec<u32>,
}

impl StageGroups {
    /// Every stage in its own group.
    pub fn singletons(n_stages: usize) -> Self {
        StageGroups {
            parent: (0..n_stages as u32).collect(),
        }
    }

    /// Group representative of a stage.
    pub fn find(&self, s: StageId) -> StageId {
        let mut x = s.0;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        StageId(x)
    }

    /// Merge the groups of two stages.
    pub fn union(&mut self, a: StageId, b: StageId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller id becomes the representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi.index()] = lo.0;
        }
    }

    /// `true` if the two stages share a group.
    pub fn same_group(&self, a: StageId, b: StageId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Per-edge co-location mask: `mask[EdgeId]` is `true` iff the edge's
    /// endpoints share a group (its I/O then costs ~nothing, §4.1).
    pub fn colocation_mask(&self, dag: &JobDag) -> Vec<bool> {
        dag.edges()
            .iter()
            .map(|e| self.same_group(e.src, e.dst))
            .collect()
    }

    /// Materialize the groups as sorted stage lists (including singletons),
    /// ordered by representative id.
    pub fn groups(&self, n_stages: usize) -> Vec<Vec<StageId>> {
        let mut buckets: Vec<Vec<StageId>> = vec![Vec::new(); n_stages];
        for i in 0..n_stages {
            let s = StageId(i as u32);
            buckets[self.find(s).index()].push(s);
        }
        buckets.into_iter().filter(|b| !b.is_empty()).collect()
    }

    /// Group index of every stage, aligned with [`StageGroups::groups`].
    pub fn group_of(&self, n_stages: usize) -> Vec<usize> {
        let groups = self.groups(n_stages);
        let mut idx = vec![usize::MAX; n_stages];
        for (gi, g) in groups.iter().enumerate() {
            for s in g {
                idx[s.index()] = gi;
            }
        }
        idx
    }
}

/// Grouping weights for the current DoP configuration (§4.3):
///
/// * JCT: node weight `C(sᵢ)`, edge weight `W(sᵢ) + R(sⱼ)`;
/// * cost: node weight `M(sᵢ)·C(sᵢ)`, edge weight
///   `M(sᵢ)·W(sᵢ) + M(sⱼ)·R(sⱼ)`.
///
/// Grouped edges weigh (nearly) zero thanks to zero-copy shared memory.
pub fn grouping_weights(
    dag: &JobDag,
    model: &JobTimeModel,
    dop: &[u32],
    colocated: &[bool],
    objective: Objective,
) -> DagWeights {
    let mut w = DagWeights::zeros(dag);
    for s in dag.stages() {
        let d = dop[s.id.index()].max(1) as f64;
        let c = model.compute_time(s.id, d);
        w.node[s.id.index()] = match objective {
            Objective::Jct => c,
            Objective::Cost => model.resource(s.id).usage(d) * c,
        };
    }
    for e in dag.edges() {
        if colocated[e.id.index()] {
            continue; // zero weight
        }
        let io = model.edge_io(e.id);
        let d_src = dop[e.src.index()].max(1) as f64;
        let d_dst = dop[e.dst.index()].max(1) as f64;
        let wt = io.write.eval(d_src);
        let rt = io.read.eval(d_dst);
        w.edge[e.id.index()] = match objective {
            Objective::Jct => wt + rt,
            Objective::Cost => {
                model.resource(e.src).usage(d_src) * wt + model.resource(e.dst).usage(d_dst) * rt
            }
        };
    }
    w
}

/// The greedy grouping *order*: the sequence in which Algorithm 2 traverses
/// edges. For the cost objective this is simply all edges in descending
/// weight. For JCT, each next edge is the heaviest ungrouped edge on the
/// *current* critical path (re-deriving the critical path after zeroing the
/// chosen edge, as in Fig. 6b); when the critical path holds no ungrouped
/// edge, the globally heaviest ungrouped edge is taken so every edge is
/// eventually traversed.
pub fn greedy_group_order(
    dag: &JobDag,
    model: &JobTimeModel,
    dop: &[u32],
    colocated: &[bool],
    objective: Objective,
) -> Vec<EdgeId> {
    let mut w = grouping_weights(dag, model, dop, colocated, objective);
    let mut remaining: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
    let mut order = Vec::with_capacity(remaining.len());

    match objective {
        Objective::Cost => {
            // Global descending weight; ties by edge id for determinism.
            remaining.sort_by(|&a, &b| {
                w.edge[b.index()]
                    .partial_cmp(&w.edge[a.index()])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            order = remaining;
        }
        Objective::Jct => {
            while !remaining.is_empty() {
                let cp = critical_path(dag, &w);
                // Heaviest not-yet-ordered edge on the critical path.
                let pick = cp
                    .edges
                    .iter()
                    .copied()
                    .filter(|e| remaining.contains(e))
                    .max_by(|&a, &b| {
                        w.edge[a.index()]
                            .partial_cmp(&w.edge[b.index()])
                            .unwrap()
                            .then(b.cmp(&a))
                    });
                // Fall back to the globally heaviest remaining edge when the
                // critical path is fully grouped already.
                let pick = pick.unwrap_or_else(|| {
                    remaining
                        .iter()
                        .copied()
                        .max_by(|&a, &b| {
                            w.edge[a.index()]
                                .partial_cmp(&w.edge[b.index()])
                                .unwrap()
                                .then(b.cmp(&a))
                        })
                        .unwrap()
                });
                w.edge[pick.index()] = 0.0; // re-profile: ω(e) ← 0
                remaining.retain(|&e| e != pick);
                order.push(pick);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_dag::{DagBuilder, EdgeKind, StageKind};
    use ditto_timemodel::model::RateConfig;

    #[test]
    fn dsu_union_find() {
        let mut g = StageGroups::singletons(4);
        assert!(!g.same_group(StageId(0), StageId(1)));
        g.union(StageId(0), StageId(1));
        g.union(StageId(2), StageId(3));
        assert!(g.same_group(StageId(0), StageId(1)));
        assert!(!g.same_group(StageId(1), StageId(2)));
        g.union(StageId(1), StageId(3));
        assert!(g.same_group(StageId(0), StageId(2)));
        assert_eq!(g.groups(4).len(), 1);
        assert_eq!(g.group_of(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn colocation_mask_follows_groups() {
        let dag = ditto_dag::generators::fig1_join();
        let mut g = StageGroups::singletons(3);
        assert_eq!(g.colocation_mask(&dag), vec![false, false]);
        g.union(StageId(0), StageId(2)); // map1 with join
        assert_eq!(g.colocation_mask(&dag), vec![true, false]);
    }

    /// Reproduces the paper's Fig. 6a: single path, traverse edges in
    /// descending weight: [e1, e2] with ω(e1)=100 > ω(e2)=50.
    #[test]
    fn fig6a_single_path_order() {
        // Three-stage chain; edge bytes chosen so shuffle times are 100, 50.
        let dag = DagBuilder::new("fig6a")
            .stage("a", StageKind::Map, 0, 0)
            .stage("b", StageKind::Map, 0, 0)
            .stage("c", StageKind::Map, 0, 0)
            .edge("a", "b", EdgeKind::Shuffle, 5_000_000_000)
            .edge("b", "c", EdgeKind::Shuffle, 2_500_000_000)
            .build()
            .unwrap();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![1, 1, 1];
        let colocated = vec![false, false];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Jct);
        assert_eq!(order, vec![EdgeId(0), EdgeId(1)]);
    }

    /// Reproduces the paper's Fig. 6b: two paths; order [e3, e1, e4, e2].
    /// Node weights are equal per path; edge weights: path1 = 100, 50;
    /// path2 = 120, 80 — wait, the figure has path2's weights at 120 after
    /// grouping e3; we encode ω(e1)=100(→120 in fig), exact values below.
    #[test]
    fn fig6b_multi_path_order() {
        // Build: a1-e0->a2-e2->sink ; b1-e1->b2-e3->sink
        // Weights (bytes scaled): e0=120, e1=100, e2=50, e3=80.
        // Critical path initially via b (120+80=200)?? The figure's path2
        // carries ω(e3)=100 and ω(e4)=80 with path1 ω(e1)=120 after the
        // first grouping. We set: path1 edges 120, 50; path2 edges 100, 80.
        // path2 total 180 > path1 170 → pick e(100)=path2's heavier (100);
        // then path1 (170) → pick 120; then path2 (80) → 80; then 50.
        let bw = 100e6; // shuffle_bw used below, 1 byte ≈ 1/bw s at d=1
        let b = |secs: f64| (secs * bw) as u64;
        let dag = DagBuilder::new("fig6b")
            .stage("a1", StageKind::Map, 0, 0)
            .stage("a2", StageKind::Map, 0, 0)
            .stage("b1", StageKind::Map, 0, 0)
            .stage("b2", StageKind::Map, 0, 0)
            .stage("sink", StageKind::Reduce, 0, 0)
            .edge("a1", "a2", EdgeKind::Shuffle, b(60.0)) // e0: W+R=120
            .edge("b1", "b2", EdgeKind::Shuffle, b(50.0)) // e1: 100
            .edge("a2", "sink", EdgeKind::Shuffle, b(25.0)) // e2: 50
            .edge("b2", "sink", EdgeKind::Shuffle, b(40.0)) // e3: 80
            .build()
            .unwrap();
        let mut cfg = RateConfig::default();
        cfg.io_beta = 0.0;
        cfg.compute_beta = 0.0;
        cfg.straggler_scale = 1.0;
        let model = JobTimeModel::from_rates(&dag, &cfg);
        let dop = vec![1; 5];
        let colocated = vec![false; 4];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Jct);
        // path2 (b) total 180 > path1 170: pick e1 (100). Then path1 (170):
        // pick e0 (120). Then path2 (80): pick e3. Then e2.
        assert_eq!(order, vec![EdgeId(1), EdgeId(0), EdgeId(3), EdgeId(2)]);
    }

    #[test]
    fn cost_order_is_global_descending() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![4; dag.num_stages()];
        let colocated = vec![false; dag.num_edges()];
        let order = greedy_group_order(&dag, &model, &dop, &colocated, Objective::Cost);
        assert_eq!(order.len(), dag.num_edges());
        let w = grouping_weights(&dag, &model, &dop, &colocated, Objective::Cost);
        for pair in order.windows(2) {
            assert!(w.edge[pair[0].index()] >= w.edge[pair[1].index()] - 1e-12);
        }
    }

    #[test]
    fn grouped_edges_have_zero_weight() {
        let dag = ditto_dag::generators::fig1_join();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![4, 4, 4];
        let w_all = grouping_weights(&dag, &model, &dop, &[false, false], Objective::Jct);
        let w_grp = grouping_weights(&dag, &model, &dop, &[true, false], Objective::Jct);
        assert!(w_all.edge[0] > 0.0);
        assert_eq!(w_grp.edge[0], 0.0);
        assert_eq!(w_grp.edge[1], w_all.edge[1]);
    }

    #[test]
    fn order_contains_every_edge_once() {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let dop = vec![8; dag.num_stages()];
        let colocated = vec![false; dag.num_edges()];
        for obj in [Objective::Jct, Objective::Cost] {
            let order = greedy_group_order(&dag, &model, &dop, &colocated, obj);
            let mut sorted: Vec<u32> = order.iter().map(|e| e.0).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..dag.num_edges() as u32).collect::<Vec<_>>());
        }
    }
}
