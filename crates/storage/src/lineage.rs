//! Lineage tracking for intermediate objects.
//!
//! Wukong-style recovery: rather than replicating every intermediate
//! partition, remember which (stage, task) produced each object and which
//! input objects that producer consumed. When a read finds the object lost
//! or corrupted, the runtime re-executes just the producing task — its
//! inputs are still addressable through the same index, recursively — before
//! escalating to a full suffix reschedule.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Provenance of one intermediate object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Stage that produced the object.
    pub stage: u32,
    /// Task within the stage that produced it.
    pub task: u32,
    /// Keys of the objects the producing task consumed (empty for source
    /// stages reading external input).
    pub inputs: Vec<String>,
}

/// Thread-safe map from object key to the task that produced it.
///
/// Keys are held in a `BTreeMap` so iteration order (and hence any recovery
/// trace built from it) is deterministic.
#[derive(Debug, Default)]
pub struct LineageIndex {
    inner: Mutex<BTreeMap<String, Provenance>>,
}

impl LineageIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `(stage, task)` produced `key` from `inputs`.
    pub fn record(&self, key: impl Into<String>, stage: u32, task: u32, inputs: Vec<String>) {
        self.inner.lock().insert(
            key.into(),
            Provenance {
                stage,
                task,
                inputs,
            },
        );
    }

    /// Provenance of `key`, if recorded.
    pub fn lookup(&self, key: &str) -> Option<Provenance> {
        self.inner.lock().get(key).cloned()
    }

    /// The producing `(stage, task)` of `key`, if recorded.
    pub fn producer(&self, key: &str) -> Option<(u32, u32)> {
        self.inner.lock().get(key).map(|p| (p.stage, p.task))
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Transitive closure of inputs needed to rebuild `key`, deepest first
    /// (inputs before the object they feed), deduplicated. The result is
    /// the bounded re-execution frontier: replaying producers in this order
    /// rebuilds `key` without reading any lost ancestor.
    pub fn rebuild_order(&self, key: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut order = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        // Iterative post-order: bounded by the number of tracked objects.
        let mut stack = vec![(key.to_string(), false)];
        while let Some((k, expanded)) = stack.pop() {
            if expanded {
                if seen.insert(k.clone()) {
                    order.push(k);
                }
                continue;
            }
            if seen.contains(&k) {
                continue;
            }
            stack.push((k.clone(), true));
            if let Some(p) = inner.get(&k) {
                for input in p.inputs.iter().rev() {
                    stack.push((input.clone(), false));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let idx = LineageIndex::new();
        assert!(idx.is_empty());
        idx.record("b/0", 1, 0, vec!["a/0".into(), "a/1".into()]);
        idx.record("a/0", 0, 0, vec![]);
        idx.record("a/1", 0, 1, vec![]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.producer("b/0"), Some((1, 0)));
        assert_eq!(
            idx.lookup("a/1"),
            Some(Provenance {
                stage: 0,
                task: 1,
                inputs: vec![]
            })
        );
        assert_eq!(idx.lookup("nope"), None);
    }

    #[test]
    fn rebuild_order_is_inputs_first() {
        let idx = LineageIndex::new();
        idx.record("c/0", 2, 0, vec!["b/0".into()]);
        idx.record("b/0", 1, 0, vec!["a/0".into(), "a/1".into()]);
        idx.record("a/0", 0, 0, vec![]);
        idx.record("a/1", 0, 1, vec![]);
        let order = idx.rebuild_order("c/0");
        assert_eq!(order, vec!["a/0", "a/1", "b/0", "c/0"]);
    }

    #[test]
    fn rebuild_order_dedups_shared_ancestors() {
        let idx = LineageIndex::new();
        idx.record("d/0", 3, 0, vec!["b/0".into(), "c/0".into()]);
        idx.record("b/0", 1, 0, vec!["a/0".into()]);
        idx.record("c/0", 2, 0, vec!["a/0".into()]);
        idx.record("a/0", 0, 0, vec![]);
        let order = idx.rebuild_order("d/0");
        assert_eq!(order.iter().filter(|k| *k == "a/0").count(), 1);
        let pos = |k: &str| order.iter().position(|x| x == k).unwrap();
        assert!(pos("a/0") < pos("b/0"));
        assert!(pos("a/0") < pos("c/0"));
        assert!(pos("b/0") < pos("d/0"));
    }
}
