//! Race-freedom certification sweep (`figures -- race` / `race-smoke`).
//!
//! Two halves, matching the race checker's two tools:
//!
//! * [`race_certify`] — fixed-seed traced runs of the engines' hairiest
//!   paths (fault ladder, aggressive speculation, whole-server failover
//!   with suffix rescheduling, adaptive drift replanning, an applied
//!   replan splice with seam edges), each fed to
//!   [`ditto_audit::check_trace`] with the scenario's *real* per-server
//!   slot capacities. Every row must certify clean; a finding here means
//!   an engine change broke an ordering invariant the checker encodes.
//! * [`race_explore`] — the small-scope model checker
//!   ([`ditto_exec::explore_random_dags`]): every tie-break interleaving
//!   of simultaneous-event batches on small random DAGs with faults and
//!   adaptive replanning must produce bit-identical metrics.
//!
//! Deterministic: fixed seeds name fixed fault histories, so the sweep
//! is a regression gate, not a fuzzer.

use crate::adapt::traced_adapt_pair;
use crate::setup::prepare;
use ditto_audit::{check_trace, RaceOptions, RaceReport};
use ditto_cluster::{ResourceManager, ServerId};
use ditto_core::{DittoScheduler, JointOptions, Objective, Scheduler, SchedulingContext};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_exec::{
    explore_random_dags, simulate, try_simulate_adaptive_traced, try_simulate_with_faults_traced,
    AdaptiveConfig, ExecConfig, ExploreConfig, FaultPlan, FaultRates, GroundTruth, RecoveryPolicy,
    ReschedulingContext,
};
use ditto_obs::{Recorder, TraceData};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;

/// The certification cluster: same slot-constrained shape as the
/// adaptive sweep, so replanning actually moves placements around.
const RACE_SLOTS: [u32; 2] = [24, 16];

/// Seed naming every scenario's fault history.
pub const RACE_SEED: u64 = 41;

/// One certified trace.
#[derive(Debug, Clone, Serialize)]
pub struct RaceSweepRow {
    /// Scenario name (fixed-seed engine configuration).
    pub scenario: String,
    /// Engine that produced the trace ("frozen" / "adaptive").
    pub engine: String,
    /// Happens-before ops parsed from the trace.
    pub ops: usize,
    /// Happens-before edges built over them.
    pub hb_edges: usize,
    /// Error-severity race findings (must be 0).
    pub errors: usize,
    /// Warning-severity findings (model simplifications, allowed).
    pub warnings: usize,
    /// True iff the trace certified race-free.
    pub clean: bool,
}

fn row(scenario: &str, engine: &str, report: &RaceReport) -> RaceSweepRow {
    RaceSweepRow {
        scenario: scenario.to_string(),
        engine: engine.to_string(),
        ops: report.ops,
        hb_edges: report.hb_edges,
        errors: report.error_count(),
        warnings: report.warning_count(),
        clean: report.is_clean(),
    }
}

fn certify(trace: &TraceData) -> RaceReport {
    check_trace(
        trace,
        &RaceOptions {
            capacities: Some(RACE_SLOTS.to_vec()),
            ..RaceOptions::default()
        },
    )
}

/// Certify the fixed-seed scenario set race-free. Every row's trace goes
/// through the full happens-before checker with real slot capacities.
pub fn race_certify() -> Vec<RaceSweepRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = ResourceManager::from_free_slots(RACE_SLOTS.to_vec());
    let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    let ctx = ReschedulingContext {
        model: &p.model,
        resources: &rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    let mut rows = Vec::new();

    // 1. The fault ladder end to end: crashes, stragglers, object
    // loss/corruption with lineage re-execution, speculation enabled.
    let plan = FaultPlan::from_rates(FaultRates {
        crash_prob: 0.05,
        straggler_prob: 0.05,
        straggler_slowdown: 4.0,
        loss_prob: 0.05,
        corruption_prob: 0.02,
        ..FaultRates::none(RACE_SEED)
    });
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let obs = Recorder::new();
    try_simulate_with_faults_traced(&p.plan.dag, &schedule, &p.gt, &plan, &policy, None, &obs)
        .expect("fault ladder recovers within policy bounds");
    rows.push(row("faults", "frozen", &certify(&obs.finish())));

    // 2. Aggressive speculation: a quarter of tasks straggle 6×, the
    // policy speculates early — spec slot intervals must stay warnings,
    // never capacity errors.
    let plan = FaultPlan::from_rates(FaultRates {
        straggler_prob: 0.25,
        straggler_slowdown: 6.0,
        ..FaultRates::none(RACE_SEED + 1)
    });
    let policy = RecoveryPolicy {
        max_retries: 16,
        speculation: true,
        speculation_quantile: 0.5,
        speculation_factor: 1.2,
        ..RecoveryPolicy::default()
    };
    let obs = Recorder::new();
    try_simulate_with_faults_traced(&p.plan.dag, &schedule, &p.gt, &plan, &policy, None, &obs)
        .expect("speculation recovers within policy bounds");
    rows.push(row("speculation", "frozen", &certify(&obs.finish())));

    // 3. Whole-server failover with suffix rescheduling: server 0 dies a
    // third of the way in; survivors repack (post-failover occupancy is
    // graded leniently, but ordering rules still apply in full).
    let (_, base) = simulate(&p.plan.dag, &schedule, &p.gt);
    let plan = FaultPlan::none().and_server_failure(ServerId(0), base.jct * 0.3);
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let obs = Recorder::new();
    try_simulate_with_faults_traced(
        &p.plan.dag,
        &schedule,
        &p.gt,
        &plan,
        &policy,
        Some(&ctx),
        &obs,
    )
    .expect("failover recovers within policy bounds");
    rows.push(row("failover", "frozen", &certify(&obs.finish())));

    // 4. The adaptive 2×-drift exemplar pair (same fixed-seed pair the
    // cross-run diff quick-start traces): both the frozen baseline and
    // the replanning engine — applied splice, seam edges and all — must
    // certify.
    let (frozen, adaptive) = traced_adapt_pair();
    rows.push(row("adapt-2x-drift", "frozen", &certify(&frozen)));
    rows.push(row("adapt-2x-drift", "adaptive", &certify(&adaptive)));

    // 5. An applied replan splice on a *random* DAG shape (not the Q95
    // plan the other scenarios share): 2× drift plus object loss makes
    // the re-optimized suffix win mid-run, so seam edges and the
    // splice's retroactive grace bound are exercised on an irregular
    // topology too.
    let dag = random_dag(13, &RandomDagConfig::sized(7));
    let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
    let splice_schedule = DittoScheduler::new().schedule(&SchedulingContext {
        dag: &dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let plan = FaultPlan::from_rates(FaultRates {
        loss_prob: 0.1,
        ..FaultRates::none(RACE_SEED)
    })
    .with_drift(2.0);
    let splice_ctx = ReschedulingContext {
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let gt = GroundTruth::new(ExecConfig::default());
    let obs = Recorder::new();
    try_simulate_adaptive_traced(
        &dag,
        &splice_schedule,
        &gt,
        &plan,
        &policy,
        &splice_ctx,
        &AdaptiveConfig::default(),
        &obs,
    )
    .expect("drift replan recovers within policy bounds");
    let trace = obs.finish();
    assert!(
        trace.events.iter().any(|e| e.name == "hb.seam"),
        "the replan-splice scenario must actually splice (seam edges emitted)"
    );
    rows.push(row("replan-splice", "adaptive", &certify(&trace)));

    rows
}

/// One model-checked DAG.
#[derive(Debug, Clone, Serialize)]
pub struct RaceExploreRow {
    /// Index in the seeded DAG sequence.
    pub dag: usize,
    /// Interleavings actually run (canonical + enumerated + sampled).
    pub interleavings: usize,
    /// Tie-break decision points in the canonical run.
    pub decision_points: usize,
    /// Whole decision trie enumerated (no budget cut-off).
    pub exhaustive: bool,
    /// A diverging interleaving was found (must be false).
    pub divergent: bool,
    /// Shrunk minimal witness decision vector, if divergent.
    pub witness: String,
}

/// Model-check tie-break invariance on `n` seeded random DAGs with
/// faults and adaptive replanning (the ISSUE's ≥ 16-DAG acceptance bar
/// for `figures -- race`; the smoke tier runs fewer).
pub fn race_explore(n: usize) -> Vec<RaceExploreRow> {
    explore_random_dags(n, &ExploreConfig::default())
        .expect("seeded fault rates recover within policy bounds")
        .into_iter()
        .enumerate()
        .map(|(i, o)| RaceExploreRow {
            dag: i,
            interleavings: o.interleavings,
            decision_points: o.decision_points,
            exhaustive: o.exhaustive,
            divergent: o.divergence.is_some(),
            witness: o
                .divergence
                .map(|d| format!("{:?}: {}", d.witness_decisions, d.detail))
                .unwrap_or_default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certification_sweep_is_clean() {
        let rows = race_certify();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.clean, "scenario {} ({}) raced: {} errors", r.scenario, r.engine, r.errors);
            assert!(r.ops > 0 && r.hb_edges > 0, "scenario {} traced nothing", r.scenario);
        }
        // The scenarios must actually exercise distinct machinery —
        // including an applied splice (race_certify asserts seam edges
        // were emitted before certifying the replan-splice row).
        assert!(rows.iter().any(|r| r.engine == "adaptive"));
        assert!(rows.iter().any(|r| r.scenario == "replan-splice"));
    }

    #[test]
    fn explore_smoke_has_no_divergence() {
        let rows = race_explore(2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(!r.divergent, "dag {} diverged: {}", r.dag, r.witness);
            assert!(r.interleavings >= 1);
        }
    }
}
