//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim uses a concrete
//! self-describing data model: [`Content`]. `Serialize` lowers a value into
//! `Content`; `Deserialize` lifts it back. Format crates (the `serde_json`
//! shim) convert between `Content` and their wire format. The derive macros
//! (`serde_derive` shim) generate `to_content`/`from_content` for structs
//! and unit enums, honoring `#[serde(default)]` and
//! `#[serde(default = "path")]`.
//!
//! The surface is intentionally small — exactly what this workspace's
//! types exercise — but the trait names and derive spellings match
//! upstream, so swapping the real serde back in is a manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing value tree: the shim's serde data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`'s positive range semantics.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with insertion-ordered string keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Lower `self` into the [`Content`] data model.
pub trait Serialize {
    /// Convert to a content tree.
    fn to_content(&self) -> Content;
}

/// Lift a value back out of the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Convert from a content tree.
    fn from_content(c: &Content) -> Result<Self, String>;
}

/// Deserialization with a lifetime parameter, matching upstream's
/// `serde::de::DeserializeOwned` bound spelling where needed.
pub mod de {
    /// Owned deserialization (the only flavor the shim supports).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

macro_rules! int_content {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| format!("{v} out of range for {}", stringify!($t))),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(format!("expected integer, got {}", other.kind())),
                }
            }
        }
    )*};
}

int_content!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if *self <= i64::MAX as u64 {
            Content::I64(*self as i64)
        } else {
            Content::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::I64(v) => u64::try_from(*v).map_err(|_| format!("{v} is negative")),
            Content::U64(v) => Ok(*v),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(format!("expected integer, got {}", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(format!("expected number, got {}", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, String> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(()),
            other => Err(format!("expected null, got {}", other.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_content {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Seq(items) => {
                        const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                        if items.len() != LEN {
                            return Err(format!(
                                "expected tuple of {LEN}, got {} elements", items.len()
                            ));
                        }
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(format!("expected sequence, got {}", other.kind())),
                }
            }
        }
    )*};
}

tuple_content! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u32::from_content(&7u32.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let t = (3u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::I64(5)).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::I64(300)).is_err());
    }
}
