//! Telemetry experiments: the traced exemplar run behind `--trace-out`
//! and the tracing-overhead accounting in the bench report.
//!
//! The exemplar is the fault experiment's fixed-seed configuration (Q95,
//! S3, Zipf-0.9 testbed, crash+straggler rate 0.05, seed 17, bounded
//! retry + speculation) run with a live [`Recorder`]: scheduler decisions,
//! per-attempt task spans and per-medium byte counters all land on one
//! stream, which the Chrome exporter, the critical-path analyzer and the
//! runtime monitor then consume.

use crate::setup::{default_testbed, prepare};
use ditto_core::{DittoScheduler, Objective, SchedulingContext};
use ditto_exec::{
    try_simulate_with_faults, try_simulate_with_faults_traced, FaultPlan, FaultRates, JobMetrics,
    RecoveryPolicy,
};
use ditto_obs::{critical_path, CriticalPathReport, Recorder, TraceData};
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;
use std::time::Instant;

/// Crash == straggler probability of the exemplar run.
pub const TRACED_FAULT_RATE: f64 = 0.05;
/// Fault seed of the exemplar run (same as the fault sweep).
pub const TRACED_SEED: u64 = 17;

fn exemplar_faults() -> (FaultPlan, RecoveryPolicy) {
    (
        FaultPlan::from_rates(FaultRates {
            crash_prob: TRACED_FAULT_RATE,
            straggler_prob: TRACED_FAULT_RATE,
            straggler_slowdown: 4.0,
            ..FaultRates::none(TRACED_SEED)
        }),
        RecoveryPolicy {
            max_retries: 16,
            ..RecoveryPolicy::default()
        },
    )
}

/// Everything the exemplar traced run produces.
pub struct TracedRun {
    /// The full telemetry stream (spans, events, counters, metrics).
    pub data: TraceData,
    /// Job metrics of the same run.
    pub metrics: JobMetrics,
    /// JCT attribution from walking the trace's critical path.
    pub critical_path: CriticalPathReport,
}

/// Run the fixed-seed fault experiment with telemetry enabled: the joint
/// optimizer and the fault-aware simulator share one recorder, so the
/// stream carries scheduler-decision spans, per-attempt task spans and
/// per-medium byte counters for a single deterministic execution.
pub fn traced_fault_run() -> TracedRun {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = default_testbed();
    let obs = Recorder::new();
    let schedule = DittoScheduler::new().schedule_traced(
        &SchedulingContext {
            dag: &p.plan.dag,
            model: &p.model,
            resources: &rm,
            objective: Objective::Jct,
        },
        &obs,
    );
    let (plan, policy) = exemplar_faults();
    let (_, metrics) =
        try_simulate_with_faults_traced(&p.plan.dag, &schedule, &p.gt, &plan, &policy, None, &obs)
            .expect("rate-0.05 faults recover within 16 retries");
    let data = obs.finish();
    let critical_path = critical_path(&data);
    TracedRun {
        data,
        metrics,
        critical_path,
    }
}

/// One row of the tracing-overhead comparison.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryOverheadRow {
    /// "untraced" (disabled recorder) or "traced" (live recorder).
    pub mode: String,
    /// Best-of-N wall time of the mode-dependent part (joint scheduling
    /// + fault simulation), milliseconds.
    pub run_ms: f64,
    /// Wall time of one full experiment data point in this mode:
    /// data/profiling pipeline (identical, untraced code in both modes)
    /// plus the run above, milliseconds.
    pub wall_ms: f64,
    /// Spans recorded per run (0 when untraced).
    pub spans: usize,
    /// Events recorded per run (0 when untraced).
    pub events: usize,
    /// Experiment wall-time overhead vs the untraced mode, percent (0
    /// for the untraced baseline row).
    pub overhead_pct: f64,
}

/// Measure telemetry overhead on one experiment data point — what
/// `figures -- faults --trace-out` pays: the prepare pipeline (database,
/// plan measurement, profiling, model fit), joint scheduling, and the
/// fixed-seed fault simulation. Only scheduling + simulation see the
/// recorder, so the prepare pipeline is timed once and charged to both
/// modes, while the mode-dependent part is best-of-N with interleaved
/// samples (min filters scheduler noise better than mean). The recorder
/// is designed to keep the per-record cost small — one span per task
/// plus one per attempt, step phases expanded at export time, not in
/// the hot path — so the experiment-level overhead stays far under 5%.
pub fn telemetry_overhead() -> Vec<TelemetryOverheadRow> {
    let prep_t0 = Instant::now();
    let p = prepare(Query::Q95, Medium::S3);
    let prepare_secs = prep_t0.elapsed().as_secs_f64();
    let rm = default_testbed();
    let ctx = SchedulingContext {
        dag: &p.plan.dag,
        model: &p.model,
        resources: &rm,
        objective: Objective::Jct,
    };
    let (plan, policy) = exemplar_faults();

    let run_untraced = || {
        let t0 = Instant::now();
        let schedule = DittoScheduler::new().schedule_traced(&ctx, &Recorder::disabled());
        let out = try_simulate_with_faults(&p.plan.dag, &schedule, &p.gt, &plan, &policy, None)
            .expect("recoverable");
        (t0.elapsed().as_secs_f64(), out)
    };
    let run_traced = || {
        let obs = Recorder::new();
        let t0 = Instant::now();
        let schedule = DittoScheduler::new().schedule_traced(&ctx, &obs);
        let out = try_simulate_with_faults_traced(
            &p.plan.dag,
            &schedule,
            &p.gt,
            &plan,
            &policy,
            None,
            &obs,
        )
        .expect("recoverable");
        (t0.elapsed().as_secs_f64(), out, obs.finish())
    };

    // Warm both paths once, then interleave samples and keep the minima.
    let _ = run_untraced();
    let mut sample = run_traced();
    let (mut best_untraced, mut best_traced) = (f64::MAX, f64::MAX);
    for _ in 0..16 {
        best_untraced = best_untraced.min(run_untraced().0);
        let s = run_traced();
        if s.0 < best_traced {
            best_traced = s.0;
            sample = s;
        }
    }
    let data = sample.2;
    let untraced_wall = prepare_secs + best_untraced;
    let traced_wall = prepare_secs + best_traced;
    vec![
        TelemetryOverheadRow {
            mode: "untraced".into(),
            run_ms: best_untraced * 1e3,
            wall_ms: untraced_wall * 1e3,
            spans: 0,
            events: 0,
            overhead_pct: 0.0,
        },
        TelemetryOverheadRow {
            mode: "traced".into(),
            run_ms: best_traced * 1e3,
            wall_ms: traced_wall * 1e3,
            spans: data.spans.len(),
            events: data.events.len(),
            overhead_pct: (traced_wall / untraced_wall - 1.0) * 100.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_obs::{summary_table, to_chrome_trace, validate_chrome_trace};

    #[test]
    fn traced_run_emits_valid_chrome_trace() {
        let run = traced_fault_run();
        let json = to_chrome_trace(&run.data);
        let stats = validate_chrome_trace(&json).expect("schema-valid Chrome trace");
        // Scheduler decisions, per-attempt task spans with step phases,
        // and per-medium byte counters are all present.
        assert!(stats.count_prefix("sched.") > 0, "scheduler spans missing");
        assert!(stats.count("task") > 0, "task spans missing");
        assert!(stats.count("attempt") > 0, "attempt spans missing");
        assert!(stats.count("read") > 0 && stats.count("compute") > 0, "step slices missing");
        assert!(stats.counters > 0, "storage byte counters missing");
        assert!(!summary_table(&run.data).is_empty());
    }

    #[test]
    fn critical_path_matches_job_metrics() {
        let run = traced_fault_run();
        let cp = &run.critical_path;
        assert!(
            (cp.jct - run.metrics.jct).abs() <= 0.01 * run.metrics.jct,
            "critical-path JCT {} vs metrics {}",
            cp.jct,
            run.metrics.jct
        );
        // The attribution decomposes the whole JCT, not just part of it.
        assert!((cp.attributed() - cp.jct).abs() <= 1e-6 * cp.jct.max(1.0));
    }

    #[test]
    fn monitor_ingests_traced_run() {
        let run = traced_fault_run();
        let monitor = ditto_cluster::RuntimeMonitor::new();
        let n = monitor.ingest(&run.data);
        assert!(n > 0, "no task spans ingested");
        assert_eq!(monitor.len(), n);
        // Every stage of Q95 produced records with coherent step sums.
        for r in monitor.records() {
            assert!(r.steps.total() <= r.duration() + 1e-6);
        }
    }

    #[test]
    fn telemetry_overhead_under_five_percent() {
        let rows = telemetry_overhead();
        assert_eq!(rows.len(), 2);
        let traced = rows.iter().find(|r| r.mode == "traced").unwrap();
        assert!(traced.spans > 0 && traced.events > 0);
        assert!(
            traced.overhead_pct < 5.0,
            "tracing overhead {:.2}% exceeds 5%",
            traced.overhead_pct
        );
    }
}
