//! Distributed execution correctness: the local runtime must produce the
//! oracle answer for every query, under every scheduler and both external
//! media — the schedule changes *where* data flows, never *what* comes out.

use ditto::cluster::ResourceManager;
use ditto::core::baselines::{EvenSplitScheduler, FixedDopScheduler, NimbleScheduler};
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, ExecConfig, GroundTruth, LocalRuntime};
use ditto::sql::queries::{q1, q16, q3, q94, q95, Query};
use ditto::sql::{Database, ScaleConfig, Table};
use ditto::storage::{DataPlane, Medium};
use ditto::timemodel::JobTimeModel;

fn run_distributed(
    q: Query,
    db: &Database,
    scheduler: &dyn Scheduler,
    free: &[u32],
    external: Medium,
) -> Table {
    let plan = q.prepared_plan(db);
    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[2, 4, 8]);
    let (model, _): (JobTimeModel, _) = profile.build_model(&plan.dag);
    let rm = ResourceManager::from_free_slots(free.to_vec());
    let schedule = scheduler.schedule(&SchedulingContext {
        dag: &plan.dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let dataplane = DataPlane::new(external, free.len());
    LocalRuntime::new()
        .execute(&plan, db, &schedule, &dataplane)
        .result
}

fn triple_close(got: (i64, f64, f64), want: (i64, f64, f64), ctx: &str) {
    assert_eq!(got.0, want.0, "{ctx}: count");
    assert!(
        (got.1 - want.1).abs() < 1e-6 * want.1.abs().max(1.0),
        "{ctx}: cost {} vs {}",
        got.1,
        want.1
    );
    assert!(
        (got.2 - want.2).abs() < 1e-6 * want.2.abs().max(1.0),
        "{ctx}: profit {} vs {}",
        got.2,
        want.2
    );
}

#[test]
fn every_query_matches_oracle_under_every_scheduler() {
    let db = Database::generate(ScaleConfig::with_sf(0.4));
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(DittoScheduler::new()),
        Box::new(NimbleScheduler::default()),
        Box::new(EvenSplitScheduler),
        Box::new(FixedDopScheduler { dop: 3 }),
    ];
    // Q16/Q94 have 10 stages; FixedDop{3} needs 30 slots.
    let free = [16u32, 12, 8];
    for s in &schedulers {
        let ctx = s.name().to_string();

        let out = run_distributed(Query::Q1, &db, s.as_ref(), &free, Medium::S3);
        let mut got = q1::result_customers(&out);
        got.sort_unstable();
        let mut want = q1::reference(&db);
        want.sort_unstable();
        assert_eq!(got, want, "q1 under {ctx}");

        let out = run_distributed(Query::Q16, &db, s.as_ref(), &free, Medium::S3);
        triple_close(q16::result_triple(&out), q16::reference(&db), &format!("q16 {ctx}"));

        let out = run_distributed(Query::Q94, &db, s.as_ref(), &free, Medium::S3);
        triple_close(q94::result_triple(&out), q94::reference(&db), &format!("q94 {ctx}"));

        let out = run_distributed(Query::Q95, &db, s.as_ref(), &free, Medium::S3);
        triple_close(q95::result_triple(&out), q95::reference(&db), &format!("q95 {ctx}"));

        let out = run_distributed(Query::Q3, &db, s.as_ref(), &free, Medium::S3);
        let got = q3::result_rows(&out);
        let want = q3::reference(&db);
        assert_eq!(got.len(), want.len(), "q3 under {ctx}");
        let (sg, sw): (f64, f64) = (
            got.iter().map(|&(_, r)| r).sum(),
            want.iter().map(|&(_, r)| r).sum(),
        );
        assert!((sg - sw).abs() < 1e-6 * sw.abs().max(1.0), "q3 under {ctx}");
    }
}

#[test]
fn redis_and_s3_paths_agree() {
    let db = Database::generate(ScaleConfig::with_sf(0.4));
    for q in Query::all() {
        let a = run_distributed(q, &db, &DittoScheduler::new(), &[10, 10], Medium::S3);
        let b = run_distributed(q, &db, &DittoScheduler::new(), &[10, 10], Medium::Redis);
        assert_eq!(a.num_rows(), b.num_rows(), "{q}");
    }
}

#[test]
fn single_server_cluster_all_shared_memory() {
    // On one server everything is co-located: the external store should
    // carry no shuffle traffic at all.
    let db = Database::generate(ScaleConfig::with_sf(0.3));
    let plan = Query::Q95.prepared_plan(&db);
    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&plan.dag, &gt, &[2, 4]);
    let (model, _) = profile.build_model(&plan.dag);
    let rm = ResourceManager::from_free_slots(vec![32]);
    let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
        dag: &plan.dag,
        model: &model,
        resources: &rm,
        objective: Objective::Jct,
    });
    let dataplane = DataPlane::new(Medium::S3, 1);
    let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
    assert_eq!(out.ledger.s3.transfers, 0, "ledger: {:?}", out.ledger);
    assert!(out.ledger.shared_memory.transfers > 0);
    let (n, _, _) = q95::result_triple(&out.result);
    assert_eq!(n, q95::reference(&db).0);
}

#[test]
fn dop_one_everywhere_still_correct() {
    // Degenerate parallelism: a single task per stage.
    let db = Database::generate(ScaleConfig::with_sf(0.3));
    let out = run_distributed(
        Query::Q16,
        &db,
        &FixedDopScheduler { dop: 1 },
        &[6, 6],
        Medium::S3,
    );
    triple_close(q16::result_triple(&out), q16::reference(&db), "q16 dop=1");
}
