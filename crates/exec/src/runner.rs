//! The local runtime: physically execute a query plan under a schedule.
//!
//! This is the "execution engine atop SPRIGHT" of the paper's §5, scaled
//! to one machine: every task runs on its own worker thread, intermediate
//! tables are encoded with the `ditto-sql` codec and move through the
//! `ditto-storage` [`DataPlane`] — the zero-copy shared-memory bus when
//! the schedule co-locates producer and consumer, the external object
//! store otherwise. Stages run in topological order with a barrier in
//! between (launch-time overlap is a *timing* concern handled by the
//! simulator; the runtime's job is correctness and byte accounting).
//!
//! Communication patterns per edge kind:
//!
//! * **Shuffle** — each producer task hash-partitions its output by the
//!   stage's `output_key` into `d_dst` buckets and sends bucket `j` to
//!   consumer task `j` (keys co-partitioned across producers);
//! * **Gather** — each producer task forwards its whole output to one
//!   consumer (`producer % d_dst`), other consumers receive empty markers
//!   so schemas always propagate;
//! * **AllGather** — every consumer task receives a full copy.

use ditto_cluster::{RuntimeMonitor, TaskRecord};
use ditto_core::Schedule;
use ditto_dag::{EdgeKind, StageId};
use ditto_sql::{Database, QueryPlan, StageOp, Table};
use ditto_storage::{DataPlane, TransferLedger};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a local run.
#[derive(Debug)]
pub struct RunOutput {
    /// The job answer (final-stage partials combined).
    pub result: Table,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Data-plane accounting (bytes per medium, persistence cost).
    pub ledger: TransferLedger,
    /// Per-task runtime records.
    pub monitor: Arc<RuntimeMonitor>,
    /// Task attempts that crashed and were retried (fault injection).
    pub retries: u64,
}

/// Fault injection: serverless functions fail and are re-executed. An
/// injected crash happens after the task's evaluation but *before it
/// publishes any output*, so the retry is idempotent and downstream
/// consumers only ever see one copy — the all-or-nothing output contract
/// real serverless shuffle layers rely on.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability a task attempt crashes (retried until it succeeds; the
    /// probability applies independently per attempt).
    pub task_failure_prob: f64,
    /// Determinism seed.
    pub seed: u64,
}

/// The multi-threaded local executor.
#[derive(Debug, Clone, Default)]
pub struct LocalRuntime {
    /// Receive timeout per partition (generous default: 30 s).
    pub recv_timeout: Option<Duration>,
    /// Optional crash-and-retry fault injection.
    pub faults: Option<FaultConfig>,
}

impl LocalRuntime {
    /// A runtime with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    fn timeout(&self) -> Duration {
        self.recv_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Execute `plan` under `schedule`, moving intermediates through
    /// `dataplane`.
    ///
    /// # Panics
    /// Panics if the schedule does not validate against the plan's DAG or
    /// a shuffle stage lacks an `output_key`.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
    ) -> RunOutput {
        let dag = &plan.dag;
        schedule.validate(dag).expect("schedule matches plan DAG");
        let monitor = Arc::new(RuntimeMonitor::new());
        let retries = AtomicU64::new(0);
        let started = Instant::now();
        let mut final_partials: Vec<Table> = Vec::new();
        let timeout = self.timeout();

        let order = dag.topo_order().expect("valid DAG");
        for s in order {
            let d = schedule.dop[s.index()];
            let is_final = dag.out_degree(s) == 0;
            let scan_slices: Option<Vec<Table>> = match &plan.stages[s.index()].op {
                StageOp::Scan { table, .. } => Some(db.table(table).split(d as usize)),
                _ => None,
            };

            let retries_ref = &retries;
            let partials: Vec<Table> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..d)
                    .map(|t| {
                        let scan_slice = scan_slices.as_ref().map(|v| v[t as usize].clone());
                        let monitor = monitor.clone();
                        scope.spawn(move || {
                            self.run_task(
                                plan, db, schedule, dataplane, s, t, scan_slice, is_final,
                                timeout, started, &monitor, retries_ref,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("task thread panicked"))
                    .collect()
            });
            if is_final {
                final_partials = partials;
            }
        }

        RunOutput {
            result: plan.combine_final(&final_partials),
            wall_seconds: started.elapsed().as_secs_f64(),
            ledger: dataplane.ledger(),
            monitor,
            retries: retries.load(Ordering::Relaxed),
        }
    }

    /// One task: gather inputs, evaluate the stage operator, scatter
    /// outputs. Returns the output table for final-stage tasks.
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
        s: StageId,
        t: u32,
        scan_slice: Option<Table>,
        is_final: bool,
        timeout: Duration,
        job_start: Instant,
        monitor: &RuntimeMonitor,
        retries: &AtomicU64,
    ) -> Option<Table> {
        let dag = &plan.dag;
        let launch = job_start.elapsed().as_secs_f64();
        let my_server = schedule.placement[s.index()].server_of_task(t).index();

        // ---- gather inputs ----
        let read_t0 = Instant::now();
        let mut inputs: HashMap<String, Table> = HashMap::new();
        let mut bytes_read = 0u64;
        for e in dag.in_edges(s) {
            let du = schedule.dop[e.src.index()];
            let mut parts = Vec::new();
            for ut in 0..du {
                let src_server = schedule.placement[e.src.index()].server_of_task(ut).index();
                let data = dataplane
                    .recv_partition(e.id.0, ut, t, src_server, my_server, timeout)
                    .unwrap_or_else(|err| {
                        panic!("{}: stage {s} task {t} missing input on {}: {err}", plan.name, e.id)
                    });
                bytes_read += data.len() as u64;
                parts.push(Table::decode(data));
            }
            let merged = Table::concat(&parts).expect("at least one upstream task");
            inputs.insert(dag.stage(e.src).name.clone(), merged);
        }
        let read_secs = read_t0.elapsed().as_secs_f64();

        // ---- evaluate (with crash-and-retry fault injection) ----
        let compute_t0 = Instant::now();
        let mut attempt = 0u32;
        let out = loop {
            let attempt_out = plan.execute_stage(s, db, &inputs, scan_slice.as_ref());
            match &self.faults {
                Some(cfg) if crash_roll(cfg, s, t, attempt) => {
                    // The attempt crashed before publishing: discard its
                    // output and re-execute.
                    attempt += 1;
                    retries.fetch_add(1, Ordering::Relaxed);
                    drop(attempt_out);
                }
                _ => break attempt_out,
            }
        };
        let compute_secs = compute_t0.elapsed().as_secs_f64();

        // ---- scatter outputs ----
        let write_t0 = Instant::now();
        let mut bytes_written = 0u64;
        for e in dag.out_edges(s) {
            let dv = schedule.dop[e.dst.index()];
            let buckets: Vec<Table> = match e.kind {
                EdgeKind::Shuffle => {
                    let key = plan.stages[s.index()]
                        .output_key
                        .as_deref()
                        .unwrap_or_else(|| {
                            panic!("{}: stage {s} shuffles without output_key", plan.name)
                        });
                    out.hash_partition(key, dv as usize)
                }
                EdgeKind::Gather => {
                    // Full output to consumer (t % dv); empty markers keep
                    // schemas flowing to the rest.
                    let target = t % dv;
                    (0..dv)
                        .map(|vt| {
                            if vt == target {
                                out.clone()
                            } else {
                                Table::empty(out.schema.clone())
                            }
                        })
                        .collect()
                }
                EdgeKind::AllGather => (0..dv).map(|_| out.clone()).collect(),
            };
            for (vt, bucket) in buckets.into_iter().enumerate() {
                let dst_server = schedule.placement[e.dst.index()]
                    .server_of_task(vt as u32)
                    .index();
                let data = bucket.encode();
                bytes_written += data.len() as u64;
                dataplane
                    .send_partition(e.id.0, t, vt as u32, my_server, dst_server, data)
                    .expect("data plane accepts intermediate partition");
            }
        }
        let write_secs = write_t0.elapsed().as_secs_f64();

        monitor.record(TaskRecord {
            stage: s.0,
            task: t,
            server: ditto_cluster::ServerId(my_server as u32),
            start: launch,
            end: job_start.elapsed().as_secs_f64(),
            read_secs,
            compute_secs,
            write_secs,
            bytes_read,
            bytes_written,
        });

        is_final.then_some(out)
    }
}

/// Deterministic crash decision for (stage, task, attempt).
fn crash_roll(cfg: &FaultConfig, s: StageId, t: u32, attempt: u32) -> bool {
    use rand::Rng as _;
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0xa076_1d64_78bd_642f)
            .wrapping_add(((s.0 as u64) << 40) | ((t as u64) << 16) | attempt as u64),
    );
    rng.gen_bool(cfg.task_failure_prob.clamp(0.0, 0.999))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_cluster::ResourceManager;
    use ditto_core::baselines::{EvenSplitScheduler, NimbleScheduler};
    use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
    use ditto_sql::queries::{q1, q95, Query};
    use ditto_sql::ScaleConfig;
    use ditto_storage::Medium;
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn run_query(
        q: Query,
        scheduler: &dyn Scheduler,
        free: &[u32],
        external: Medium,
    ) -> (RunOutput, QueryPlan, Database) {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = q.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(external, free.len());
        let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
        (out, plan, db)
    }

    #[test]
    fn q95_distributed_matches_reference() {
        let (out, _, db) = run_query(
            Query::Q95,
            &EvenSplitScheduler,
            &[8, 8, 8, 8],
            Medium::S3,
        );
        let (n, cost, profit) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0));
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
        assert!(out.wall_seconds > 0.0);
        // One record per task across all 9 stages.
        let recs = out.monitor.records();
        let stages_seen: std::collections::HashSet<u32> = recs.iter().map(|r| r.stage).collect();
        assert_eq!(stages_seen.len(), 9, "all 9 stages executed");
        assert!(recs.len() >= 9);
    }

    #[test]
    fn q1_distributed_matches_reference_under_ditto_schedule() {
        let (out, _, db) = run_query(Query::Q1, &DittoScheduler::new(), &[16, 8, 8], Medium::S3);
        let expected = q1::reference(&db);
        let mut got = q1::result_customers(&out.result);
        got.sort_unstable();
        let mut exp = expected;
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn nimble_schedule_gives_same_answer_as_ditto() {
        let (a, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[24, 12, 8], Medium::S3);
        let (b, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[24, 12, 8],
            Medium::S3,
        );
        // Equal up to float summation order (tasks sum partials in
        // different groupings under different schedules).
        let (an, ac, ap) = q95::result_triple(&a.result);
        let (bn, bc, bp) = q95::result_triple(&b.result);
        assert_eq!(an, bn, "answers are schedule-independent");
        assert!((ac - bc).abs() < 1e-6 * ac.abs().max(1.0));
        assert!((ap - bp).abs() < 1e-6 * ap.abs().max(1.0));
    }

    #[test]
    fn colocated_schedule_uses_shared_memory() {
        // Ditto on a roomy cluster groups stages → shared-memory traffic.
        let (out, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[96, 96], Medium::S3);
        assert!(
            out.ledger.shared_memory.transfers > 0,
            "expected zero-copy transfers, ledger: {:?}",
            out.ledger
        );
    }

    #[test]
    fn nimble_never_uses_shared_memory_deliberately() {
        let (out, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[96, 96],
            Medium::S3,
        );
        // Random placement may co-locate individual task pairs, but the
        // schedule declares no colocation, so the data plane only routes
        // via shared memory when src/dst servers coincide by chance. With
        // 2 servers roughly half the traffic lands local; what matters is
        // external traffic exists at all (Ditto above can make it ~zero).
        assert!(out.ledger.s3.transfers > 0);
    }

    #[test]
    fn fault_injection_retries_and_stays_correct() {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = Query::Q95.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(Medium::S3, free.len());
        let runtime = LocalRuntime {
            faults: Some(FaultConfig {
                task_failure_prob: 0.3,
                seed: 11,
            }),
            ..Default::default()
        };
        let out = runtime.execute(&plan, &db, &schedule, &dataplane);
        assert!(out.retries > 0, "30% failure rate must trigger retries");
        // The answer is unaffected by crashes.
        let (n, c, p) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - c).abs() < 1e-6 * c.abs().max(1.0));
        assert!((gp - p).abs() < 1e-6 * p.abs().max(1.0));
    }

    #[test]
    fn fault_injection_deterministic_per_seed() {
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let run = |seed: u64| {
            let dataplane = DataPlane::new(Medium::S3, free.len());
            LocalRuntime {
                faults: Some(FaultConfig {
                    task_failure_prob: 0.5,
                    seed,
                }),
                ..Default::default()
            }
            .execute(&plan, &db, &schedule, &dataplane)
            .retries
        };
        assert_eq!(run(3), run(3), "same seed, same crash pattern");
    }

    #[test]
    fn redis_backend_works_too() {
        let (out, _, db) = run_query(Query::Q95, &EvenSplitScheduler, &[8, 8], Medium::Redis);
        let (n, _, _) = q95::reference(&db);
        let (gn, _, _) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!(out.ledger.redis.transfers > 0);
    }
}
