//! Joint iterative optimization of parallelism and placement (Algorithm 3).
//!
//! Starting from singleton groups and the DoP-ratio configuration, each
//! iteration re-derives the greedy grouping order under the current DoPs,
//! then walks it: tentatively group an edge's endpoint stages, recompute
//! the optimal DoPs for the new co-location mask, and run the best-fit
//! placement check. The first edge that places commits; a failed edge is
//! rolled back and the next one tried. Iterations stop when a full pass
//! commits nothing. The predicted objective is non-increasing throughout
//! (paper Inequality 6): grouping only removes modeled I/O, and DoP ratio
//! computing is optimal for each mask.
//!
//! # Incremental hot path
//!
//! This implementation is the *incremental* rewrite of the loop above,
//! built to schedule 1000-stage DAGs at per-job latency. It is proved
//! bit-identical to [`crate::reference::joint_optimize_reference`] (the
//! original from-scratch loop) by the equivalence property tests; the
//! tricks, each with its invariant:
//!
//! * **Undo-able trial merges** — [`StageGroups`] carries a rollback log,
//!   so a candidate union is `checkpoint → union → rollback_to` instead of
//!   cloning the whole union-find (path compression only runs on commit).
//! * **Delta co-location masks** — a [`ColocationIndex`] keeps per-group
//!   incident-edge lists; a trial union flips only the edges that just
//!   became internal (O(smaller group's edges), reverted in O(flips))
//!   instead of remapping all `E` edges.
//! * **DoP memoization** — `compute_dop` is deterministic in the mask (the
//!   DAG, model, objective and slot budget are fixed per call), and
//!   rejected candidates re-present identical masks in later rounds, so
//!   results are memoized under the bit-packed mask fingerprint the index
//!   maintains incrementally.
//! * **No-op fast path** — an edge whose endpoints already share a group
//!   (transitively committed earlier) trials the *committed* configuration,
//!   which is placeable by construction: accept without re-checking.
//! * **Lazy greedy order** — the JCT order re-derives the critical path
//!   per pick; only the order prefix up to the first commit is ever
//!   consumed, so picks are generated on demand against a cached topo
//!   order and reused weight buffers instead of materializing all `E`.
//! * **Verdict-only placement** — candidates need a yes/no, not a plan:
//!   [`crate::placement::placement_verdict`] re-uses a scratch slot vector
//!   and the index's group lists, reducing the singleton phase to one
//!   aggregate comparison (the full check is retained as a debug
//!   assertion, and the final plan still comes from `can_place_with`).
//! * **Bitset membership** — `ungrouped` is a bitmask, not a `Vec` scanned
//!   with `contains`/`retain` per round.

use crate::dop::{compute_dop, DopAssignment};
use crate::grouping::{
    grouping_weights_into, heavier_edge, sort_edges_by_weight_desc, ColocationIndex, StageGroups,
};
use crate::objective::Objective;
use crate::placement::{can_place_with, placement_verdict, PlacementScratch};
use crate::schedule::Schedule;
use ditto_cluster::ResourceManager;
use ditto_dag::paths::{CriticalPathCache, DagWeights};
use ditto_dag::{EdgeId, JobDag};
use ditto_obs::{Recorder, SpanId, Track};
use ditto_timemodel::JobTimeModel;
use std::collections::HashMap;

/// How the joint optimizer orders candidate edges each iteration
/// (ablation knob; Ditto's choice is [`GroupOrderPolicy::Greedy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOrderPolicy {
    /// The paper's greedy order: heaviest edge on the current critical
    /// path for JCT, globally heaviest for cost (§4.3).
    Greedy,
    /// Globally descending edge weight regardless of objective.
    GlobalDescending,
    /// A fixed random permutation (seeded).
    Random(u64),
}

/// Options for the joint optimizer.
#[derive(Debug, Clone)]
pub struct JointOptions {
    /// Allow decomposing gather-only stage groups into task groups when a
    /// whole group fits no single server (§4.5). On by default.
    pub gather_decomposition: bool,
    /// Upper bound on commit iterations (defensive; the loop naturally
    /// terminates after at most `|E|` commits).
    pub max_iterations: usize,
    /// Edge-ordering policy (ablation knob).
    pub order_policy: GroupOrderPolicy,
    /// Server-fit strategy for the placement check (ablation knob; Ditto
    /// uses best fit, §4.4).
    pub fit_strategy: crate::placement::FitStrategy,
}

impl Default for JointOptions {
    fn default() -> Self {
        JointOptions {
            gather_decomposition: true,
            max_iterations: 4096,
            order_policy: GroupOrderPolicy::Greedy,
            fit_strategy: crate::placement::FitStrategy::BestFit,
        }
    }
}

/// Loop statistics from one [`joint_optimize_with_stats`] call, for the
/// scheduler-throughput benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JointStats {
    /// Commit iterations run (`sched.round` spans).
    pub rounds: usize,
    /// Candidate edges evaluated across all rounds.
    pub candidates: usize,
    /// Candidates accepted (= edges removed from the ungrouped set).
    pub commits: usize,
    /// Candidate evaluations that skipped `compute_dop` — either a memoized
    /// mask fingerprint or the no-op fast path reusing committed DoPs.
    pub dop_memo_hits: usize,
}

/// Run Algorithm 3 and return the final schedule.
///
/// ```
/// use ditto_core::{joint_optimize, JointOptions, Objective};
/// use ditto_cluster::ResourceManager;
/// use ditto_timemodel::{model::RateConfig, JobTimeModel};
///
/// let dag = ditto_dag::generators::q95_shape();
/// let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
/// let rm = ResourceManager::from_free_slots(vec![96, 48, 24]);
/// let schedule = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
/// schedule.validate(&dag).unwrap();
/// assert!(schedule.total_slots() <= rm.total_free());
/// // On a roomy cluster some shuffle is co-located onto shared memory.
/// assert!(schedule.colocated.iter().any(|&c| c));
/// ```
///
/// # Panics
/// Panics if even the fully ungrouped configuration cannot be placed —
/// impossible when the rounded DoPs respect `Σd ≤ C` and `C ≥ #stages`,
/// which [`crate::dop::compute_dop`] guarantees for any
/// cluster with at least one slot per stage.
pub fn joint_optimize(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
) -> Schedule {
    joint_optimize_traced(dag, model, rm, objective, opts, &Recorder::disabled())
}

/// [`joint_optimize`] with telemetry: every scheduler decision lands on
/// the recorder's scheduler track (wall-clock timestamps). Emits a
/// `sched.joint` span over the whole run, a `sched.dop_ratio` span for
/// the initial parallelism configuration, one `sched.round` span per
/// commit iteration, a `sched.merge` event per candidate edge (with the
/// trial α/β of both endpoint stages and an accept/reject verdict), and
/// a `sched.placement` span for the final placement check. A disabled
/// recorder makes this identical to [`joint_optimize`].
pub fn joint_optimize_traced(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
    obs: &Recorder,
) -> Schedule {
    joint_optimize_with_stats(dag, model, rm, objective, opts, obs).0
}

/// [`joint_optimize_traced`] also reporting loop statistics (candidate
/// evaluations, rounds, commits, memo hits) for the scheduler benchmarks.
pub fn joint_optimize_with_stats(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
    obs: &Recorder,
) -> (Schedule, JointStats) {
    let c = rm.total_free();
    let n = dag.num_stages();
    let ne = dag.num_edges();
    let mut stats = JointStats::default();

    obs.name_track(Track::SCHEDULER_GROUP, "scheduler");
    let run_span = obs.begin(
        "sched.joint",
        Track::scheduler(0),
        obs.wall_now(),
        SpanId::NONE,
        vec![
            ("objective", objective.to_string().into()),
            ("stages", (n as u64).into()),
            ("edges", (ne as u64).into()),
            ("free_slots", (c as u64).into()),
        ],
    );

    let mut groups = StageGroups::singletons(n);
    let mut index = ColocationIndex::new(dag, &groups);
    let dop_span = obs.begin(
        "sched.dop_ratio",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let mut assignment = compute_dop(dag, model, index.mask(), objective, c.max(1));
    obs.end(dop_span, obs.wall_now());
    assert!(
        can_place_with(dag, &assignment.dop, &groups, rm, opts.gather_decomposition, opts.fit_strategy).is_some(),
        "ungrouped baseline configuration must be placeable (C={c}, stages={n})"
    );

    // compute_dop memo: bit-packed mask fingerprint → (assignment, Σ dop).
    // Sound because the DAG, model, objective and budget are fixed here.
    let mut memo: HashMap<Vec<u64>, (DopAssignment, u32)> = HashMap::new();
    let mut sum_dop: u32 = assignment.dop.iter().sum();
    memo.insert(index.words().to_vec(), (assignment.clone(), sum_dop));

    // Committed multi-stage groups, by DSU tree root.
    let mut multi_roots: Vec<u32> = Vec::new();
    let mut scratch = PlacementScratch::new(rm);
    let mut flips: Vec<EdgeId> = Vec::new();

    // Order-generation state, reused across rounds.
    let lazy_jct =
        opts.order_policy == GroupOrderPolicy::Greedy && objective == Objective::Jct;
    let mut w = DagWeights::zeros(dag);
    let mut cp_cache = CriticalPathCache::new(dag);
    let mut cp_edges: Vec<EdgeId> = Vec::new();
    let mut jct_remaining: Vec<bool> = Vec::new();
    let mut order_buf: Vec<EdgeId> = Vec::new();
    if let GroupOrderPolicy::Random(seed) = opts.order_policy {
        // The reference re-shuffles per round from the same seed: the
        // permutation is identical every round, so derive it once.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order_buf.extend(dag.edges().iter().map(|e| e.id));
        order_buf.shuffle(&mut rng);
    }

    let mut ungrouped: Vec<bool> = vec![true; ne];
    let mut ungrouped_count = ne;
    let mut iterations = 0usize;
    while ungrouped_count > 0 && iterations < opts.max_iterations {
        iterations += 1;
        let round_span = obs.begin(
            "sched.round",
            Track::scheduler(1),
            obs.wall_now(),
            run_span,
            vec![
                ("iteration", (iterations as u64).into()),
                ("ungrouped", (ungrouped_count as u64).into()),
            ],
        );
        // Re-derive the edge order under the current DoPs and mask. JCT
        // picks are generated lazily below; the other policies are one
        // cheap sort (or the cached permutation).
        let mut jct_left = 0usize;
        if lazy_jct {
            grouping_weights_into(dag, model, &assignment.dop, index.mask(), objective, &mut w);
            jct_remaining.clear();
            jct_remaining.resize(ne, true);
            jct_left = ne;
        } else {
            match opts.order_policy {
                GroupOrderPolicy::Greedy | GroupOrderPolicy::GlobalDescending => {
                    // Greedy-for-cost and GlobalDescending are both a
                    // global descending-weight sort under the objective's
                    // weights.
                    grouping_weights_into(
                        dag,
                        model,
                        &assignment.dop,
                        index.mask(),
                        objective,
                        &mut w,
                    );
                    order_buf.clear();
                    order_buf.extend(dag.edges().iter().map(|e| e.id));
                    sort_edges_by_weight_desc(&mut order_buf, &w);
                }
                GroupOrderPolicy::Random(_) => {} // fixed permutation
            }
        }
        let mut eager_pos = 0usize;

        let mut committed: Option<EdgeId> = None;
        loop {
            // Next candidate: the next still-ungrouped edge in this
            // round's order, or end the round.
            let e = if lazy_jct {
                // Lazy Fig. 6b pick: heaviest remaining edge on the
                // current critical path (globally heaviest when the path
                // is exhausted), zero its weight, repeat — yielding only
                // ungrouped picks. Identical pick sequence to the eager
                // `greedy_group_order` + filter, consumed only as far as
                // the first commit.
                let mut pick = None;
                while jct_left > 0 {
                    cp_cache.critical_path_edges_into(dag, &w, &mut cp_edges);
                    let p = cp_edges
                        .iter()
                        .copied()
                        .filter(|e| jct_remaining[e.index()])
                        .max_by(|&a, &b| heavier_edge(&w, a, b))
                        .unwrap_or_else(|| {
                            (0..ne)
                                .map(|i| EdgeId(i as u32))
                                .filter(|e| jct_remaining[e.index()])
                                .max_by(|&a, &b| heavier_edge(&w, a, b))
                                .expect("jct_left > 0")
                        });
                    w.edge[p.index()] = 0.0; // re-profile: ω(e) ← 0
                    jct_remaining[p.index()] = false;
                    jct_left -= 1;
                    if ungrouped[p.index()] {
                        pick = Some(p);
                        break;
                    }
                }
                match pick {
                    Some(p) => p,
                    None => break,
                }
            } else {
                let mut pick = None;
                while eager_pos < order_buf.len() {
                    let p = order_buf[eager_pos];
                    eager_pos += 1;
                    if ungrouped[p.index()] {
                        pick = Some(p);
                        break;
                    }
                }
                match pick {
                    Some(p) => p,
                    None => break,
                }
            };

            stats.candidates += 1;
            let edge = dag.edge(e);
            let (ra, rb) = (groups.root_of(edge.src), groups.root_of(edge.dst));
            if ra == rb {
                // No-op union: the endpoints were grouped transitively by
                // an earlier commit, so the trial configuration *is* the
                // committed one — placeable by construction.
                stats.dop_memo_hits += 1;
                debug_assert!(can_place_with(
                    dag,
                    &assignment.dop,
                    &groups,
                    rm,
                    opts.gather_decomposition,
                    opts.fit_strategy
                )
                .is_some());
                if obs.is_enabled() {
                    emit_merge_event(obs, model, dag, e, index.mask(), true);
                }
                committed = Some(e);
                break;
            }

            // Trial: undo-able union + mask delta + memoized DoPs +
            // verdict-only placement.
            let token = groups.checkpoint();
            groups.union(edge.src, edge.dst);
            flips.clear();
            index.apply_union(dag, &groups, ra, rb, &mut flips);
            if memo.contains_key(index.words()) {
                stats.dop_memo_hits += 1;
            } else {
                let a = compute_dop(dag, model, index.mask(), objective, c.max(1));
                let s: u32 = a.dop.iter().sum();
                memo.insert(index.words().to_vec(), (a, s));
            }
            let (trial_assignment, trial_sum) =
                memo.get(index.words()).expect("inserted above");
            let placeable = placement_verdict(
                dag,
                &trial_assignment.dop,
                *trial_sum,
                &index,
                &multi_roots,
                Some((ra, rb)),
                rm,
                &mut scratch,
                opts.gather_decomposition,
                opts.fit_strategy,
            );
            debug_assert_eq!(
                placeable,
                can_place_with(
                    dag,
                    &trial_assignment.dop,
                    &groups,
                    rm,
                    opts.gather_decomposition,
                    opts.fit_strategy
                )
                .is_some(),
                "verdict fast path diverged from the full placement check"
            );
            if obs.is_enabled() {
                emit_merge_event(obs, model, dag, e, index.mask(), placeable);
            }
            if placeable {
                assignment = trial_assignment.clone();
                sum_dop = *trial_sum;
                groups.commit();
                let surviving = groups.root_of(edge.src);
                let absorbed = if surviving == ra { rb } else { ra };
                index.merge_committed(surviving, absorbed);
                multi_roots.retain(|&r| r != ra && r != rb);
                multi_roots.push(surviving);
                committed = Some(e);
                break;
            }
            index.revert(&flips);
            groups.rollback_to(token);
        }
        obs.end(round_span, obs.wall_now());
        match committed {
            Some(e) => {
                stats.commits += 1;
                ungrouped[e.index()] = false;
                ungrouped_count -= 1;
                obs.event(
                    "sched.commit",
                    Track::scheduler(0),
                    obs.wall_now(),
                    vec![
                        ("iteration", (iterations as u64).into()),
                        ("edge", (e.index() as u64).into()),
                    ],
                );
            }
            None => break, // no edge in E_u groupable → done
        }
    }
    stats.rounds = iterations;
    let _ = sum_dop; // final value mirrors `assignment`; kept for clarity

    let place_span = obs.begin(
        "sched.placement",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let plan = can_place_with(
        dag,
        &assignment.dop,
        &groups,
        rm,
        opts.gather_decomposition,
        opts.fit_strategy,
    )
    .expect("committed configuration was verified placeable");
    obs.end(place_span, obs.wall_now());
    // An edge is effectively colocated only when both endpoints ended on
    // the same server set; group membership is exactly that by
    // construction (groups place wholly on one server, or into aligned
    // gather chunks).
    let schedule = Schedule {
        scheduler: format!("ditto-{objective}"),
        dop: assignment.dop,
        group_of: groups.group_of(n),
        groups: groups.groups(n),
        colocated: index.mask().to_vec(),
        placement: plan.stage_placement,
    };
    if obs.is_enabled() {
        obs.gauge_set("sched.groups", "", schedule.groups.len() as f64);
        obs.gauge_set("sched.slots", "", schedule.total_slots() as f64);
        obs.gauge_set("sched.iterations", "", iterations as f64);
    }
    obs.end(run_span, obs.wall_now());
    (schedule, stats)
}

/// The per-candidate `sched.merge` event (same shape as the reference
/// implementation's): trial α/β of both endpoint stages + verdict.
fn emit_merge_event(
    obs: &Recorder,
    model: &JobTimeModel,
    dag: &JobDag,
    e: EdgeId,
    trial_mask: &[bool],
    placeable: bool,
) {
    let edge = dag.edge(e);
    obs.event(
        "sched.merge",
        Track::scheduler(1),
        obs.wall_now(),
        vec![
            ("edge", (e.index() as u64).into()),
            ("src", (edge.src.index() as u64).into()),
            ("dst", (edge.dst.index() as u64).into()),
            ("src_alpha", model.stage_alpha(dag, edge.src, trial_mask).into()),
            ("src_beta", model.stage_beta(dag, edge.src, trial_mask).into()),
            ("dst_alpha", model.stage_alpha(dag, edge.dst, trial_mask).into()),
            ("dst_beta", model.stage_beta(dag, edge.dst, trial_mask).into()),
            ("verdict", if placeable { "accept" } else { "reject" }.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{predicted_cost, predicted_jct};
    use crate::reference::joint_optimize_reference;
    use ditto_dag::generators;
    use ditto_timemodel::model::RateConfig;

    fn setup(free: &[u32]) -> (JobDag, JobTimeModel, ResourceManager) {
        let dag = generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        (dag, model, rm)
    }

    use ditto_dag::JobDag;

    #[test]
    fn produces_valid_schedule() {
        let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        s.validate(&dag).unwrap();
        assert!(s.total_slots() <= rm.total_free());
        assert!(s.groups.len() <= dag.num_stages());
    }

    #[test]
    fn groups_heavy_edges_when_room() {
        // A roomy cluster lets Ditto group aggressively.
        let (dag, model, rm) = setup(&[96; 8]);
        let s = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let grouped_edges = s.colocated.iter().filter(|&&c| c).count();
        assert!(grouped_edges > 0, "roomy cluster should co-locate something");
    }

    #[test]
    fn tight_cluster_groups_less() {
        let (dag, model, roomy) = setup(&[96; 8]);
        let tight = ResourceManager::from_free_slots(vec![10; 8]);
        let s_roomy = joint_optimize(&dag, &model, &roomy, Objective::Jct, &JointOptions::default());
        let s_tight = joint_optimize(&dag, &model, &tight, Objective::Jct, &JointOptions::default());
        let g_roomy = s_roomy.colocated.iter().filter(|&&c| c).count();
        let g_tight = s_tight.colocated.iter().filter(|&&c| c).count();
        assert!(g_tight <= g_roomy);
        s_tight.validate(&dag).unwrap();
    }

    /// Inequality 6: the predicted objective after joint optimization is no
    /// worse than the ungrouped DoP-ratio baseline.
    #[test]
    fn objective_non_increasing_vs_baseline() {
        for obj in [Objective::Jct, Objective::Cost] {
            let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
            let c = rm.total_free();
            let base = compute_dop(&dag, &model, &model.no_colocation(), obj, c);
            let s = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
            let frac: Vec<f64> = s.dop.iter().map(|&d| d as f64).collect();
            let base_frac = base.fractional.clone();
            let (before, after) = match obj {
                Objective::Jct => (
                    predicted_jct(&dag, &model, &base_frac, &model.no_colocation()),
                    predicted_jct(&dag, &model, &frac, &s.colocated),
                ),
                Objective::Cost => (
                    predicted_cost(&dag, &model, &base_frac, &model.no_colocation()),
                    predicted_cost(&dag, &model, &frac, &s.colocated),
                ),
            };
            // Allow rounding slack: integer DoPs vs fractional baseline.
            assert!(
                after <= before * 1.10,
                "{obj}: after={after} before={before}"
            );
        }
    }

    #[test]
    fn works_on_every_generator_shape() {
        let shapes: Vec<JobDag> = vec![
            generators::fig1_join(),
            generators::q95_shape(),
            generators::chain(6, 1 << 30, 0.5),
            generators::fan_in(&[1 << 30, 2 << 30, 3 << 30], 0.1),
            generators::diamond(1 << 30),
        ];
        for dag in shapes {
            let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
            let rm = ResourceManager::from_free_slots(vec![48, 24, 12, 6]);
            for obj in [Objective::Jct, Objective::Cost] {
                let s = joint_optimize(&dag, &model, &rm, obj, &JointOptions::default());
                s.validate(&dag).unwrap_or_else(|e| panic!("{}: {e}", dag.name()));
            }
        }
    }

    #[test]
    fn deterministic() {
        let (dag, model, rm) = setup(&[96, 50, 30, 20, 12, 8, 6, 4]);
        let a = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        let b = joint_optimize(&dag, &model, &rm, Objective::Jct, &JointOptions::default());
        assert_eq!(a.dop, b.dop);
        assert_eq!(a.group_of, b.group_of);
    }

    /// The incremental loop matches the reference oracle on the named
    /// generator shapes, every order policy and fit strategy (deeper
    /// random-DAG sweeps live in `tests/joint_equivalence.rs`).
    #[test]
    fn matches_reference_on_generator_shapes() {
        use crate::placement::FitStrategy;
        let shapes: Vec<JobDag> = vec![
            generators::fig1_join(),
            generators::q95_shape(),
            generators::chain(6, 1 << 30, 0.5),
            generators::fan_in(&[1 << 30, 2 << 30, 3 << 30], 0.1),
            generators::diamond(1 << 30),
        ];
        for dag in &shapes {
            let model = JobTimeModel::from_rates(dag, &RateConfig::default());
            let rm = ResourceManager::from_free_slots(vec![48, 24, 12, 6]);
            for obj in [Objective::Jct, Objective::Cost] {
                for policy in [
                    GroupOrderPolicy::Greedy,
                    GroupOrderPolicy::GlobalDescending,
                    GroupOrderPolicy::Random(7),
                ] {
                    for fit in [FitStrategy::BestFit, FitStrategy::FirstFit, FitStrategy::WorstFit]
                    {
                        let opts = JointOptions {
                            order_policy: policy,
                            fit_strategy: fit,
                            ..JointOptions::default()
                        };
                        let fast = joint_optimize(dag, &model, &rm, obj, &opts);
                        let slow = joint_optimize_reference(dag, &model, &rm, obj, &opts);
                        assert_eq!(fast.dop, slow.dop, "{} {obj} {policy:?} {fit:?}", dag.name());
                        assert_eq!(fast.group_of, slow.group_of, "{}", dag.name());
                        assert_eq!(fast.groups, slow.groups, "{}", dag.name());
                        assert_eq!(fast.colocated, slow.colocated, "{}", dag.name());
                        assert_eq!(fast.placement, slow.placement, "{}", dag.name());
                    }
                }
            }
        }
    }
}
