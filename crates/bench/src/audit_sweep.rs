//! The `audit` experiment: certify every scheduler's output across a
//! seeded sweep of random DAGs.
//!
//! For each seed, objective and scheduler (joint optimizer, reference
//! optimizer, NIMBLE baseline) the sweep builds a random layered DAG,
//! fits a rate-based model, schedules, and runs the full
//! [`ditto_audit::audit`] certificate chain. A healthy tree reports zero
//! errors on every row; any nonzero count names a scheduler/seed pair
//! whose output violates a paper invariant and is reproducible locally
//! from the seed alone.

use ditto_cluster::ResourceManager;
use ditto_core::reference::joint_optimize_reference;
use ditto_core::{joint_optimize_traced, JointOptions, Objective, Scheduler};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use serde::Serialize;

/// Seeds in the CI sweep (acceptance gate: 32 seeds, all clean).
pub const AUDIT_SWEEP_SEEDS: u64 = 32;

/// One `(seed, scheduler, objective)` certification.
#[derive(Debug, Clone, Serialize)]
pub struct AuditSweepRow {
    /// Seed of the random DAG.
    pub seed: u64,
    /// Stages in the DAG.
    pub stages: usize,
    /// Which scheduler produced the schedule.
    pub scheduler: String,
    /// `jct` or `cost`.
    pub objective: String,
    /// Certificate checks executed.
    pub checks: usize,
    /// Error-severity findings (must be 0 everywhere).
    pub errors: usize,
    /// Warning-severity findings (informational).
    pub warnings: usize,
}

fn sweep_cluster() -> ResourceManager {
    ResourceManager::from_free_slots(vec![24, 24, 16, 16, 8, 8, 4, 4])
}

/// Run the sweep: `seeds` random DAGs × both objectives × three
/// schedulers, each audited with the full certificate chain.
pub fn audit_sweep(seeds: u64) -> Vec<AuditSweepRow> {
    audit_sweep_traced(seeds, &ditto_obs::Recorder::disabled())
}

/// [`audit_sweep`] with telemetry: the joint optimizer's decision spans
/// (`sched.*`) land on `obs` for every certified schedule, so
/// `figures -- audit --trace-out` produces a scheduler-side trace of the
/// whole certification sweep. A disabled recorder makes this identical
/// to [`audit_sweep`].
pub fn audit_sweep_traced(seeds: u64, obs: &ditto_obs::Recorder) -> Vec<AuditSweepRow> {
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let cfg = RandomDagConfig::default();
        let dag = random_dag(seed, &cfg);
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = sweep_cluster();
        for objective in [Objective::Jct, Objective::Cost] {
            let obj_name = match objective {
                Objective::Jct => "jct",
                Objective::Cost => "cost",
            };
            let joint =
                joint_optimize_traced(&dag, &model, &rm, objective, &JointOptions::default(), obs);
            let reference =
                joint_optimize_reference(&dag, &model, &rm, objective, &JointOptions::default());
            let nimble = ditto_core::baselines::NimbleScheduler { seed }.schedule(
                &ditto_core::SchedulingContext {
                    dag: &dag,
                    model: &model,
                    resources: &rm,
                    objective,
                },
            );
            for schedule in [&joint, &reference, &nimble] {
                let report = ditto_audit::audit(&dag, &model, &rm, schedule);
                rows.push(AuditSweepRow {
                    seed,
                    stages: dag.num_stages(),
                    scheduler: schedule.scheduler.clone(),
                    objective: obj_name.to_string(),
                    checks: report.checks_run,
                    errors: report.error_count(),
                    warnings: report.warning_count(),
                });
            }
        }
    }
    rows
}

/// `true` iff no row carries an error-severity finding.
pub fn sweep_is_clean(rows: &[AuditSweepRow]) -> bool {
    rows.iter().all(|r| r.errors == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_sweep_is_clean() {
        let rows = audit_sweep(4);
        // 4 seeds × 2 objectives × 3 schedulers.
        assert_eq!(rows.len(), 24);
        for r in &rows {
            assert_eq!(r.errors, 0, "seed {} {} {}: errors", r.seed, r.scheduler, r.objective);
        }
        assert!(sweep_is_clean(&rows));
    }
}
