//! Runtime monitor: per-task statistics collection (paper §3).
//!
//! Each server in the paper hosts a runtime monitor tracking statistics and
//! results of every function execution; those records feed the recurring-job
//! profiles that the execution-time model is fitted from. Here a single
//! [`RuntimeMonitor`] aggregates records for the whole (simulated) cluster;
//! it is `Sync` so the multi-threaded local runtime in `ditto-exec` can
//! report from worker threads. It can also be fed from the unified
//! telemetry stream: [`RuntimeMonitor::ingest`] replays the `task` spans
//! of a recorded trace into records, making the monitor a consumer of
//! the same event stream the exporters read.

use crate::server::ServerId;
use ditto_obs::{StepTimings, TraceData};
use parking_lot::Mutex;

/// One completed task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Stage index within the job (matches `StageId` downstream).
    pub stage: u32,
    /// Task index within the stage, `0..dop`.
    pub task: u32,
    /// Server the task ran on.
    pub server: ServerId,
    /// Launch time, seconds since job start.
    pub start: f64,
    /// Completion time, seconds since job start.
    pub end: f64,
    /// Per-step durations (setup/read/compute/write), seconds.
    pub steps: StepTimings,
    /// Bytes read (external + intermediate).
    pub bytes_read: u64,
    /// Bytes written (external + intermediate).
    pub bytes_written: u64,
}

impl TaskRecord {
    /// Wall-clock duration of the task.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-stage aggregate over the collected records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStats {
    /// Number of tasks recorded.
    pub tasks: u32,
    /// Mean task duration, seconds.
    pub mean_duration: f64,
    /// Max task duration, seconds (the straggler).
    pub max_duration: f64,
    /// Earliest task start.
    pub first_start: f64,
    /// Latest task end — the stage completion time.
    pub last_end: f64,
    /// Mean per-step durations.
    pub mean_steps: StepTimings,
}

/// Thread-safe collector of [`TaskRecord`]s.
#[derive(Debug, Default)]
pub struct RuntimeMonitor {
    records: Mutex<Vec<TaskRecord>>,
}

impl RuntimeMonitor {
    /// New empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed task.
    pub fn record(&self, r: TaskRecord) {
        self.records.lock().push(r);
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records (sorted by stage then task for determinism).
    pub fn records(&self) -> Vec<TaskRecord> {
        let mut v = self.records.lock().clone();
        v.sort_by_key(|a| (a.stage, a.task));
        v
    }

    /// Aggregate statistics for one stage, or `None` if unrecorded.
    pub fn stage_stats(&self, stage: u32) -> Option<StageStats> {
        let recs = self.records.lock();
        let rs: Vec<&TaskRecord> = recs.iter().filter(|r| r.stage == stage).collect();
        if rs.is_empty() {
            return None;
        }
        let n = rs.len() as f64;
        let mut sum = StepTimings::zero();
        for r in &rs {
            sum.accumulate(&r.steps);
        }
        Some(StageStats {
            tasks: rs.len() as u32,
            mean_duration: rs.iter().map(|r| r.duration()).sum::<f64>() / n,
            max_duration: rs.iter().map(|r| r.duration()).fold(f64::MIN, f64::max),
            first_start: rs.iter().map(|r| r.start).fold(f64::MAX, f64::min),
            last_end: rs.iter().map(|r| r.end).fold(f64::MIN, f64::max),
            mean_steps: sum.scaled(1.0 / n),
        })
    }

    /// Replay the `task` spans of a recorded telemetry stream into
    /// monitor records — the monitor as a consumer of the unified event
    /// stream rather than a bespoke reporting channel. Returns the number
    /// of records ingested. Spans missing the task attributes are
    /// skipped.
    pub fn ingest(&self, data: &TraceData) -> usize {
        let mut n = 0;
        for span in data.spans.iter().filter(|s| s.name == "task") {
            let (Some(stage), Some(task)) = (span.attr_u64("stage"), span.attr_u64("task")) else {
                continue;
            };
            if !span.end.is_finite() {
                continue;
            }
            let read_start = span.attr_f64("read_start").unwrap_or(span.start);
            let compute_start = span.attr_f64("compute_start").unwrap_or(read_start);
            let write_start = span.attr_f64("write_start").unwrap_or(span.end);
            self.record(TaskRecord {
                stage: stage as u32,
                task: task as u32,
                server: ServerId(span.track.group.saturating_sub(ditto_obs::Track::SERVER_BASE)),
                start: span.start,
                end: span.end,
                steps: StepTimings::new(
                    read_start - span.start,
                    compute_start - read_start,
                    write_start - compute_start,
                    span.end - write_start,
                ),
                bytes_read: span.attr_f64("bytes_read").unwrap_or(0.0) as u64,
                bytes_written: span.attr_f64("bytes_written").unwrap_or(0.0) as u64,
            });
            n += 1;
        }
        n
    }

    /// Clear all records (between profiled runs).
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stage: u32, task: u32, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            stage,
            task,
            server: ServerId(0),
            start,
            end,
            steps: StepTimings::new(0.0, 1.0, 2.0, 0.5),
            bytes_read: 100,
            bytes_written: 50,
        }
    }

    #[test]
    fn collects_and_aggregates() {
        let m = RuntimeMonitor::new();
        m.record(rec(0, 0, 0.0, 4.0));
        m.record(rec(0, 1, 0.5, 6.0));
        m.record(rec(1, 0, 6.0, 8.0));
        assert_eq!(m.len(), 3);
        let s = m.stage_stats(0).unwrap();
        assert_eq!(s.tasks, 2);
        assert!((s.mean_duration - 4.75).abs() < 1e-12);
        assert!((s.max_duration - 5.5).abs() < 1e-12);
        assert_eq!(s.first_start, 0.0);
        assert_eq!(s.last_end, 6.0);
        assert_eq!(s.mean_steps, StepTimings::new(0.0, 1.0, 2.0, 0.5));
        assert!(m.stage_stats(9).is_none());
    }

    #[test]
    fn ingests_task_spans_from_trace() {
        use ditto_obs::{Recorder, Track};
        let obs = Recorder::new();
        obs.span(
            "task",
            Track::server(3, 42),
            2.0,
            5.5,
            vec![
                ("stage", 1u64.into()),
                ("task", 2u64.into()),
                ("read_start", 2.5.into()),
                ("compute_start", 3.0.into()),
                ("write_start", 5.0.into()),
                ("bytes_read", 1024.0.into()),
                ("bytes_written", 512.0.into()),
            ],
        );
        // A span without task attributes is skipped, not an error.
        obs.span("sched.round", Track::scheduler(0), 0.0, 0.1, vec![]);

        let m = RuntimeMonitor::new();
        assert_eq!(m.ingest(&obs.finish()), 1);
        let r = &m.records()[0];
        assert_eq!((r.stage, r.task), (1, 2));
        assert_eq!(r.server, ServerId(3));
        assert_eq!(r.steps, StepTimings::new(0.5, 0.5, 2.0, 0.5));
        assert_eq!((r.bytes_read, r.bytes_written), (1024, 512));
        let s = m.stage_stats(1).unwrap();
        assert!((s.mean_duration - 3.5).abs() < 1e-12);
    }

    #[test]
    fn records_sorted() {
        let m = RuntimeMonitor::new();
        m.record(rec(1, 0, 0.0, 1.0));
        m.record(rec(0, 1, 0.0, 1.0));
        m.record(rec(0, 0, 0.0, 1.0));
        let v = m.records();
        assert_eq!(
            v.iter().map(|r| (r.stage, r.task)).collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0)]
        );
    }

    #[test]
    fn clear_resets() {
        let m = RuntimeMonitor::new();
        m.record(rec(0, 0, 0.0, 1.0));
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(RuntimeMonitor::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        m.record(rec(t, i, 0.0, 1.0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 100);
    }
}
