//! Differential trace analysis: explain the JCT delta between two runs.
//!
//! [`diff_traces`] aligns two finished telemetry streams of the *same
//! DAG* (different seed, config, scheduler or engine) and attributes the
//! end-to-end JCT delta to `(stage, step)` buckets with critical-path
//! awareness: both traces are walked by [`critical_path`], so every
//! second of each run's JCT is already charged to a `(stage, step)` pair
//! or a wait, and the per-bucket differences therefore **sum to the JCT
//! delta exactly** (up to floating-point error) — there is no residual
//! "unexplained" time by construction.
//!
//! Each stage's contribution is additionally classified:
//!
//! * [`DeltaKind::Shared`] — the stage sits on both critical paths; its
//!   delta is a slowdown (or speedup) of work both runs agree is
//!   path-critical.
//! * [`DeltaKind::PathShift`] — the stage entered or left the critical
//!   path between the runs (a replan moved it, a drifted sibling now
//!   dominates, …); its whole contribution in the run where it appears
//!   is the delta.
//! * [`DeltaKind::Structural`] — the stage's delta coincides with
//!   structural events that differ between the runs: replans/splices
//!   (`sched.replan`), failover replans (`sched.failover`), fault
//!   retries (`fault.*`) or lineage re-executions
//!   (`recovery.lineage_reexec`) touching that stage.
//!
//! Where the traces carry it, each bucket also names the stage's read
//! medium (the `read_medium` attribute of `stage` spans), so a delta can
//! be read as "(stage 4, read, s3)".

use crate::critical_path::{critical_path, CriticalPathReport};
use crate::span::{AttrValue, EventRecord, TraceData};
use crate::timings::StepTimings;
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;

const EPS: f64 = 1e-9;

/// How a stage's JCT-delta contribution is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DeltaKind {
    /// On both critical paths: a slowdown/speedup of shared-path work.
    Shared,
    /// On exactly one critical path: the path moved onto or off it.
    PathShift,
    /// Coincides with differing structural events (replan, splice,
    /// fault retry, lineage re-execution) on that stage.
    Structural,
}

impl DeltaKind {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DeltaKind::Shared => "shared",
            DeltaKind::PathShift => "path-shift",
            DeltaKind::Structural => "structural",
        }
    }
}

/// One stage's aligned critical-path attribution in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Stage index.
    pub stage: u32,
    /// Seconds charged per step in the baseline run (zero if the stage
    /// is off that run's critical path).
    pub steps_a: StepTimings,
    /// Seconds charged per step in the candidate run.
    pub steps_b: StepTimings,
    /// Critical-path wait charged before this stage in the baseline.
    pub wait_a: f64,
    /// Critical-path wait charged before this stage in the candidate.
    pub wait_b: f64,
    /// Classification of this stage's contribution.
    pub kind: DeltaKind,
    /// Structural events (replans, faults, lineage re-execs) touching
    /// this stage in the baseline run.
    pub structural_a: u32,
    /// Structural events touching this stage in the candidate run.
    pub structural_b: u32,
    /// Read medium of the stage (`read_medium` attr of its `stage`
    /// span), when either trace recorded one.
    pub medium: Option<String>,
}

impl StageDelta {
    /// Per-step delta (candidate minus baseline), seconds.
    pub fn step_delta(&self) -> StepTimings {
        StepTimings::new(
            self.steps_b.setup - self.steps_a.setup,
            self.steps_b.read - self.steps_a.read,
            self.steps_b.compute - self.steps_a.compute,
            self.steps_b.write - self.steps_a.write,
        )
    }

    /// Wait delta (candidate minus baseline), seconds.
    pub fn wait_delta(&self) -> f64 {
        self.wait_b - self.wait_a
    }

    /// Total contribution of this stage to the JCT delta, seconds.
    pub fn delta(&self) -> f64 {
        self.step_delta().total() + self.wait_delta()
    }
}

/// Counts of structural events in one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StructuralSummary {
    /// Suffix replans recorded by the adaptive engine (`sched.replan`).
    pub replans: u32,
    /// Replans that were applied (spliced into the running schedule).
    pub applied_replans: u32,
    /// Whole-schedule failover replans (`sched.failover`).
    pub failovers: u32,
    /// Fault events (`fault.*`: crashes, stragglers, object loss, …).
    pub faults: u32,
    /// Lineage re-executions (`recovery.lineage_reexec`).
    pub lineage_reexecs: u32,
}

/// Result of [`diff_traces`]: the aligned, classified attribution of the
/// JCT delta between a baseline (A) and a candidate (B) run.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Baseline JCT, seconds.
    pub jct_a: f64,
    /// Candidate JCT, seconds.
    pub jct_b: f64,
    /// Leading wait before the first critical task, baseline.
    pub lead_wait_a: f64,
    /// Leading wait before the first critical task, candidate.
    pub lead_wait_b: f64,
    /// Per-stage aligned attribution, ordered by stage index.
    pub stages: Vec<StageDelta>,
    /// Structural-event counts in the baseline trace.
    pub structural_a: StructuralSummary,
    /// Structural-event counts in the candidate trace.
    pub structural_b: StructuralSummary,
}

impl TraceDiff {
    /// End-to-end JCT delta (candidate minus baseline), seconds.
    pub fn delta(&self) -> f64 {
        self.jct_b - self.jct_a
    }

    /// Sum of all attributed deltas; equals [`delta`](Self::delta) up to
    /// floating-point error, because each run's critical-path report
    /// sums to its JCT by construction.
    pub fn attributed(&self) -> f64 {
        (self.lead_wait_b - self.lead_wait_a)
            + self.stages.iter().map(StageDelta::delta).sum::<f64>()
    }

    /// Net delta explained by `(stage, step)` buckets alone — excluding
    /// waits and the lead gap. The acceptance gate for drift-style
    /// slowdowns: under compute drift this should carry ≥ 90% of the
    /// measured delta.
    pub fn step_attributed(&self) -> f64 {
        self.stages.iter().map(|s| s.step_delta().total()).sum()
    }

    /// `true` when no bucket carries more than `eps` seconds of delta.
    pub fn is_zero(&self, eps: f64) -> bool {
        self.delta().abs() <= eps
            && (self.lead_wait_b - self.lead_wait_a).abs() <= eps
            && self.stages.iter().all(|s| {
                let d = s.step_delta();
                d.setup.abs() <= eps
                    && d.read.abs() <= eps
                    && d.compute.abs() <= eps
                    && d.write.abs() <= eps
                    && s.wait_delta().abs() <= eps
            })
    }

    /// Human-readable diff table: one row per stage with per-step
    /// deltas, the wait delta, the classification and the medium.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace diff: jct {:.4}s -> {:.4}s (delta {:+.4}s)\n",
            self.jct_a,
            self.jct_b,
            self.delta()
        ));
        out.push_str(&format!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}  {:<11} {}\n",
            "stage", "setup", "read", "compute", "write", "wait", "total", "% delta", "kind", "medium"
        ));
        let denom = self.delta().abs().max(EPS);
        let lead = self.lead_wait_b - self.lead_wait_a;
        if lead.abs() > EPS {
            out.push_str(&format!(
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>+10.4} {:>+10.4} {:>6.1}%  {:<11} -\n",
                "-", "-", "-", "-", "-", lead, lead,
                100.0 * lead / denom,
                "lead-wait"
            ));
        }
        for s in &self.stages {
            let d = s.step_delta();
            out.push_str(&format!(
                "{:>6} {:>+10.4} {:>+10.4} {:>+10.4} {:>+10.4} {:>+10.4} {:>+10.4} {:>6.1}%  {:<11} {}\n",
                s.stage,
                d.setup,
                d.read,
                d.compute,
                d.write,
                s.wait_delta(),
                s.delta(),
                100.0 * s.delta() / denom,
                s.kind.label(),
                s.medium.as_deref().unwrap_or("-"),
            ));
        }
        out.push_str(&format!(
            "attributed {:+.4}s of {:+.4}s delta ({} replans / {} faults / {} lineage in B)\n",
            self.attributed(),
            self.delta(),
            self.structural_b.replans,
            self.structural_b.faults,
            self.structural_b.lineage_reexecs,
        ));
        out
    }

    /// The diff as a compact JSON object (deterministic field order).
    pub fn to_json(&self) -> String {
        let num = |v: f64| Value::Number(Number::Float(v));
        let mut root = Map::new();
        root.insert("jct_a".into(), num(self.jct_a));
        root.insert("jct_b".into(), num(self.jct_b));
        root.insert("delta".into(), num(self.delta()));
        root.insert("lead_wait_a".into(), num(self.lead_wait_a));
        root.insert("lead_wait_b".into(), num(self.lead_wait_b));
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|s| {
                let d = s.step_delta();
                let mut m = Map::new();
                m.insert("stage".into(), Value::Number(Number::PosInt(s.stage as u64)));
                m.insert("kind".into(), Value::String(s.kind.label().to_string()));
                m.insert(
                    "medium".into(),
                    s.medium
                        .as_ref()
                        .map_or(Value::Null, |m| Value::String(m.clone())),
                );
                m.insert("d_setup".into(), num(d.setup));
                m.insert("d_read".into(), num(d.read));
                m.insert("d_compute".into(), num(d.compute));
                m.insert("d_write".into(), num(d.write));
                m.insert("d_wait".into(), num(s.wait_delta()));
                m.insert("d_total".into(), num(s.delta()));
                m.insert(
                    "structural_a".into(),
                    Value::Number(Number::PosInt(s.structural_a as u64)),
                );
                m.insert(
                    "structural_b".into(),
                    Value::Number(Number::PosInt(s.structural_b as u64)),
                );
                Value::Object(m)
            })
            .collect();
        root.insert("stages".into(), Value::Array(stages));
        let summary = |s: &StructuralSummary| {
            let mut m = Map::new();
            m.insert("replans".into(), Value::Number(Number::PosInt(s.replans as u64)));
            m.insert(
                "applied_replans".into(),
                Value::Number(Number::PosInt(s.applied_replans as u64)),
            );
            m.insert("failovers".into(), Value::Number(Number::PosInt(s.failovers as u64)));
            m.insert("faults".into(), Value::Number(Number::PosInt(s.faults as u64)));
            m.insert(
                "lineage_reexecs".into(),
                Value::Number(Number::PosInt(s.lineage_reexecs as u64)),
            );
            Value::Object(m)
        };
        root.insert("structural_a".into(), summary(&self.structural_a));
        root.insert("structural_b".into(), summary(&self.structural_b));
        Value::Object(root).to_string()
    }
}

/// Per-stage structural-event counts plus the trace-wide summary.
fn structural_events(data: &TraceData) -> (BTreeMap<u32, u32>, StructuralSummary) {
    let mut per_stage: BTreeMap<u32, u32> = BTreeMap::new();
    let mut summary = StructuralSummary::default();
    let stage_of = |e: &EventRecord| -> Option<u32> {
        for key in ["at_stage", "stage", "reader_stage"] {
            if let Some(AttrValue::U64(v)) = e.attr(key) {
                return Some(*v as u32);
            }
        }
        None
    };
    for e in &data.events {
        let structural = if e.name == "sched.replan" {
            summary.replans += 1;
            if matches!(e.attr("applied"), Some(AttrValue::U64(1))) {
                summary.applied_replans += 1;
            }
            true
        } else if e.name == "sched.failover" {
            summary.failovers += 1;
            true
        } else if e.name == "recovery.lineage_reexec" {
            summary.lineage_reexecs += 1;
            true
        } else if e.name.starts_with("fault.") {
            summary.faults += 1;
            true
        } else {
            false
        };
        if structural {
            if let Some(stage) = stage_of(e) {
                *per_stage.entry(stage).or_insert(0) += 1;
            }
        }
    }
    (per_stage, summary)
}

/// Read medium per stage from `stage` span `read_medium` attributes.
fn stage_media(data: &TraceData) -> BTreeMap<u32, String> {
    let mut media = BTreeMap::new();
    for s in &data.spans {
        if s.name != "stage" {
            continue;
        }
        let (Some(stage), Some(medium)) = (s.attr_u64("stage"), s.attr("read_medium")) else {
            continue;
        };
        let label = match medium {
            AttrValue::Str(v) => (*v).to_string(),
            AttrValue::Text(v) => v.clone(),
            _ => continue,
        };
        media.entry(stage as u32).or_insert(label);
    }
    media
}

fn report_by_stage(report: &CriticalPathReport) -> BTreeMap<u32, (StepTimings, f64)> {
    report
        .stages
        .iter()
        .map(|s| (s.stage, (s.steps, s.wait)))
        .collect()
}

/// Diff two finished traces of the same DAG: align their critical-path
/// attributions and classify every stage's contribution to the JCT
/// delta. `a` is the baseline, `b` the candidate; deltas are `b - a`.
pub fn diff_traces(a: &TraceData, b: &TraceData) -> TraceDiff {
    let cp_a = critical_path(a);
    let cp_b = critical_path(b);
    let by_a = report_by_stage(&cp_a);
    let by_b = report_by_stage(&cp_b);
    let (ev_a, structural_a) = structural_events(a);
    let (ev_b, structural_b) = structural_events(b);
    let mut media = stage_media(a);
    for (k, v) in stage_media(b) {
        media.entry(k).or_insert(v);
    }

    let mut stage_ids: Vec<u32> = by_a.keys().chain(by_b.keys()).copied().collect();
    stage_ids.sort_unstable();
    stage_ids.dedup();

    let stages = stage_ids
        .into_iter()
        .map(|stage| {
            let (steps_a, wait_a) = by_a
                .get(&stage)
                .copied()
                .unwrap_or((StepTimings::zero(), 0.0));
            let (steps_b, wait_b) = by_b
                .get(&stage)
                .copied()
                .unwrap_or((StepTimings::zero(), 0.0));
            let structural_a = ev_a.get(&stage).copied().unwrap_or(0);
            let structural_b = ev_b.get(&stage).copied().unwrap_or(0);
            let on_a = by_a.contains_key(&stage);
            let on_b = by_b.contains_key(&stage);
            let kind = if structural_a != structural_b {
                DeltaKind::Structural
            } else if on_a != on_b {
                DeltaKind::PathShift
            } else {
                DeltaKind::Shared
            };
            StageDelta {
                stage,
                steps_a,
                steps_b,
                wait_a,
                wait_b,
                kind,
                structural_a,
                structural_b,
                medium: media.get(&stage).cloned(),
            }
        })
        .collect();

    TraceDiff {
        jct_a: cp_a.jct,
        jct_b: cp_b.jct,
        lead_wait_a: cp_a.lead_wait,
        lead_wait_b: cp_b.lead_wait,
        stages,
        structural_a,
        structural_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Track};

    fn task(rec: &Recorder, stage: u32, start: f64, r: f64, c: f64, w: f64, end: f64) {
        rec.span(
            "task",
            Track::server(0, stage),
            start,
            end,
            vec![
                ("stage", stage.into()),
                ("read_start", r.into()),
                ("compute_start", c.into()),
                ("write_start", w.into()),
            ],
        );
    }

    fn chain(compute_scale: f64) -> crate::span::TraceData {
        let rec = Recorder::new();
        // stage 0: read 1s, compute 2s·scale, write 1s
        let c0 = 2.0 * compute_scale;
        task(&rec, 0, 0.0, 0.0, 1.0, 1.0 + c0, 2.0 + c0);
        // stage 1 follows immediately: compute 3s·scale
        let s1 = 2.0 + c0;
        let c1 = 3.0 * compute_scale;
        task(&rec, 1, s1, s1, s1 + 0.5, s1 + 0.5 + c1, s1 + 1.0 + c1);
        rec.finish()
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let a = chain(1.0);
        let b = chain(1.0);
        let d = diff_traces(&a, &b);
        assert!(d.is_zero(1e-9), "{}", d.render());
        assert_eq!(d.delta(), 0.0);
        assert!(d.render().contains("delta"));
    }

    #[test]
    fn compute_drift_lands_on_compute_buckets() {
        let a = chain(1.0);
        let b = chain(2.0);
        let d = diff_traces(&a, &b);
        // 2x compute on 5s of compute adds 5s.
        assert!((d.delta() - 5.0).abs() < 1e-9, "delta {}", d.delta());
        assert!((d.attributed() - d.delta()).abs() < 1e-9);
        // All of it is compute-step delta on the shared path.
        assert!((d.step_attributed() - 5.0).abs() < 1e-9);
        for s in &d.stages {
            assert_eq!(s.kind, DeltaKind::Shared);
            let sd = s.step_delta();
            assert!(sd.compute > 0.0);
            assert!(sd.read.abs() < 1e-9 && sd.write.abs() < 1e-9);
        }
    }

    #[test]
    fn path_shift_is_detected() {
        // A: stage 1 (0..6) dominates a short stage 2 (0..2).
        let rec_a = Recorder::new();
        task(&rec_a, 1, 0.0, 0.0, 0.0, 6.0, 6.0);
        task(&rec_a, 2, 0.0, 0.0, 0.0, 2.0, 2.0);
        // B: stage 2 slowed to 8s now dominates.
        let rec_b = Recorder::new();
        task(&rec_b, 1, 0.0, 0.0, 0.0, 6.0, 6.0);
        task(&rec_b, 2, 0.0, 0.0, 0.0, 8.0, 8.0);
        let d = diff_traces(&rec_a.finish(), &rec_b.finish());
        assert!((d.delta() - 2.0).abs() < 1e-9);
        assert!((d.attributed() - d.delta()).abs() < 1e-9);
        let s1 = d.stages.iter().find(|s| s.stage == 1).unwrap();
        let s2 = d.stages.iter().find(|s| s.stage == 2).unwrap();
        // Stage 1 left the path (covered 0..6 in A, only a prefix in B);
        // stage 2 entered it.
        assert_eq!(s2.kind, DeltaKind::PathShift);
        assert!(s2.delta() > 0.0);
        assert!(s1.delta() < 6.0);
    }

    #[test]
    fn structural_events_tag_their_stage() {
        let a = chain(1.0);
        let rec = Recorder::new();
        let c0 = 2.0;
        task(&rec, 0, 0.0, 0.0, 1.0, 1.0 + c0, 2.0 + c0);
        // Stage 1 pushed 1.5s later by a lineage recovery.
        let s1 = 3.5 + c0;
        task(&rec, 1, s1, s1, s1 + 0.5, s1 + 3.5, s1 + 4.0);
        rec.event(
            "recovery.lineage_reexec",
            Track::storage(),
            2.0,
            vec![("stage", 0u32.into()), ("task", 0u32.into()), ("reexec_s", 1.5f64.into())],
        );
        rec.event(
            "sched.replan",
            Track::scheduler(0),
            2.5,
            vec![("at_stage", 1u32.into()), ("applied", 1u64.into())],
        );
        let d = diff_traces(&a, &rec.finish());
        assert_eq!(d.structural_b.lineage_reexecs, 1);
        assert_eq!(d.structural_b.replans, 1);
        assert_eq!(d.structural_b.applied_replans, 1);
        for s in &d.stages {
            assert_eq!(s.kind, DeltaKind::Structural, "stage {}", s.stage);
        }
        assert!((d.attributed() - d.delta()).abs() < 1e-9);
    }

    #[test]
    fn medium_annotation_is_picked_up() {
        let rec = Recorder::new();
        task(&rec, 0, 0.0, 0.0, 1.0, 3.0, 4.0);
        rec.span(
            "stage",
            Track::job(0),
            0.0,
            4.0,
            vec![("stage", 0u32.into()), ("read_medium", "s3".into())],
        );
        let data = rec.finish();
        let d = diff_traces(&data, &data);
        assert_eq!(d.stages[0].medium.as_deref(), Some("s3"));
        assert!(d.to_json().contains("\"medium\":\"s3\""));
        assert!(d.render().contains("s3"));
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let d = diff_traces(&chain(1.0), &chain(1.5));
        let j1 = d.to_json();
        let j2 = d.to_json();
        assert_eq!(j1, j2);
        let v: Value = serde_json::from_str(&j1).unwrap();
        assert!(v["stages"].as_array().unwrap().len() == 2);
        assert!((v["delta"].as_f64().unwrap() - d.delta()).abs() < 1e-12);
    }
}
