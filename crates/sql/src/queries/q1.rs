//! TPC-DS Q1 (simplified): customers whose total store returns in year
//! 2000 exceed 1.2× the average customer total for their (Tennessee)
//! store.
//!
//! The DAG is a *general* (non-tree) DAG: the `customer_total_return`
//! aggregate (`ctr`) feeds both the per-store average and the
//! above-average join — the double-consumption structure that makes Q1's
//! scheduling interesting.
//!
//! ```text
//! sr_scan ──▶ ctr ──┬────────────────▶ join_avg ──▶ big_ret ──▶ join_store ──▶ top
//!                   └▶ avg ──(bcast)──▲                store_scan ──(bcast)──▲
//! ```

use crate::datagen::Database;
use crate::expr::{CmpOp, Pred};
use crate::ops::group_by::{AggFunc, AggSpec};
use crate::plan::{JoinKind, QueryPlan, StageOp, StageSpec};
use crate::table::Table;
use ditto_dag::{DagBuilder, EdgeKind, StageKind};
use std::collections::HashMap;

/// Year-2000 date surrogate keys in the generated `date_dim` (day index i
/// has year `1998 + i/365`, sk `i+1`).
const DATE_LO: i64 = 731;
const DATE_HI: i64 = 1095;

/// Build the Q1 plan.
pub fn plan() -> QueryPlan {
    let dag = DagBuilder::new("q1")
        .stage("sr_scan", StageKind::Map, 0, 0)
        .stage("ctr", StageKind::GroupBy, 0, 0)
        .stage("avg", StageKind::GroupBy, 0, 0)
        .stage("join_avg", StageKind::Join, 0, 0)
        .stage("big_ret", StageKind::Map, 0, 0)
        .stage("store_scan", StageKind::Map, 0, 0)
        .stage("join_store", StageKind::Join, 0, 0)
        .stage("top", StageKind::Reduce, 0, 0)
        .edge("sr_scan", "ctr", EdgeKind::Shuffle, 0)
        .edge("ctr", "avg", EdgeKind::Shuffle, 0)
        .edge("ctr", "join_avg", EdgeKind::Shuffle, 0)
        .edge("avg", "join_avg", EdgeKind::AllGather, 0)
        .edge("join_avg", "big_ret", EdgeKind::Gather, 0)
        .edge("big_ret", "join_store", EdgeKind::Gather, 0)
        .edge("store_scan", "join_store", EdgeKind::AllGather, 0)
        .edge("join_store", "top", EdgeKind::Gather, 0)
        .build()
        .expect("q1 DAG is well-formed");

    let stages = vec![
        // sr_scan: store returns in year 2000.
        StageSpec {
            op: StageOp::Scan {
                table: "store_returns".into(),
                projection: vec![
                    "sr_customer_sk".into(),
                    "sr_store_sk".into(),
                    "sr_return_amt".into(),
                ],
                predicate: Some(Pred::between_i64("sr_returned_date_sk", DATE_LO, DATE_HI)),
            },
            output_key: Some("sr_customer_sk".into()),
        },
        // ctr: per (customer, store) total return.
        StageSpec {
            op: StageOp::GroupBy {
                input: "sr_scan".into(),
                keys: vec!["sr_customer_sk".into(), "sr_store_sk".into()],
                aggs: vec![AggSpec::new(AggFunc::Sum, "sr_return_amt", "ctr_total")],
                having: None,
            },
            output_key: Some("sr_store_sk".into()),
        },
        // avg: per-store mean of customer totals.
        StageSpec {
            op: StageOp::GroupBy {
                input: "ctr".into(),
                keys: vec!["sr_store_sk".into()],
                aggs: vec![AggSpec::new(AggFunc::Avg, "ctr_total", "avg_ret")],
                having: None,
            },
            output_key: Some("sr_store_sk".into()),
        },
        // join_avg: attach the store average to each customer total.
        StageSpec {
            op: StageOp::Join {
                left: "ctr".into(),
                right: "avg".into(),
                left_key: "sr_store_sk".into(),
                right_key: "sr_store_sk".into(),
                kind: JoinKind::Inner,
            },
            output_key: Some("sr_store_sk".into()),
        },
        // big_ret: keep customers above 1.2x the store average.
        StageSpec {
            op: StageOp::Filter {
                input: "join_avg".into(),
                predicate: Pred::ColCmp {
                    left: "ctr_total".into(),
                    op: CmpOp::Gt,
                    right: "avg_ret".into(),
                    scale: 1.2,
                },
                projection: Some(vec!["sr_customer_sk".into(), "sr_store_sk".into()]),
            },
            output_key: Some("sr_store_sk".into()),
        },
        // store_scan: Tennessee stores.
        StageSpec {
            op: StageOp::Scan {
                table: "store".into(),
                projection: vec!["s_store_sk".into()],
                predicate: Some(Pred::eq_str("s_state", "TN")),
            },
            output_key: None,
        },
        // join_store: restrict to TN stores (semi join).
        StageSpec {
            op: StageOp::Join {
                left: "big_ret".into(),
                right: "store_scan".into(),
                left_key: "sr_store_sk".into(),
                right_key: "s_store_sk".into(),
                kind: JoinKind::LeftSemi,
            },
            output_key: Some("sr_customer_sk".into()),
        },
        // top: first 100 customers by id (the TPC-DS ORDER BY).
        StageSpec {
            op: StageOp::SortLimit {
                input: "join_store".into(),
                col: "sr_customer_sk".into(),
                desc: false,
                limit: 100,
            },
            output_key: None,
        },
    ];

    QueryPlan {
        name: "q1".into(),
        dag,
        stages,
    }
}

/// Independent oracle: plain loops and hash maps, no shared operator code.
pub fn reference(db: &Database) -> Vec<i64> {
    let sr = db.table("store_returns");
    let dates = sr.column_req("sr_returned_date_sk").as_i64();
    let custs = sr.column_req("sr_customer_sk").as_i64();
    let stores = sr.column_req("sr_store_sk").as_i64();
    let amts = sr.column_req("sr_return_amt").as_f64();

    // ctr: (cust, store) -> total.
    let mut ctr: HashMap<(i64, i64), f64> = HashMap::new();
    for i in 0..sr.num_rows() {
        if dates[i] >= DATE_LO && dates[i] <= DATE_HI {
            *ctr.entry((custs[i], stores[i])).or_insert(0.0) += amts[i];
        }
    }
    // per-store average.
    let mut sums: HashMap<i64, (f64, usize)> = HashMap::new();
    for (&(_, store), &total) in &ctr {
        let e = sums.entry(store).or_insert((0.0, 0));
        e.0 += total;
        e.1 += 1;
    }
    // TN stores.
    let st = db.table("store");
    let tn: Vec<i64> = st
        .column_req("s_store_sk")
        .as_i64()
        .iter()
        .zip(st.column_req("s_state").as_str())
        .filter(|&(_, state)| state == "TN")
        .map(|(&sk, _)| sk)
        .collect();

    let mut out: Vec<i64> = ctr
        .iter()
        .filter(|&(&(_, store), &total)| {
            let (s, n) = sums[&store];
            total > 1.2 * (s / n as f64) && tn.contains(&store)
        })
        .map(|(&(cust, _), _)| cust)
        .collect();
    out.sort_unstable();
    out.truncate(100);
    out
}

/// Extract the oracle-comparable result from the plan's output table.
pub fn result_customers(t: &Table) -> Vec<i64> {
    t.column_req("sr_customer_sk").as_i64().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;

    #[test]
    fn dag_is_general_not_tree() {
        let p = plan();
        assert_eq!(p.dag.num_stages(), 8);
        assert!(!p.dag.is_tree_like(), "ctr feeds two consumers");
        // ctr is the stage with out-degree 2.
        let ctr = p.dag.stages().iter().find(|s| s.name == "ctr").unwrap();
        assert_eq!(p.dag.out_degree(ctr.id), 2);
    }

    #[test]
    fn plan_matches_oracle() {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let expected = reference(&db);
        assert!(!expected.is_empty(), "premise: Q1 has matching customers");
        let out = plan().execute_reference(&db);
        let mut got = result_customers(&out);
        got.sort_unstable();
        let mut exp = expected.clone();
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn oracle_is_selective() {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let n = reference(&db).len();
        let total = db.table("customer").num_rows();
        assert!(n < total / 4, "Q1 should keep a small fraction: {n}/{total}");
    }
}
