//! The four evaluated TPC-DS queries, hand-lowered to stage DAGs.
//!
//! The paper selects Q1, Q16, Q94 and Q95 as "representative queries with
//! different performance characteristics" (§6). The lowerings here keep
//! each query's *structure* — the joins, aggregations, (anti-)semi-joins
//! and the resulting DAG shape — while simplifying the SQL details that do
//! not affect scheduling (e.g. Q1 filters dates by surrogate-key range
//! instead of joining `date_dim`, exactly because its interesting structure
//! is the double consumption of the `customer_total_return` aggregate).
//!
//! Each module provides:
//!
//! * `plan()` — the [`QueryPlan`] (DAG + operators);
//! * `reference(db)` — an *independent*, hand-rolled oracle (plain loops
//!   and hash maps, no shared operator code) used to validate both the
//!   plan interpreter and the distributed runtime;
//! * shape tests pinning the DAG to the intended structure (Q95 to the
//!   paper's Fig. 13).

pub mod q1;
pub mod q16;
pub mod q3;
pub mod q94;
pub mod q95;

use crate::plan::QueryPlan;

/// The implemented queries.
///
/// ```
/// use ditto_sql::queries::Query;
/// use ditto_sql::{Database, ScaleConfig};
///
/// let db = Database::generate(ScaleConfig::with_sf(0.1));
/// let plan = Query::Q95.prepared_plan(&db);       // measured volumes
/// assert_eq!(plan.dag.num_stages(), 9);           // the Fig. 13 DAG
/// let answer = plan.execute_reference(&db);       // single-threaded oracle
/// assert!(answer.num_rows() <= 1);                // one aggregate row
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Customer returns above 1.2× their store's average (store channel).
    Q1,
    /// Catalog orders shipped to GA from selected call centers, never
    /// returned: count-distinct + sums with an anti-join.
    Q16,
    /// Web analog of Q16 (web sites instead of call centers).
    Q94,
    /// Web orders shipped from multiple warehouses: the 9-stage DAG of
    /// Fig. 13 with two broadcast joins.
    Q95,
    /// Brand sales report (not in the paper's evaluation set; a
    /// broadcast-join → two-level-aggregation shape for wider coverage).
    Q3,
}

impl Query {
    /// The paper's four evaluated queries, in paper order.
    pub fn all() -> [Query; 4] {
        [Query::Q1, Query::Q16, Query::Q94, Query::Q95]
    }

    /// Every implemented query, including the extras beyond the paper.
    pub fn all_extended() -> [Query; 5] {
        [Query::Q1, Query::Q3, Query::Q16, Query::Q94, Query::Q95]
    }

    /// The query's name (`"q1"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            Query::Q1 => "q1",
            Query::Q3 => "q3",
            Query::Q16 => "q16",
            Query::Q94 => "q94",
            Query::Q95 => "q95",
        }
    }

    /// Build the query's plan (volumes unmeasured; see
    /// [`QueryPlan::measure_volumes`]).
    pub fn plan(&self) -> QueryPlan {
        match self {
            Query::Q1 => q1::plan(),
            Query::Q3 => q3::plan(),
            Query::Q16 => q16::plan(),
            Query::Q94 => q94::plan(),
            Query::Q95 => q95::plan(),
        }
    }

    /// Build the plan and stamp measured volumes from the database.
    pub fn prepared_plan(&self, db: &crate::datagen::Database) -> QueryPlan {
        let mut p = self.plan();
        p.measure_volumes(db);
        p
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{Database, ScaleConfig};

    #[test]
    fn all_plans_valid_and_named() {
        for q in Query::all_extended() {
            let p = q.plan();
            assert_eq!(p.name, q.name());
            p.dag.validate().unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_eq!(p.stages.len(), p.dag.num_stages(), "{q}");
            assert_eq!(p.dag.final_stages().len(), 1, "{q} must have one sink");
        }
    }

    #[test]
    fn prepared_plans_have_volumes() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        for q in Query::all_extended() {
            let p = q.prepared_plan(&db);
            assert!(
                p.dag.edges().iter().all(|e| e.bytes > 0),
                "{q}: every edge must carry measured volume"
            );
            let scans_have_input = p
                .dag
                .stages()
                .iter()
                .filter(|s| p.dag.in_degree(s.id) == 0)
                .all(|s| s.input_bytes > 0);
            assert!(scans_have_input, "{q}: initial stages scan base tables");
        }
    }

    #[test]
    fn queries_have_distinct_shapes() {
        let q95 = Query::Q95.plan();
        assert_eq!(q95.dag.num_stages(), 9);
        let q1 = Query::Q1.plan();
        assert!(q1.dag.num_stages() != q95.dag.num_stages());
    }
}
