//! End-to-end integration: data → plan → profile → fit → schedule →
//! simulate, across all four queries and all schedulers.

use ditto::cluster::{Cluster, ResourceManager, SlotDistribution};
use ditto::core::baselines::{
    EvenSplitScheduler, NimbleDopScheduler, NimbleGroupScheduler, NimbleScheduler,
};
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, simulate, ExecConfig, GroundTruth, JobMetrics};
use ditto::sql::queries::Query;
use ditto::sql::{Database, QueryPlan, ScaleConfig};
use ditto::storage::Medium;
use ditto::timemodel::JobTimeModel;

struct Pipeline {
    plan: QueryPlan,
    model: JobTimeModel,
    gt: GroundTruth,
}

fn pipeline(q: Query) -> Pipeline {
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let mut plan = q.prepared_plan(&db);
    plan.scale_volumes(40_000.0);
    let gt = GroundTruth::new(ExecConfig {
        external: Medium::S3,
        ..Default::default()
    });
    let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
    let (model, _) = profile.build_model(&plan.dag);
    Pipeline { plan, model, gt }
}

fn run(p: &Pipeline, s: &dyn Scheduler, rm: &ResourceManager, obj: Objective) -> JobMetrics {
    let schedule = s.schedule(&SchedulingContext {
        dag: &p.plan.dag,
        model: &p.model,
        resources: rm,
        objective: obj,
    });
    schedule
        .validate(&p.plan.dag)
        .unwrap_or_else(|e| panic!("{} produced invalid schedule: {e}", s.name()));
    assert!(schedule.total_slots() <= rm.total_free());
    simulate(&p.plan.dag, &schedule, &p.gt).1
}

#[test]
fn ditto_beats_nimble_on_jct_for_every_query() {
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));
    for q in Query::all() {
        let p = pipeline(q);
        let ditto = run(&p, &DittoScheduler::new(), &rm, Objective::Jct);
        let nimble = run(&p, &NimbleScheduler::default(), &rm, Objective::Jct);
        let speedup = nimble.jct / ditto.jct;
        assert!(
            speedup > 1.0 && speedup < 5.0,
            "{q}: implausible speedup {speedup:.2} (ditto {:.1}s, nimble {:.1}s)",
            ditto.jct,
            nimble.jct
        );
    }
}

#[test]
fn ditto_not_more_expensive_than_nimble_for_cost_objective() {
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));
    for q in Query::all() {
        let p = pipeline(q);
        let ditto = run(&p, &DittoScheduler::new(), &rm, Objective::Cost);
        let nimble = run(&p, &NimbleScheduler::default(), &rm, Objective::Cost);
        assert!(
            ditto.total_cost() <= nimble.total_cost() * 1.02,
            "{q}: ditto {:.1} vs nimble {:.1}",
            ditto.total_cost(),
            nimble.total_cost()
        );
    }
}

#[test]
fn ablation_components_land_between_nimble_and_ditto() {
    // Fig. 12's qualitative claim: each component alone already helps.
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));
    let p = pipeline(Query::Q95);
    let nimble = run(&p, &NimbleScheduler::default(), &rm, Objective::Jct).jct;
    let group = run(&p, &NimbleGroupScheduler, &rm, Objective::Jct).jct;
    let dop = run(&p, &NimbleDopScheduler, &rm, Objective::Jct).jct;
    let ditto = run(&p, &DittoScheduler::new(), &rm, Objective::Jct).jct;
    assert!(group < nimble, "grouping alone helps: {group} vs {nimble}");
    assert!(dop < nimble, "DoP ratios alone help: {dop} vs {nimble}");
    assert!(ditto <= group * 1.02 && ditto <= dop * 1.02, "the combination is best");
}

#[test]
fn jct_improves_with_more_available_slots() {
    let p = pipeline(Query::Q95);
    let mut last = f64::INFINITY;
    for usage in [0.25, 0.5, 0.75, 1.0] {
        let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::Uniform {
            usage,
        }));
        let m = run(&p, &DittoScheduler::new(), &rm, Objective::Jct);
        assert!(
            m.jct <= last * 1.05,
            "more slots should not hurt: usage {usage} gives {} after {last}",
            m.jct
        );
        last = m.jct;
    }
}

#[test]
fn every_scheduler_handles_every_distribution() {
    let dists = [
        SlotDistribution::Uniform { usage: 0.5 },
        SlotDistribution::Normal { sigma: 1.0 },
        SlotDistribution::Normal { sigma: 0.8 },
        SlotDistribution::Zipf { theta: 0.9 },
        SlotDistribution::Zipf { theta: 0.99 },
    ];
    let p = pipeline(Query::Q16);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(DittoScheduler::new()),
        Box::new(NimbleScheduler::default()),
        Box::new(NimbleGroupScheduler),
        Box::new(NimbleDopScheduler),
        Box::new(EvenSplitScheduler),
    ];
    for dist in &dists {
        let rm = ResourceManager::snapshot(&Cluster::paper_testbed(dist));
        for s in &schedulers {
            let m = run(&p, s.as_ref(), &rm, Objective::Jct);
            assert!(m.jct.is_finite() && m.jct > 0.0, "{} under {dist:?}", s.name());
        }
    }
}

#[test]
fn redis_reduces_jct_vs_s3_for_both_schedulers() {
    // §6.3: fast external storage helps, and Ditto still wins on top.
    let rm = ResourceManager::snapshot(&Cluster::paper_testbed(&SlotDistribution::zipf_09()));
    let db = Database::generate(ScaleConfig::with_sf(0.5));
    let mut plan = Query::Q95.prepared_plan(&db);
    plan.scale_volumes(4_000.0);
    for scheduler in [
        &DittoScheduler::new() as &dyn Scheduler,
        &NimbleScheduler::default(),
    ] {
        let mut jcts = Vec::new();
        for medium in [Medium::S3, Medium::Redis] {
            let gt = GroundTruth::new(ExecConfig {
                external: medium,
                ..Default::default()
            });
            let profile = profile_job(&plan.dag, &gt, &[10, 20, 40, 80, 120]);
            let (model, _) = profile.build_model(&plan.dag);
            let schedule = scheduler.schedule(&SchedulingContext {
                dag: &plan.dag,
                model: &model,
                resources: &rm,
                objective: Objective::Jct,
            });
            jcts.push(simulate(&plan.dag, &schedule, &gt).1.jct);
        }
        assert!(
            jcts[1] < jcts[0],
            "{}: redis {} should beat s3 {}",
            scheduler.name(),
            jcts[1],
            jcts[0]
        );
    }
}
