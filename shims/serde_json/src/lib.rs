//! Minimal offline stand-in for `serde_json`, built on the shim `serde`
//! crate's `Content` data model.
//!
//! Covers the workspace's usage: `to_string` / `to_string_pretty` /
//! `to_value` / `from_str`, a `Value` tree with `Number` and an
//! insertion-ordered `Map`, `Index` by key and position, and comparisons
//! against literals. Integers round-trip as integers; floats always render
//! with a decimal point or exponent so `is_f64` survives a round trip.

use serde::{Content, Deserialize, Serialize};

/// JSON number: integer or float, as parsed.
#[derive(Debug, Clone)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The value as an `f64`, if representable.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(v) => Some(*v as f64),
            Number::NegInt(v) => Some(*v as f64),
            Number::Float(v) => Some(*v),
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// Whether the number is a float (was written with `.` or exponent).
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64() && self.is_f64() == other.is_f64()
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // `{:?}` keeps a trailing `.0` on whole floats, so float-ness
            // survives serialization round trips.
            Number::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// Insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// New empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing an existing key in place.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Key/value pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::ops::Index<&str> for Map {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Convert to f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Convert to i64 if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Convert to u64 if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Borrow as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key (objects only; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write_json(out, indent, lvl);
                });
            }
            Value::Object(map) => {
                write_seq(out, indent, level, '{', '}', map.len(), |out, i, lvl| {
                    let (k, v) = &map.entries[i];
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, lvl);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s, None, 0);
        f.write_str(&s)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => {
                if *v <= i64::MAX as u64 {
                    Content::I64(*v as i64)
                } else {
                    Content::U64(*v)
                }
            }
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(if *v < 0 {
                Number::NegInt(*v)
            } else {
                Number::PosInt(*v as u64)
            }),
            Content::U64(v) => Value::Number(Number::PosInt(*v)),
            Content::F64(v) => Value::Number(Number::Float(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => {
                let mut m = Map::new();
                for (k, v) in entries {
                    m.insert(k.clone(), Value::from_content(v)?);
                }
                Value::Object(m)
            }
        })
    }
}

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    let mut s = String::new();
    v.write_json(&mut s, None, 0);
    Ok(s)
}

/// Serialize to pretty JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    let v = content_to_value(&value.to_content());
    let mut s = String::new();
    v.write_json(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

fn content_to_value(c: &Content) -> Value {
    Value::from_content(c).expect("Content always converts to Value")
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error)
}

/// Parse a [`Value`] from a serializable input (identity-ish helper).
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value.to_content()).map_err(Error)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| Error(format!("invalid number `{text}`")))?;
            Ok(if v <= i64::MAX as u64 {
                Content::I64(v as i64)
            } else {
                Content::U64(v)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_roundtrip() {
        let text = r#"{"a": [1, -2, 3.5], "b": "hi\n", "c": true, "d": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], 1i64);
        assert_eq!(v["a"][2], 3.5f64);
        assert_eq!(v["b"], "hi\n");
        assert_eq!(v["c"], true);
        assert_eq!(v["d"], Value::Null);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_floatness() {
        let v: Value = from_str("[1.0, 1]").unwrap();
        let arr = v.as_array().unwrap();
        assert!(matches!(&arr[0], Value::Number(n) if n.is_f64()));
        assert!(matches!(&arr[1], Value::Number(n) if !n.is_f64()));
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1.0,1]");
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v: Value = from_str(r#"{"x": {"y": [1, 2]}, "z": []}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_report_position() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<(u32, u32)> = from_str("[[1, 2], [3, 4]]").unwrap();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
        let s: String = from_str("\"x\"").unwrap();
        assert_eq!(s, "x");
    }
}
