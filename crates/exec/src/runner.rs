//! The local runtime: physically execute a query plan under a schedule.
//!
//! This is the "execution engine atop SPRIGHT" of the paper's §5, scaled
//! to one machine: every task runs on its own worker thread, intermediate
//! tables are encoded with the `ditto-sql` codec and move through the
//! `ditto-storage` [`DataPlane`] — the zero-copy shared-memory bus when
//! the schedule co-locates producer and consumer, the external object
//! store otherwise. Stages run in topological order with a barrier in
//! between (launch-time overlap is a *timing* concern handled by the
//! simulator; the runtime's job is correctness and byte accounting).
//!
//! Communication patterns per edge kind:
//!
//! * **Shuffle** — each producer task hash-partitions its output by the
//!   stage's `output_key` into `d_dst` buckets and sends bucket `j` to
//!   consumer task `j` (keys co-partitioned across producers);
//! * **Gather** — each producer task forwards its whole output to one
//!   consumer (`producer % d_dst`), other consumers receive empty markers
//!   so schemas always propagate;
//! * **AllGather** — every consumer task receives a full copy.

use crate::error::ExecError;
use crate::faults::{AttemptOutcome, AttemptRecord, FaultPlan, FaultStats, RecoveryPolicy};
use crate::journal::{EngineKind, JournalSession, JOURNAL_SEED};
use ditto_cluster::{RuntimeMonitor, TaskRecord};
use ditto_core::Schedule;
use ditto_dag::{EdgeKind, StageId};
use ditto_sql::{Database, QueryPlan, StageOp, Table};
use ditto_storage::{partition_key, DataPlane, ReadRetryPolicy, StoreError, TransferLedger};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Inputs gathered for one task: tables keyed by upstream stage name,
/// total bytes read, and the external partition keys read (the task's
/// lineage).
type GatheredInputs = (BTreeMap<String, Table>, u64, Vec<String>);
/// One task's outcome: the final-stage partial (if any), the winning
/// attempt epoch, and the output checksum that names its object commit.
type TaskOutcome = (Option<Table>, u32, u64);

/// Result of a local run.
#[derive(Debug)]
pub struct RunOutput {
    /// The job answer (final-stage partials combined).
    pub result: Table,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Data-plane accounting (bytes per medium, persistence cost).
    pub ledger: TransferLedger,
    /// Per-task runtime records.
    pub monitor: Arc<RuntimeMonitor>,
    /// Task attempts that crashed and were retried (fault injection).
    pub retries: u64,
    /// Attempt-level history of every faulted task (failed attempts plus
    /// their final completed one); empty for fault-free runs.
    pub attempts: Vec<AttemptRecord>,
    /// Aggregated fault and recovery accounting.
    pub fault_stats: FaultStats,
}

/// The multi-threaded local executor.
///
/// Fault injection follows the shared [`FaultPlan`] vocabulary. An
/// injected crash happens after the task's evaluation but *before it
/// publishes any output*, so the retry is idempotent and downstream
/// consumers only ever see one copy — the all-or-nothing output contract
/// real serverless shuffle layers rely on. Injected stragglers slow a
/// task down; with [`RecoveryPolicy::speculation`] enabled the runtime
/// launches a clean backup copy whose output supersedes the straggler.
/// Whole-server failures are a simulation-only concern (threads on one
/// machine don't lose servers) and are ignored here.
#[derive(Debug, Clone, Default)]
pub struct LocalRuntime {
    /// Receive timeout per partition (generous default: 30 s).
    pub recv_timeout: Option<Duration>,
    /// Fault injection plan (empty = no faults).
    pub faults: FaultPlan,
    /// Reaction to injected faults. Backoff waits are capped at 5 ms of
    /// wall time so fault tests stay fast.
    pub recovery: RecoveryPolicy,
}

impl LocalRuntime {
    /// A runtime with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    fn timeout(&self) -> Duration {
        self.recv_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Execute `plan` under `schedule`, moving intermediates through
    /// `dataplane`.
    ///
    /// # Panics
    /// Panics on any [`ExecError`] — thin wrapper over [`Self::try_run`]
    /// for callers that treat these conditions as bugs.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
    ) -> RunOutput {
        self.try_run(plan, db, schedule, dataplane)
            .unwrap_or_else(|err| panic!("{}: {err}", plan.name))
    }

    /// Fallible execution: every failure mode — invalid schedule, missing
    /// input, exhausted retries, worker panic — surfaces as a typed
    /// [`ExecError`] instead of a panic.
    pub fn try_run(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
    ) -> Result<RunOutput, ExecError> {
        self.try_run_inner(plan, db, schedule, dataplane, None)
    }

    /// [`Self::try_run`] with a control-plane write-ahead journal: job
    /// admission and the schedule commit journal before any task starts,
    /// and each stage barrier journals its tasks' faulted-attempt history
    /// plus an object commit per task (`value` = [`checksum64`] of the
    /// task's encoded output) *before* the next stage launches. Physical
    /// re-execution after a coordinator crash is at-least-once; the
    /// session's [`CommitLedger`] deduplicates re-delivered commits by
    /// `(object, attempt_epoch)` — and a same-epoch commit whose checksum
    /// differs from the journaled one fails the run rather than publish a
    /// second version of an object.
    ///
    /// [`checksum64`]: ditto_storage::checksum64
    /// [`CommitLedger`]: ditto_storage::CommitLedger
    pub fn try_run_journaled(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
        session: &mut JournalSession,
    ) -> Result<RunOutput, ExecError> {
        self.try_run_inner(plan, db, schedule, dataplane, Some(session))
    }

    fn try_run_inner(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
        mut session: Option<&mut JournalSession>,
    ) -> Result<RunOutput, ExecError> {
        let dag = &plan.dag;
        schedule.validate(dag).map_err(ExecError::InvalidSchedule)?;
        if let Some(j) = session.as_deref_mut() {
            j.begin(
                dag.num_stages() as u32,
                dag.num_edges() as u32,
                EngineKind::Runner,
                schedule,
                &ditto_obs::Recorder::disabled(),
            )?;
        }
        // One knob bounds both recovery paths: the storage read-retry
        // policy is derived from the task-level RecoveryPolicy, so a run
        // configured for N task retries also gets bounded, backed-off
        // external reads (wall waits capped like the task backoff above).
        dataplane.set_read_retry(ReadRetryPolicy {
            max_attempts: self.recovery.max_retries.saturating_add(1).clamp(1, 64),
            backoff_base: self.recovery.backoff_base.clamp(50e-6, 0.005),
            ..ReadRetryPolicy::default()
        });
        let read_base = dataplane.read_stats();
        let monitor = Arc::new(RuntimeMonitor::new());
        let retries = AtomicU64::new(0);
        let attempts: Mutex<Vec<AttemptRecord>> = Mutex::new(Vec::new());
        let stats: Mutex<FaultStats> = Mutex::new(FaultStats::default());
        let recovered: Mutex<BTreeSet<(u32, u32)>> = Mutex::new(BTreeSet::new());
        let started = Instant::now();
        let mut final_partials: Vec<Table> = Vec::new();
        let timeout = self.timeout();

        let order = dag.topo_order().map_err(|_| ExecError::CyclicDag)?;
        for s in order {
            let d = schedule.dop[s.index()];
            let is_final = dag.out_degree(s) == 0;
            let scan_slices: Option<Vec<Table>> = match &plan.stages[s.index()].op {
                StageOp::Scan { table, .. } => Some(db.table(table).split(d as usize)),
                _ => None,
            };

            let retries_ref = &retries;
            let attempts_ref = &attempts;
            let stats_ref = &stats;
            let recovered_ref = &recovered;
            let results: Vec<Result<TaskOutcome, ExecError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..d)
                        .map(|t| {
                            // Borrow, don't clone: the slices outlive the scope.
                            let scan_slice = scan_slices.as_ref().map(|v| &v[t as usize]);
                            let monitor = monitor.clone();
                            scope.spawn(move || {
                                self.run_task(
                                    plan, db, schedule, dataplane, s, t, scan_slice, is_final,
                                    timeout, started, &monitor, retries_ref, attempts_ref,
                                    stats_ref, recovered_ref,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .unwrap_or(Err(ExecError::TaskPanicked { stage: s.0 }))
                        })
                        .collect()
                });
            let mut partials = Vec::new();
            let mut commits: Vec<(u32, u64)> = Vec::with_capacity(d as usize);
            for r in results {
                let (table, epoch, value) = r?;
                commits.push((epoch, value));
                if let Some(table) = table {
                    partials.push(table);
                }
            }
            if let Some(j) = session.as_deref_mut() {
                // Write-ahead at the stage barrier: the journal holds this
                // stage's attempts and commits before the next launches.
                let stage_attempts: Vec<AttemptRecord> = attempts
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .iter()
                    .filter(|a| a.stage == s.0)
                    .copied()
                    .collect();
                for (t, &(epoch, value)) in commits.iter().enumerate() {
                    j.record_physical_task(s.0, t as u32, epoch, value, &stage_attempts)?;
                }
            }
            if is_final {
                final_partials = partials;
            }
        }

        let mut attempts = attempts.into_inner().unwrap_or_else(|p| p.into_inner());
        attempts.sort_by_key(|a| (a.stage, a.task, a.attempt));
        let mut fault_stats = stats.into_inner().unwrap_or_else(|p| p.into_inner());
        // Surface the (formerly invisible) storage read-retry accounting
        // alongside the task-level fault accounting.
        fault_stats.storage_retries = dataplane
            .read_stats()
            .extra_attempts
            .saturating_sub(read_base.extra_attempts);
        Ok(RunOutput {
            result: plan.combine_final(&final_partials),
            wall_seconds: started.elapsed().as_secs_f64(),
            ledger: dataplane.ledger(),
            monitor,
            retries: retries.load(Ordering::Relaxed),
            attempts,
            fault_stats,
        })
    }

    /// One task: gather inputs, evaluate the stage operator (under fault
    /// injection and recovery), scatter outputs. Returns the output table
    /// for final-stage tasks, the winning attempt epoch, and the commit
    /// checksum of the encoded output (the journal's object-commit value).
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
        s: StageId,
        t: u32,
        scan_slice: Option<&Table>,
        is_final: bool,
        timeout: Duration,
        job_start: Instant,
        monitor: &RuntimeMonitor,
        retries: &AtomicU64,
        attempts_log: &Mutex<Vec<AttemptRecord>>,
        stats: &Mutex<FaultStats>,
        recovered: &Mutex<BTreeSet<(u32, u32)>>,
    ) -> Result<TaskOutcome, ExecError> {
        let launch = job_start.elapsed().as_secs_f64();
        let my_server = schedule.placement[s.index()].server_of_task(t).index();
        let server = ditto_cluster::ServerId(my_server as u32);
        let cx = TaskCtx {
            plan,
            db,
            schedule,
            dataplane,
            timeout,
            stats,
            recovered,
        };
        let push_attempt = |rec: AttemptRecord| {
            attempts_log
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(rec);
        };

        // ---- gather inputs (with object-fault injection + recovery) ----
        let read_t0 = Instant::now();
        let (inputs, bytes_read, input_keys) = self.gather_inputs(&cx, s, t, true)?;
        let read_secs = read_t0.elapsed().as_secs_f64();

        // Nominal function footprint for wasted-work billing, mirroring
        // the ground-truth memory model (base footprint + bytes handled).
        let mem_gb = 0.125 + bytes_read as f64 * 2.0e-9;

        // ---- evaluate (crash-and-retry fault injection) ----
        let compute_t0 = Instant::now();
        let mut attempt = 0u32;
        let mut attempt_start;
        let mut faulted = false;
        let mut spec_won = false;
        let mut out = loop {
            attempt_start = job_start.elapsed().as_secs_f64();
            let attempt_out = plan.execute_stage(s, db, &inputs, scan_slice);
            if self.faults.crash_point(s, t, attempt).is_some() {
                // The attempt crashed before publishing: discard its
                // output, back off, re-execute.
                drop(attempt_out);
                let now = job_start.elapsed().as_secs_f64();
                let wasted = mem_gb * (now - attempt_start);
                push_attempt(AttemptRecord {
                    stage: s.0,
                    task: t,
                    attempt,
                    server,
                    start: attempt_start,
                    end: now,
                    outcome: AttemptOutcome::Crashed,
                    wasted_gb_s: wasted,
                    speculative: false,
                });
                retries.fetch_add(1, Ordering::Relaxed);
                if attempt >= self.recovery.max_retries {
                    return Err(ExecError::RetriesExhausted {
                        stage: s.0,
                        task: t,
                        attempts: attempt + 1,
                    });
                }
                // Cap the physical wait so fault tests stay fast; the
                // modeled backoff lives in the simulator.
                let backoff = self.recovery.backoff(attempt).min(0.005);
                {
                    let mut st = stats.lock().unwrap_or_else(|p| p.into_inner());
                    st.extra_attempts += 1;
                    st.wasted_gb_s += wasted;
                    st.recovery_delay_s += (now - attempt_start) + backoff;
                }
                std::thread::sleep(Duration::from_secs_f64(backoff));
                attempt += 1;
                faulted = true;
                continue;
            }
            break attempt_out;
        };

        // ---- injected straggler + speculative re-execution ----
        let slow = self.faults.slowdown(s, t);
        if slow > 1.0 {
            // Stall the attempt observably (bounded wall time).
            std::thread::sleep(Duration::from_secs_f64(((slow - 1.0) * 1e-3).min(0.01)));
            if self.recovery.speculation {
                // A clean backup copy supersedes the stalled original —
                // identical output (evaluation is deterministic), so the
                // handoff is transparent to downstream consumers.
                let now = job_start.elapsed().as_secs_f64();
                let wasted = mem_gb * (now - attempt_start);
                push_attempt(AttemptRecord {
                    stage: s.0,
                    task: t,
                    attempt,
                    server,
                    start: attempt_start,
                    end: now,
                    outcome: AttemptOutcome::Superseded,
                    wasted_gb_s: wasted,
                    speculative: false,
                });
                {
                    let mut st = stats.lock().unwrap_or_else(|p| p.into_inner());
                    st.extra_attempts += 1;
                    st.wasted_gb_s += wasted;
                    st.recovery_delay_s += now - attempt_start;
                    st.speculative_copies += 1;
                }
                attempt += 1;
                attempt_start = job_start.elapsed().as_secs_f64();
                out = plan.execute_stage(s, db, &inputs, scan_slice);
                faulted = true;
                spec_won = true;
            }
        }
        let compute_secs = compute_t0.elapsed().as_secs_f64();

        // ---- scatter outputs ----
        let write_t0 = Instant::now();
        let bytes_written = self.scatter_outputs(&cx, s, t, &out, &input_keys, false)?;
        let write_secs = write_t0.elapsed().as_secs_f64();

        let end = job_start.elapsed().as_secs_f64();
        monitor.record(TaskRecord {
            stage: s.0,
            task: t,
            server,
            start: launch,
            end,
            steps: ditto_obs::StepTimings::new(0.0, read_secs, compute_secs, write_secs),
            bytes_read,
            bytes_written,
        });
        if faulted {
            // Close the attempt sequence with the winning execution.
            push_attempt(AttemptRecord {
                stage: s.0,
                task: t,
                attempt,
                server,
                start: attempt_start,
                end,
                outcome: AttemptOutcome::Completed,
                wasted_gb_s: 0.0,
                speculative: spec_won,
            });
        }

        // Evaluation is deterministic, so the encoded output — and its
        // commit checksum — is identical across re-executions: the
        // journal's exactly-once conflict check has teeth.
        let value = ditto_storage::checksum64(&out.encode(), JOURNAL_SEED);
        Ok((is_final.then_some(out), attempt, value))
    }

    /// Gather every input partition of task `(s, t)`.
    ///
    /// With `recover` set this is the fault-bearing first-read path: the
    /// [`FaultPlan`]'s object faults are injected physically (the stored
    /// partition is deleted or tampered, first reader pays), and a read
    /// that comes back lost or corrupt triggers a bounded *one-level*
    /// lineage re-execution of the producing task before the read is
    /// retried — the physical half of the escalation ladder. With
    /// `recover` clear (inside a re-execution) failures surface directly:
    /// deeper loss escalates as a typed error instead of recursing.
    ///
    /// Returns `(inputs by upstream stage name, bytes read, external
    /// partition keys read)` — the key list is this task's lineage.
    fn gather_inputs(
        &self,
        cx: &TaskCtx<'_>,
        s: StageId,
        t: u32,
        recover: bool,
    ) -> Result<GatheredInputs, ExecError> {
        let dag = &cx.plan.dag;
        let my_server = cx.schedule.placement[s.index()].server_of_task(t).index();
        let mut inputs: BTreeMap<String, Table> = BTreeMap::new();
        let mut bytes_read = 0u64;
        let mut input_keys: Vec<String> = Vec::new();
        let missing = |detail: String| ExecError::MissingInput {
            stage: s.0,
            task: t,
            detail,
        };
        for e in dag.in_edges(s) {
            let du = cx.schedule.dop[e.src.index()];
            let mut parts = Vec::new();
            for ut in 0..du {
                let src_server = cx.schedule.placement[e.src.index()].server_of_task(ut).index();
                let external = src_server != my_server;
                if external && recover {
                    self.inject_object_fault(cx, e.src, ut, e.id.0, t);
                }
                let recv = || {
                    cx.dataplane
                        .recv_partition(e.id.0, ut, t, src_server, my_server, cx.timeout)
                };
                let data = match recv() {
                    Ok(d) => d,
                    Err(err @ (StoreError::NotFound(_) | StoreError::Corrupted { .. }))
                        if external && recover =>
                    {
                        // The object is gone or fails verification; heal it
                        // through the lineage index, then read again.
                        self.reexec_producer(cx, e.src, ut).map_err(|e2| {
                            missing(format!(
                                "{}: edge {}: {err}; lineage re-execution failed: {e2}",
                                cx.plan.name, e.id
                            ))
                        })?;
                        recv().map_err(|err| {
                            missing(format!(
                                "{}: edge {}: still unreadable after lineage re-execution: {err}",
                                cx.plan.name, e.id
                            ))
                        })?
                    }
                    Err(err) => {
                        return Err(missing(format!("{}: edge {}: {err}", cx.plan.name, e.id)))
                    }
                };
                bytes_read += data.len() as u64;
                if external {
                    input_keys.push(partition_key(e.id.0, ut, t));
                }
                parts.push(Table::decode(data));
            }
            let merged = Table::concat(&parts).ok_or_else(|| {
                missing(format!(
                    "{}: edge {} has no upstream tasks",
                    cx.plan.name, e.id
                ))
            })?;
            inputs.insert(dag.stage(e.src).name.clone(), merged);
        }
        Ok((inputs, bytes_read, input_keys))
    }

    /// Physically apply a planned object fault to one stored partition of
    /// producer `(src, ut)` — delete on loss, checksum-tamper on
    /// corruption. First reader pays: each faulted producer is applied
    /// (and later healed) exactly once per run.
    fn inject_object_fault(&self, cx: &TaskCtx<'_>, src: StageId, ut: u32, edge: u32, t: u32) {
        let Some(kind) = self.faults.object_fault(src, ut) else {
            return;
        };
        if !cx
            .recovered
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert((src.0, ut))
        {
            return; // already applied and healed; the regenerated object stands
        }
        let key = partition_key(edge, ut, t);
        let store = cx.dataplane.external_store();
        let mut st = cx.stats.lock().unwrap_or_else(|p| p.into_inner());
        match kind {
            crate::faults::ObjectFaultKind::Loss => {
                store.delete(&key);
                st.object_losses += 1;
            }
            crate::faults::ObjectFaultKind::Corruption => {
                if store.tamper(&key) {
                    st.object_corruptions += 1;
                } else {
                    // Nothing stored to corrupt (e.g. raced with deletion):
                    // degrade to a loss so the fault still lands.
                    store.delete(&key);
                    st.object_losses += 1;
                }
            }
        }
    }

    /// Bounded lineage re-execution: re-run producer task `(src, ut)` and
    /// republish its *external* output partitions (idempotent puts; the
    /// regenerated bytes are identical because evaluation is
    /// deterministic). One level only — the producer's own inputs must
    /// still be readable. External inputs persist in the object store;
    /// consumed shared-memory slots cannot be replayed, so recovery of a
    /// producer with co-located inputs escalates as a typed error (the
    /// simulator models the general case).
    fn reexec_producer(&self, cx: &TaskCtx<'_>, src: StageId, ut: u32) -> Result<(), ExecError> {
        let (inputs, _, input_keys) = self.gather_inputs(cx, src, ut, false)?;
        let scan_slices = match &cx.plan.stages[src.index()].op {
            StageOp::Scan { table, .. } => {
                Some(cx.db.table(table).split(cx.schedule.dop[src.index()] as usize))
            }
            _ => None,
        };
        let out = cx.plan.execute_stage(
            src,
            cx.db,
            &inputs,
            scan_slices.as_ref().map(|v| &v[ut as usize]),
        );
        self.scatter_outputs(cx, src, ut, &out, &input_keys, true)?;
        let mut st = cx.stats.lock().unwrap_or_else(|p| p.into_inner());
        st.lineage_reexecs += 1;
        st.extra_attempts += 1;
        Ok(())
    }

    /// Scatter task `(s, t)`'s output across its out-edges. Every external
    /// partition is recorded in the data plane's lineage index under the
    /// keys of the inputs that produced it. With `external_only` (the
    /// lineage re-execution path) shared-memory sends are skipped: only
    /// externally stored objects can have been lost, and the original
    /// consumers already drained their bus slots.
    fn scatter_outputs(
        &self,
        cx: &TaskCtx<'_>,
        s: StageId,
        t: u32,
        out: &Table,
        input_keys: &[String],
        external_only: bool,
    ) -> Result<u64, ExecError> {
        let dag = &cx.plan.dag;
        let my_server = cx.schedule.placement[s.index()].server_of_task(t).index();
        let mut bytes_written = 0u64;
        for e in dag.out_edges(s) {
            let dv = cx.schedule.dop[e.dst.index()];
            // Wire frames per consumer: (encoded bytes, logical table bytes).
            let frames: Vec<(bytes::Bytes, u64)> = match e.kind {
                EdgeKind::Shuffle => {
                    let key = cx.plan.stages[s.index()]
                        .output_key
                        .as_deref()
                        .ok_or(ExecError::MissingOutputKey { stage: s.0 })?;
                    // Fused partition+encode: hashes computed once, bytes
                    // written straight into each bucket's frame — the
                    // per-bucket Tables are never materialized.
                    out.encode_partitions(key, dv as usize)
                        .into_iter()
                        .map(|p| (p.data, p.logical_bytes))
                        .collect()
                }
                EdgeKind::Gather => {
                    // Full output to consumer (t % dv); empty markers keep
                    // schemas flowing to the rest. Encode each frame once
                    // and hand out cheap refcounted clones.
                    let target = t % dv;
                    let full = (out.encode(), out.byte_size());
                    let empty_table = Table::empty(out.schema.clone());
                    let empty = (empty_table.encode(), 0u64);
                    (0..dv)
                        .map(|vt| if vt == target { full.clone() } else { empty.clone() })
                        .collect()
                }
                EdgeKind::AllGather => {
                    let full = (out.encode(), out.byte_size());
                    (0..dv).map(|_| full.clone()).collect()
                }
            };
            for (vt, (data, logical)) in frames.into_iter().enumerate() {
                let dst_server = cx.schedule.placement[e.dst.index()]
                    .server_of_task(vt as u32)
                    .index();
                if external_only && dst_server == my_server {
                    continue;
                }
                bytes_written += data.len() as u64;
                cx.dataplane
                    .send_partition_sized(
                        e.id.0, t, vt as u32, my_server, dst_server, data, logical,
                    )
                    .map_err(|err| {
                        ExecError::DataPlane(format!(
                            "{}: stage {s} task {t}: {err}",
                            cx.plan.name
                        ))
                    })?;
                if dst_server != my_server {
                    cx.dataplane.lineage().record(
                        partition_key(e.id.0, t, vt as u32),
                        s.0,
                        t,
                        input_keys.to_vec(),
                    );
                }
            }
        }
        Ok(bytes_written)
    }
}

/// Shared references threaded through one task's data-path helpers.
struct TaskCtx<'a> {
    plan: &'a QueryPlan,
    db: &'a Database,
    schedule: &'a Schedule,
    dataplane: &'a DataPlane,
    timeout: Duration,
    stats: &'a Mutex<FaultStats>,
    /// Producer tasks whose object fault has been applied (and healed):
    /// first reader pays, everyone else reads the regenerated object.
    recovered: &'a Mutex<BTreeSet<(u32, u32)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_cluster::ResourceManager;
    use ditto_core::baselines::{EvenSplitScheduler, NimbleScheduler};
    use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
    use ditto_sql::queries::{q1, q95, Query};
    use ditto_sql::ScaleConfig;
    use ditto_storage::Medium;
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn run_query(
        q: Query,
        scheduler: &dyn Scheduler,
        free: &[u32],
        external: Medium,
    ) -> (RunOutput, QueryPlan, Database) {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = q.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(external, free.len());
        let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
        (out, plan, db)
    }

    #[test]
    fn q95_distributed_matches_reference() {
        let (out, _, db) = run_query(
            Query::Q95,
            &EvenSplitScheduler,
            &[8, 8, 8, 8],
            Medium::S3,
        );
        let (n, cost, profit) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0));
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
        assert!(out.wall_seconds > 0.0);
        // One record per task across all 9 stages.
        let recs = out.monitor.records();
        let stages_seen: std::collections::HashSet<u32> = recs.iter().map(|r| r.stage).collect();
        assert_eq!(stages_seen.len(), 9, "all 9 stages executed");
        assert!(recs.len() >= 9);
    }

    #[test]
    fn q1_distributed_matches_reference_under_ditto_schedule() {
        let (out, _, db) = run_query(Query::Q1, &DittoScheduler::new(), &[16, 8, 8], Medium::S3);
        let expected = q1::reference(&db);
        let mut got = q1::result_customers(&out.result);
        got.sort_unstable();
        let mut exp = expected;
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn nimble_schedule_gives_same_answer_as_ditto() {
        let (a, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[24, 12, 8], Medium::S3);
        let (b, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[24, 12, 8],
            Medium::S3,
        );
        // Equal up to float summation order (tasks sum partials in
        // different groupings under different schedules).
        let (an, ac, ap) = q95::result_triple(&a.result);
        let (bn, bc, bp) = q95::result_triple(&b.result);
        assert_eq!(an, bn, "answers are schedule-independent");
        assert!((ac - bc).abs() < 1e-6 * ac.abs().max(1.0));
        assert!((ap - bp).abs() < 1e-6 * ap.abs().max(1.0));
    }

    #[test]
    fn colocated_schedule_uses_shared_memory() {
        // Ditto on a roomy cluster groups stages → shared-memory traffic.
        let (out, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[96, 96], Medium::S3);
        assert!(
            out.ledger.shared_memory.transfers > 0,
            "expected zero-copy transfers, ledger: {:?}",
            out.ledger
        );
    }

    #[test]
    fn nimble_never_uses_shared_memory_deliberately() {
        let (out, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[96, 96],
            Medium::S3,
        );
        // Random placement may co-locate individual task pairs, but the
        // schedule declares no colocation, so the data plane only routes
        // via shared memory when src/dst servers coincide by chance. With
        // 2 servers roughly half the traffic lands local; what matters is
        // external traffic exists at all (Ditto above can make it ~zero).
        assert!(out.ledger.s3.transfers > 0);
    }

    #[test]
    fn fault_injection_retries_and_stays_correct() {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = Query::Q95.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(Medium::S3, free.len());
        let runtime = LocalRuntime {
            faults: FaultPlan::with_random_crashes(0.3, 3),
            recovery: RecoveryPolicy {
                max_retries: 8,
                ..RecoveryPolicy::retry_only()
            },
            ..Default::default()
        };
        let out = runtime.execute(&plan, &db, &schedule, &dataplane);
        assert!(out.retries > 0, "30% failure rate must trigger retries");
        // Attempt records mirror the retry counter and bill wasted work.
        let crashed = out
            .attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::Crashed)
            .count() as u64;
        assert_eq!(crashed, out.retries);
        assert!(out.fault_stats.wasted_gb_s > 0.0);
        assert_eq!(out.fault_stats.extra_attempts as u64, out.retries);
        // The answer is unaffected by crashes.
        let (n, c, p) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - c).abs() < 1e-6 * c.abs().max(1.0));
        assert!((gp - p).abs() < 1e-6 * p.abs().max(1.0));
    }

    #[test]
    fn fault_injection_deterministic_per_seed() {
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let run = |seed: u64| {
            let dataplane = DataPlane::new(Medium::S3, free.len());
            LocalRuntime {
                faults: FaultPlan::with_random_crashes(0.5, seed),
                recovery: RecoveryPolicy {
                    max_retries: 32,
                    ..RecoveryPolicy::retry_only()
                },
                ..Default::default()
            }
            .execute(&plan, &db, &schedule, &dataplane)
            .retries
        };
        assert_eq!(run(3), run(3), "same seed, same crash pattern");
    }

    #[test]
    fn explicit_faults_leave_answer_byte_identical() {
        use crate::faults::FaultEvent;
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let clean = LocalRuntime::new()
            .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, free.len()))
            .unwrap();
        assert!(clean.attempts.is_empty(), "fault-free run records no attempts");
        // One crash + one straggler, recovered under the default policy.
        let out = LocalRuntime {
            faults: FaultPlan::from_events(vec![
                FaultEvent::TaskCrash {
                    stage: StageId(0),
                    task: 0,
                    attempt: 0,
                    at_fraction: 0.5,
                },
                FaultEvent::Straggler {
                    stage: StageId(1),
                    task: 0,
                    slowdown: 5.0,
                },
            ]),
            recovery: RecoveryPolicy::default(),
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, free.len()))
        .unwrap();
        assert_eq!(
            out.result.encode(),
            clean.result.encode(),
            "recovered run must produce the exact same final table"
        );
        let extra = out
            .attempts
            .iter()
            .filter(|a| a.outcome != AttemptOutcome::Completed)
            .count();
        assert!(extra >= 2, "crash + superseded straggler, got {extra}");
        assert!(out.attempts.iter().any(|a| a.outcome == AttemptOutcome::Crashed));
        assert!(out
            .attempts
            .iter()
            .any(|a| a.outcome == AttemptOutcome::Superseded));
        assert!(out.fault_stats.wasted_gb_s > 0.0, "wasted work is billed");
        assert_eq!(out.fault_stats.speculative_copies, 1);
    }

    #[test]
    fn object_loss_and_corruption_healed_by_lineage_reexecution() {
        use crate::faults::FaultEvent;
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let mut schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        // EvenSplit packs Q1's whole prefix (stages 0–3) onto server 0, so
        // the scan's shuffle partitions never leave shared memory and an
        // injected object fault would have nothing to hit. Move the scan's
        // consumer to the other server: edge 0→1 now rides the external
        // object store, and stage 0 — a scan — is exactly the kind of
        // producer lineage re-execution can regenerate from base tables.
        schedule.placement[1] = ditto_core::TaskPlacement::Single(ditto_cluster::ServerId(1));
        let clean = LocalRuntime::new()
            .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, free.len()))
            .unwrap();
        // Lose one scan task's stored output and corrupt another's: the
        // first consumer's read detects each (not-found / checksum
        // mismatch), re-executes the producing task through the lineage
        // index, and the job completes with the exact same answer.
        let dataplane = DataPlane::new(Medium::S3, free.len());
        let out = LocalRuntime {
            faults: FaultPlan::from_events(vec![
                FaultEvent::ObjectLoss { stage: StageId(0), task: 0 },
                FaultEvent::ObjectCorruption { stage: StageId(0), task: 1 },
            ]),
            recovery: RecoveryPolicy::default(),
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &dataplane)
        .unwrap();
        assert_eq!(
            out.result.encode(),
            clean.result.encode(),
            "healed run must produce the exact same final table"
        );
        assert_eq!(out.fault_stats.object_losses, 1);
        assert_eq!(out.fault_stats.object_corruptions, 1);
        assert_eq!(out.fault_stats.lineage_reexecs, 2);
        assert!(
            out.fault_stats.storage_retries > 0,
            "the lost object's read must have burned bounded retries"
        );
        assert!(!dataplane.lineage().is_empty(), "lineage index populated");
    }

    #[test]
    fn read_retry_policy_derives_from_recovery_policy() {
        let db = Database::generate(ScaleConfig::with_sf(0.1));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![8, 8]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(Medium::S3, 2);
        let runtime = LocalRuntime {
            recovery: RecoveryPolicy {
                max_retries: 7,
                ..RecoveryPolicy::default()
            },
            ..Default::default()
        };
        runtime
            .try_run(&plan, &db, &schedule, &dataplane)
            .unwrap();
        let p = dataplane.read_retry();
        assert_eq!(p.max_attempts, 8, "one knob bounds both retry paths");
        assert!(p.backoff_base <= 0.005, "wall waits stay capped");
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        use crate::faults::FaultEvent;
        let db = Database::generate(ScaleConfig::with_sf(0.1));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![8]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let events = (0..3)
            .map(|a| FaultEvent::TaskCrash {
                stage: StageId(0),
                task: 0,
                attempt: a,
                at_fraction: 0.5,
            })
            .collect();
        let err = LocalRuntime {
            faults: FaultPlan::from_events(events),
            recovery: RecoveryPolicy {
                max_retries: 2,
                ..RecoveryPolicy::retry_only()
            },
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, 1))
        .unwrap_err();
        assert_eq!(
            err,
            crate::error::ExecError::RetriesExhausted {
                stage: 0,
                task: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn journaled_run_commits_exactly_once_across_a_crash() {
        use crate::journal::{decode_journal, validate_journal, JournalRecord};
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let runtime = LocalRuntime {
            faults: FaultPlan::from_events(vec![crate::faults::FaultEvent::TaskCrash {
                stage: StageId(0),
                task: 0,
                attempt: 0,
                at_fraction: 0.5,
            }]),
            recovery: RecoveryPolicy::default(),
            ..Default::default()
        };
        let mut clean = JournalSession::fresh(None);
        let base = runtime
            .try_run_journaled(
                &plan,
                &db,
                &schedule,
                &DataPlane::new(Medium::S3, free.len()),
                &mut clean,
            )
            .unwrap();
        let records = decode_journal(clean.durable_bytes()).unwrap().records;
        let v = validate_journal(&records);
        assert!(v.is_empty(), "runner journal validates clean: {v:?}");
        let n_commits = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::ObjectCommit { .. }))
            .count() as u32;
        let total_tasks: u32 = schedule.dop.iter().sum();
        assert_eq!(n_commits, total_tasks, "one commit per task");
        assert!(
            records
                .iter()
                .any(|r| matches!(r, JournalRecord::TaskAttempt { .. })),
            "the injected crash's attempt history is journaled"
        );
        // Crash the coordinator mid-journal; the resumed run re-executes
        // physically but every re-delivered commit deduplicates.
        let total = clean.records_written();
        for k in [2, total / 2, total - 1] {
            let mut armed = JournalSession::fresh(Some(k));
            let err = runtime
                .try_run_journaled(
                    &plan,
                    &db,
                    &schedule,
                    &DataPlane::new(Medium::S3, free.len()),
                    &mut armed,
                )
                .unwrap_err();
            assert!(matches!(err, ExecError::CoordinatorCrash { at_record } if at_record == k));
            let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
            let out = runtime
                .try_run_journaled(
                    &plan,
                    &db,
                    &schedule,
                    &DataPlane::new(Medium::S3, free.len()),
                    &mut resumed,
                )
                .unwrap();
            assert_eq!(
                out.result.encode(),
                base.result.encode(),
                "crash at record {k}: the answer is byte-identical"
            );
            let recs = decode_journal(resumed.durable_bytes()).unwrap().records;
            let final_commits = recs
                .iter()
                .filter(|r| matches!(r, JournalRecord::ObjectCommit { .. }))
                .count() as u32;
            assert_eq!(
                final_commits, total_tasks,
                "crash at record {k}: every task commits exactly once"
            );
            assert_eq!(
                resumed.deduped(),
                resumed.replayed_commits(),
                "crash at record {k}: every durable commit deduplicated on re-delivery"
            );
            let v = validate_journal(&recs);
            assert!(v.is_empty(), "crash at record {k}: {v:?}");
        }
    }

    #[test]
    fn redis_backend_works_too() {
        let (out, _, db) = run_query(Query::Q95, &EvenSplitScheduler, &[8, 8], Medium::Redis);
        let (n, _, _) = q95::reference(&db);
        let (gn, _, _) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!(out.ledger.redis.transfers > 0);
    }
}
