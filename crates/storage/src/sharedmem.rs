//! SPRIGHT-like zero-copy shared-memory exchange for co-located functions.
//!
//! Functions placed on the same server exchange intermediate data through
//! shared memory: the producer publishes a reference-counted buffer, the
//! consumer receives the same buffer without copying or serialization. The
//! paper models this as α = β = 0 for the co-located I/O steps; here the
//! bus also serves as a *real* transport for the local runtime in
//! `ditto-exec`, with blocking receive so consumers can start before their
//! producers (pipelining).

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Duration;

/// A channel key: (edge id, producer task, consumer task).
pub type SlotKey = (u32, u32, u32);

/// Zero-copy publish/subscribe bus for intra-server data exchange.
///
/// `Bytes` values are reference-counted slices, so [`SharedMemoryBus::recv`]
/// hands the consumer the *same* allocation the producer published — the
/// zero-copy property SPRIGHT provides via shared memory.
#[derive(Default)]
pub struct SharedMemoryBus {
    slots: Mutex<HashMap<SlotKey, Bytes>>,
    cond: Condvar,
}

impl SharedMemoryBus {
    /// New empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a buffer for `(edge, from_task, to_task)`. Publishing twice
    /// to the same slot replaces the buffer (retry semantics).
    pub fn send(&self, key: SlotKey, data: Bytes) {
        let mut slots = self.slots.lock();
        slots.insert(key, data);
        self.cond.notify_all();
    }

    /// Take the buffer for a slot, blocking until it is published or the
    /// timeout elapses. Returns `None` on timeout. Consuming removes the
    /// slot (each partition has exactly one consumer under shuffle/gather).
    pub fn recv(&self, key: SlotKey, timeout: Duration) -> Option<Bytes> {
        let mut slots = self.slots.lock();
        loop {
            if let Some(b) = slots.remove(&key) {
                return Some(b);
            }
            if self.cond.wait_for(&mut slots, timeout).timed_out() {
                return slots.remove(&key);
            }
        }
    }

    /// Non-blocking take.
    pub fn try_recv(&self, key: SlotKey) -> Option<Bytes> {
        self.slots.lock().remove(&key)
    }

    /// Peek without consuming (for all-gather, where several consumers read
    /// the same buffer — zero-copy clone).
    pub fn peek(&self, key: SlotKey) -> Option<Bytes> {
        self.slots.lock().get(&key).cloned()
    }

    /// Number of unconsumed slots (resident intermediate partitions).
    pub fn resident_slots(&self) -> usize {
        self.slots.lock().len()
    }

    /// Total unconsumed bytes (for shared-memory persistence cost).
    pub fn resident_bytes(&self) -> u64 {
        self.slots.lock().values().map(|b| b.len() as u64).sum()
    }
}

impl std::fmt::Debug for SharedMemoryBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemoryBus")
            .field("resident_slots", &self.resident_slots())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn send_recv_zero_copy() {
        let bus = SharedMemoryBus::new();
        let payload = Bytes::from(vec![7u8; 1024]);
        let ptr = payload.as_ptr();
        bus.send((0, 0, 0), payload);
        let got = bus.recv((0, 0, 0), Duration::from_millis(10)).unwrap();
        // Same allocation: zero-copy.
        assert_eq!(got.as_ptr(), ptr);
        assert_eq!(got.len(), 1024);
        assert_eq!(bus.resident_slots(), 0);
    }

    #[test]
    fn recv_times_out() {
        let bus = SharedMemoryBus::new();
        assert!(bus.recv((1, 0, 0), Duration::from_millis(5)).is_none());
    }

    #[test]
    fn recv_blocks_until_send() {
        let bus = Arc::new(SharedMemoryBus::new());
        let b2 = bus.clone();
        let t = std::thread::spawn(move || b2.recv((0, 1, 2), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        bus.send((0, 1, 2), Bytes::from_static(b"data"));
        assert_eq!(t.join().unwrap().unwrap(), Bytes::from_static(b"data"));
    }

    #[test]
    fn peek_does_not_consume() {
        let bus = SharedMemoryBus::new();
        bus.send((0, 0, 0), Bytes::from_static(b"x"));
        assert!(bus.peek((0, 0, 0)).is_some());
        assert!(bus.peek((0, 0, 0)).is_some());
        assert_eq!(bus.resident_bytes(), 1);
        assert!(bus.try_recv((0, 0, 0)).is_some());
        assert!(bus.peek((0, 0, 0)).is_none());
    }

    #[test]
    fn many_producers_one_consumer() {
        let bus = Arc::new(SharedMemoryBus::new());
        let producers: Vec<_> = (0..8u32)
            .map(|i| {
                let bus = bus.clone();
                std::thread::spawn(move || {
                    bus.send((0, i, 0), Bytes::from(vec![i as u8; 16]));
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for i in 0..8u32 {
            let b = bus.recv((0, i, 0), Duration::from_secs(1)).unwrap();
            assert_eq!(b[0], i as u8);
        }
    }
}
