//! Fluent DAG construction.

use crate::error::DagError;
use crate::graph::{EdgeKind, JobDag};
use crate::stage::{StageId, StageKind};
use std::collections::HashMap;

/// Fluent builder for [`JobDag`]s, addressing stages by name.
///
/// ```
/// use ditto_dag::{DagBuilder, EdgeKind, StageKind};
///
/// let dag = DagBuilder::new("join-job")
///     .stage("map1", StageKind::Map, 1 << 30, 100 << 20)
///     .stage("map2", StageKind::Map, 256 << 20, 25 << 20)
///     .stage("join", StageKind::Join, 0, 10 << 20)
///     .edge("map1", "join", EdgeKind::Shuffle, 100 << 20)
///     .edge("map2", "join", EdgeKind::Shuffle, 25 << 20)
///     .build()
///     .unwrap();
/// assert_eq!(dag.num_stages(), 3);
/// ```
pub struct DagBuilder {
    dag: JobDag,
    by_name: HashMap<String, StageId>,
    pending_error: Option<DagError>,
}

impl DagBuilder {
    /// Start building a DAG with the given job name.
    pub fn new(name: impl Into<String>) -> Self {
        DagBuilder {
            dag: JobDag::new(name),
            by_name: HashMap::new(),
            pending_error: None,
        }
    }

    /// Add a stage with external input/output byte estimates.
    pub fn stage(
        mut self,
        name: impl Into<String>,
        kind: StageKind,
        input_bytes: u64,
        output_bytes: u64,
    ) -> Self {
        if self.pending_error.is_some() {
            return self;
        }
        let name = name.into();
        if self.by_name.contains_key(&name) {
            self.pending_error = Some(DagError::DuplicateName(name));
            return self;
        }
        let id = self.dag.add_stage(name.clone(), kind);
        {
            let s = self.dag.stage_mut(id);
            s.input_bytes = input_bytes;
            s.output_bytes = output_bytes;
        }
        self.by_name.insert(name, id);
        self
    }

    /// Add a data dependency between two previously declared stages.
    pub fn edge(
        mut self,
        src: impl AsRef<str>,
        dst: impl AsRef<str>,
        kind: EdgeKind,
        bytes: u64,
    ) -> Self {
        if self.pending_error.is_some() {
            return self;
        }
        let (src, dst) = (src.as_ref(), dst.as_ref());
        let Some(&s) = self.by_name.get(src) else {
            // Reported as UnknownStage with a sentinel id: names are the
            // builder's address space, ids only exist after declaration.
            self.pending_error = Some(DagError::DuplicateName(format!("unknown stage {src:?}")));
            return self;
        };
        let Some(&d) = self.by_name.get(dst) else {
            self.pending_error = Some(DagError::DuplicateName(format!("unknown stage {dst:?}")));
            return self;
        };
        if let Err(e) = self.dag.add_edge(s, d, kind, bytes) {
            self.pending_error = Some(e);
        }
        self
    }

    /// Look up the id assigned to a stage name added so far.
    pub fn id_of(&self, name: &str) -> Option<StageId> {
        self.by_name.get(name).copied()
    }

    /// Finish building: validates and returns the DAG.
    pub fn build(self) -> Result<JobDag, DagError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        self.dag.validate()?;
        Ok(self.dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_named_dag() {
        let dag = DagBuilder::new("t")
            .stage("a", StageKind::Map, 100, 50)
            .stage("b", StageKind::Reduce, 0, 10)
            .edge("a", "b", EdgeKind::Gather, 50)
            .build()
            .unwrap();
        assert_eq!(dag.num_stages(), 2);
        assert_eq!(dag.stage(StageId(0)).input_bytes, 100);
        assert_eq!(dag.edges()[0].kind, EdgeKind::Gather);
    }

    #[test]
    fn duplicate_stage_name_errors() {
        let r = DagBuilder::new("t")
            .stage("a", StageKind::Map, 0, 0)
            .stage("a", StageKind::Map, 0, 0)
            .build();
        assert!(matches!(r, Err(DagError::DuplicateName(_))));
    }

    #[test]
    fn unknown_edge_endpoint_errors() {
        let r = DagBuilder::new("t")
            .stage("a", StageKind::Map, 0, 0)
            .edge("a", "zzz", EdgeKind::Shuffle, 1)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn error_is_sticky() {
        // After an error, later calls are no-ops and build returns the
        // first failure.
        let r = DagBuilder::new("t")
            .edge("x", "y", EdgeKind::Shuffle, 0)
            .stage("a", StageKind::Map, 0, 0)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn id_of_resolves() {
        let b = DagBuilder::new("t").stage("a", StageKind::Map, 0, 0);
        assert_eq!(b.id_of("a"), Some(StageId(0)));
        assert_eq!(b.id_of("b"), None);
    }
}
