//! Source-level determinism and panic-hazard lint.
//!
//! A lightweight line scanner over the workspace's own `.rs` files — not
//! a parser. It tracks `#[cfg(test)]` modules by brace depth so findings
//! only fire in shipped code, and consults an allowlist (`audit.allow`)
//! for sites that are justified with a reason string.
//!
//! Rules (scopes follow the scheduler/exec layers the determinism
//! guarantees actually cover):
//!
//! | rule      | flags                                             | scope |
//! |-----------|---------------------------------------------------|-------|
//! | `DET01`   | `HashMap`/`HashSet` in code (iteration order)     | core, exec, cluster |
//! | `DET02`   | `partial_cmp(..).unwrap()/expect()` (NaN panic + asymmetry) | whole workspace |
//! | `DET03`   | `HashMap::new()`/`HashSet::new()` (seeded `RandomState`) | sql kernels |
//! | `PANIC01` | `.unwrap()` outside tests/bins                    | core, exec, cluster, timemodel |
//! | `PANIC02` | `.expect(..)` outside tests/bins                  | core, exec, cluster, timemodel |
//! | `TRUNC01` | float `floor/ceil/round/sqrt` cast to `u32/u64/usize` | core, timemodel |
//! | `SLEEP01` | wall-clock `thread::sleep` in shipped code        | exec, storage |
//! | `FSYNC01` | raw file writes in journal/object-commit paths    | exec journal, storage |

use std::fmt;
use std::path::{Path, PathBuf};

/// A rule the scanner can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    /// `HashMap`/`HashSet` in scheduler/exec code: iteration order is
    /// nondeterministic; ordered paths must use `BTreeMap` or sort.
    Det01HashCollection,
    /// `partial_cmp(..).unwrap()`: panics on NaN; use `f64::total_cmp`.
    Det02PartialCmpUnwrap,
    /// `HashMap::new()` / `HashSet::new()` in the SQL kernel paths: the
    /// default `RandomState` is seeded per process, so anything whose
    /// output order (or wire bytes) depends on it breaks the kernels'
    /// bit-identity contract. Kernels must use the crate's deterministic
    /// open-addressing tables (`ditto_sql::hash`) or `BTreeMap`.
    Det03SqlHashConstructor,
    /// `.unwrap()` in non-test, non-bin scheduler/exec code.
    Panic01Unwrap,
    /// `.expect(..)` in non-test, non-bin scheduler/exec code — allowed
    /// only with an allowlist entry explaining the invariant.
    Panic02Expect,
    /// Float rounding function cast straight to an unsigned integer in
    /// time-model math (silent truncation of negative/huge values).
    Trunc01FloatCast,
    /// `thread::sleep` in shipped exec/storage code: every wall-clock
    /// wait must sit behind a bounded attempt cap (an unbounded retry
    /// loop sleeps forever on a permanently lost object). Sanctioned
    /// sites document their cap in `audit.allow`.
    Sleep01UnboundedSleep,
    /// Raw file I/O (`fs::write`, `File::create`, `OpenOptions`,
    /// `.write_all(`) in the write-ahead-journal or object-commit paths.
    /// Durability there must go through the checked `JournalWriter`
    /// (length-prefixed, CRC-framed, torn-tail detectable) or the
    /// checksummed object store — a raw write can leave an undetectable
    /// torn record. Sanctioned sites justify themselves in `audit.allow`.
    Fsync01RawDurableWrite,
}

impl LintRule {
    /// Stable rule code, as used in `audit.allow`.
    pub fn code(&self) -> &'static str {
        match self {
            LintRule::Det01HashCollection => "DET01",
            LintRule::Det02PartialCmpUnwrap => "DET02",
            LintRule::Det03SqlHashConstructor => "DET03",
            LintRule::Panic01Unwrap => "PANIC01",
            LintRule::Panic02Expect => "PANIC02",
            LintRule::Trunc01FloatCast => "TRUNC01",
            LintRule::Sleep01UnboundedSleep => "SLEEP01",
            LintRule::Fsync01RawDurableWrite => "FSYNC01",
        }
    }

    fn all() -> [LintRule; 8] {
        [
            LintRule::Det01HashCollection,
            LintRule::Det02PartialCmpUnwrap,
            LintRule::Det03SqlHashConstructor,
            LintRule::Panic01Unwrap,
            LintRule::Panic02Expect,
            LintRule::Trunc01FloatCast,
            LintRule::Sleep01UnboundedSleep,
            LintRule::Fsync01RawDurableWrite,
        ]
    }

    /// Does this rule apply to the file at `rel` (workspace-relative,
    /// `/`-separated)?
    fn in_scope(&self, rel: &str) -> bool {
        let scheduler_exec = ["crates/core/", "crates/exec/", "crates/cluster/"];
        match self {
            LintRule::Det01HashCollection => scheduler_exec.iter().any(|p| rel.starts_with(p)),
            LintRule::Det02PartialCmpUnwrap => true,
            LintRule::Det03SqlHashConstructor => {
                // Kernel paths only: the lowered query definitions, the
                // retained reference implementations and the data
                // generator are order-insensitive internally and exempt.
                rel.starts_with("crates/sql/")
                    && !rel.starts_with("crates/sql/src/queries/")
                    && !rel.ends_with("/reference.rs")
                    && !rel.ends_with("/datagen.rs")
            }
            LintRule::Panic01Unwrap | LintRule::Panic02Expect => scheduler_exec
                .iter()
                .any(|p| rel.starts_with(p))
                || rel.starts_with("crates/timemodel/"),
            LintRule::Trunc01FloatCast => {
                rel.starts_with("crates/core/") || rel.starts_with("crates/timemodel/")
            }
            LintRule::Sleep01UnboundedSleep => {
                rel.starts_with("crates/exec/") || rel.starts_with("crates/storage/")
            }
            LintRule::Fsync01RawDurableWrite => {
                rel == "crates/exec/src/journal.rs" || rel.starts_with("crates/storage/")
            }
        }
    }

    /// Does `line` (with line comments stripped) trip this rule?
    fn fires_on(&self, line: &str) -> bool {
        match self {
            LintRule::Det01HashCollection => {
                line.contains("HashMap") || line.contains("HashSet")
            }
            LintRule::Det02PartialCmpUnwrap => {
                line.contains("partial_cmp")
                    && (line.contains(".unwrap()") || line.contains(".expect("))
            }
            LintRule::Det03SqlHashConstructor => {
                line.contains("HashMap::new(")
                    || line.contains("HashSet::new(")
                    || line.contains("HashMap::with_capacity(")
                    || line.contains("HashSet::with_capacity(")
            }
            LintRule::Panic01Unwrap => line.contains(".unwrap()") && !line.contains("partial_cmp"),
            LintRule::Panic02Expect => line.contains(".expect(") && !line.contains("partial_cmp"),
            LintRule::Trunc01FloatCast => {
                // `) as uN` — a parenthesized (float) expression cast, not
                // an index cast like `StageId(i as u32)`.
                (line.contains(") as u32") || line.contains(") as u64")
                    || line.contains(") as usize"))
                    && [".floor()", ".ceil()", ".round()", ".sqrt()"]
                        .iter()
                        .any(|f| line.contains(f))
            }
            LintRule::Sleep01UnboundedSleep => {
                line.contains("thread::sleep") || line.contains("sleep(Duration")
            }
            LintRule::Fsync01RawDurableWrite => {
                line.contains("fs::write(")
                    || line.contains("File::create(")
                    || line.contains("OpenOptions::new(")
                    || line.contains(".write_all(")
            }
        }
    }

    /// One-line explanation for the report.
    pub fn why(&self) -> &'static str {
        match self {
            LintRule::Det01HashCollection => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet \
                 or sorted iteration in scheduler/exec paths"
            }
            LintRule::Det02PartialCmpUnwrap => {
                "partial_cmp().unwrap() panics on NaN; use f64::total_cmp"
            }
            LintRule::Det03SqlHashConstructor => {
                "std HashMap/HashSet constructors seed a per-process RandomState; SQL \
                 kernels must stay bit-deterministic — use ditto_sql::hash tables or \
                 BTreeMap/BTreeSet"
            }
            LintRule::Panic01Unwrap => {
                "unwrap() in non-test scheduler/exec code; return a typed error or use a \
                 documented expect with an audit.allow entry"
            }
            LintRule::Panic02Expect => {
                "expect() in non-test scheduler/exec code needs an audit.allow entry stating \
                 the invariant that makes it unreachable"
            }
            LintRule::Trunc01FloatCast => {
                "float->integer `as` cast truncates silently; document the rounding rule in \
                 audit.allow or use a checked conversion"
            }
            LintRule::Sleep01UnboundedSleep => {
                "wall-clock sleep in exec/storage shipped code must sit behind a bounded \
                 attempt cap; state the cap (max_retries / wait ceiling) in audit.allow"
            }
            LintRule::Fsync01RawDurableWrite => {
                "raw file write in a journal/object-commit path; durability must go through \
                 the CRC-framed JournalWriter or the checksummed object store, or justify \
                 the site in audit.allow"
            }
        }
    }
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: LintRule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
    /// `true` if an `audit.allow` entry covers this site.
    pub allowed: bool,
    /// The allowlist reason, when covered.
    pub reason: Option<String>,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.allowed { "allowed" } else { "FINDING" };
        write!(
            f,
            "{mark} {} {}:{}: {}",
            self.rule.code(),
            self.path,
            self.line,
            self.text
        )?;
        if let Some(r) = &self.reason {
            write!(f, "  [{r}]")?;
        }
        Ok(())
    }
}

/// One `audit.allow` entry: `RULE|path-substring|line-substring|reason`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule code (`DET01`, …) or `*` for any rule.
    pub rule: String,
    /// Substring the workspace-relative path must contain.
    pub path: String,
    /// Substring the source line must contain (empty matches any line).
    pub needle: String,
    /// Why the site is acceptable.
    pub reason: String,
    /// Set by the scanner when the entry matched at least one finding.
    pub used: bool,
}

/// Parsed `audit.allow`.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the `RULE|path|substring|reason` format. Lines starting with
    /// `#` and blank lines are ignored. Malformed lines are errors — a
    /// typo in the allowlist must not silently allow nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "audit.allow:{}: expected RULE|path|substring|reason, got {line:?}",
                    i + 1
                ));
            }
            if parts[3].trim().is_empty() {
                return Err(format!("audit.allow:{}: empty reason", i + 1));
            }
            entries.push(AllowEntry {
                rule: parts[0].trim().to_string(),
                path: parts[1].trim().to_string(),
                needle: parts[2].trim().to_string(),
                reason: parts[3].trim().to_string(),
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    fn cover(&mut self, rule: &str, path: &str, text: &str) -> Option<String> {
        for e in &mut self.entries {
            let rule_ok = e.rule == "*" || e.rule == rule;
            if rule_ok && path.contains(&e.path) && (e.needle.is_empty() || text.contains(&e.needle))
            {
                e.used = true;
                return Some(e.reason.clone());
            }
        }
        None
    }

    /// Entries that matched nothing (stale — the site was fixed or moved).
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

/// Scan one file's source text. `rel` is the workspace-relative path used
/// for scoping and allowlist matching.
pub fn lint_source(rel: &str, source: &str, allow: &mut Allowlist) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let rules: Vec<LintRule> = LintRule::all()
        .into_iter()
        .filter(|r| r.in_scope(rel))
        .collect();
    if rules.is_empty() {
        return findings;
    }

    // `#[cfg(test)]` tracking: when the attribute is seen, the next `{`
    // opens a region we skip until its matching `}`. Good enough for the
    // `#[cfg(test)] mod tests { … }` idiom this workspace uses throughout.
    let mut pending_test_attr = false;
    let mut test_depth: Option<usize> = None; // brace depth at region start
    let mut depth: usize = 0;
    let mut in_block_comment = false;

    for (lineno, raw) in source.lines().enumerate() {
        // Strip comments (line-granular: good enough for this tree).
        let mut text = raw.to_string();
        if in_block_comment {
            match text.find("*/") {
                Some(i) => {
                    in_block_comment = false;
                    text.replace_range(..i + 2, "");
                }
                None => continue,
            }
        }
        if let Some(i) = text.find("/*") {
            if !text[i..].contains("*/") {
                in_block_comment = true;
            }
            text.truncate(i);
        }
        if let Some(i) = text.find("//") {
            text.truncate(i);
        }
        let code = text.trim();

        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }

        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        let in_test = test_depth.is_some();

        if !in_test && !code.is_empty() {
            for rule in &rules {
                if rule.fires_on(code) {
                    let reason = allow.cover(rule.code(), rel, code);
                    findings.push(LintFinding {
                        rule: *rule,
                        path: rel.to_string(),
                        line: lineno + 1,
                        text: raw.trim().to_string(),
                        allowed: reason.is_some(),
                        reason,
                    });
                }
            }
        }

        if pending_test_attr && opens > 0 {
            test_depth = test_depth.or(Some(depth));
            pending_test_attr = false;
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if let Some(d) = test_depth {
            if depth <= d && closes > 0 {
                test_depth = None;
            }
        }
    }
    findings
}

/// Should `rel` be scanned at all? Bins, examples, benches, tests and
/// shims are exempt (panicking and ad-hoc maps are fine there).
pub fn scannable(rel: &str) -> bool {
    rel.ends_with(".rs")
        && !rel.starts_with("shims/")
        && !rel.starts_with("target/")
        && !rel.contains("/bin/")
        && !rel.contains("/tests/")
        && !rel.contains("/examples/")
        && !rel.contains("/benches/")
        && !rel.starts_with("src/bin/")
}

/// Walk the workspace at `root` and lint every in-scope `.rs` file.
/// Returns findings sorted by (path, line). I/O errors on individual
/// files are reported as findings on the file itself rather than
/// aborting the scan.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> std::io::Result<Vec<LintFinding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        if !scannable(&rel) {
            continue;
        }
        let source = std::fs::read_to_string(&f)?;
        findings.extend(lint_source(&rel, &source, allow));
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || (dir == root && name == "shims") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The lint result as a JSON document with stable field order:
/// `summary` first (counts), then `findings` and `stale` arrays in
/// discovery order. This is what `ditto-lint --json` prints, so CI and
/// editor integrations can consume findings without scraping the
/// human-readable lines.
pub fn lint_to_json(findings: &[LintFinding], allow: &Allowlist) -> String {
    use crate::report::json_escape;
    use std::fmt::Write as _;
    let violations = findings.iter().filter(|f| !f.allowed).count();
    let stale = allow.stale();
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"findings_total\":{},\"violations\":{},\"allowed\":{},\"allow_entries\":{},\"stale_entries\":{},\"findings\":[",
        findings.len(),
        violations,
        findings.len() - violations,
        allow.entries.len(),
        stale.len()
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"text\":\"{}\",\"allowed\":{}",
            f.rule.code(),
            json_escape(&f.path),
            f.line,
            json_escape(&f.text),
            f.allowed
        );
        if let Some(r) = &f.reason {
            let _ = write!(out, ",\"reason\":\"{}\"", json_escape(r));
        }
        out.push('}');
    }
    out.push_str("],\"stale\":[");
    for (i, e) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"needle\":\"{}\",\"reason\":\"{}\"}}",
            json_escape(&e.rule),
            json_escape(&e.path),
            json_escape(&e.needle),
            json_escape(&e.reason)
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<LintFinding> {
        let mut allow = Allowlist::default();
        lint_source(rel, src, &mut allow)
    }

    #[test]
    fn json_output_round_trips_through_serde_json() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let mut allow = Allowlist::parse(
            "DET02|crates/sql/src/ops/sort.rs|partial_cmp|\"quoted\" reason\nDET01|nowhere|x|stale entry\n",
        )
        .unwrap();
        let findings = lint_source("crates/sql/src/ops/sort.rs", src, &mut allow);
        let json = lint_to_json(&findings, &allow);
        let v: serde_json::Value = serde_json::from_str(&json).expect("lint JSON must parse");
        assert_eq!(v.get("findings_total").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("violations").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(v.get("allowed").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("stale_entries").and_then(|x| x.as_u64()), Some(1));
        let f = &v.get("findings").and_then(|x| x.as_array()).unwrap()[0];
        assert_eq!(f.get("rule").and_then(|x| x.as_str()), Some("DET02"));
        assert_eq!(f.get("allowed").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(
            f.get("reason").and_then(|x| x.as_str()),
            Some("\"quoted\" reason"),
            "escaped quotes must survive the round trip"
        );
        let s = &v.get("stale").and_then(|x| x.as_array()).unwrap()[0];
        assert_eq!(s.get("path").and_then(|x| x.as_str()), Some("nowhere"));
        // Stable field order: summary keys lead the document.
        assert!(json.starts_with("{\"findings_total\":"), "{json}");
    }

    #[test]
    fn flags_partial_cmp_unwrap_everywhere() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let f = run("crates/sql/src/ops/sort.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::Det02PartialCmpUnwrap);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn skips_test_modules() {
        let src = "\
fn shipping() { let x: Option<u32> = None; x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
fn also_shipping() { Some(2).unwrap(); }
";
        let f = run("crates/core/src/x.rs", src);
        let lines: Vec<usize> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 7], "{f:?}");
    }

    #[test]
    fn scope_limits_hash_rule() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(run("crates/sql/src/x.rs", src).len(), 0);
        assert_eq!(run("crates/dag/src/x.rs", src).len(), 0);
    }

    #[test]
    fn det03_flags_hash_constructors_in_sql_kernels() {
        let src = "let mut m: HashMap<i64, Vec<usize>> = HashMap::new();\n";
        let f = run("crates/sql/src/ops/join.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::Det03SqlHashConstructor);
        let set = "let mut seen = HashSet::with_capacity(n);\n";
        assert_eq!(run("crates/sql/src/ops/sort.rs", set).len(), 1);
        // A type annotation or import alone is not a construction site.
        assert!(run("crates/sql/src/table.rs", "use std::collections::HashMap;\n").is_empty());
        // Exempt paths: query definitions, the reference oracle, datagen.
        assert!(run("crates/sql/src/queries/q95.rs", src).is_empty());
        assert!(run("crates/sql/src/reference.rs", src).is_empty());
        assert!(run("crates/sql/src/datagen.rs", src).is_empty());
        // Out of crate: DET01's scope, not DET03's.
        let core = run("crates/core/src/x.rs", src);
        assert!(core.iter().all(|f| f.rule == LintRule::Det01HashCollection));
    }

    #[test]
    fn comments_do_not_fire() {
        let src = "// a HashMap would be wrong here\n/* also .unwrap() */\nlet x = 1;\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn trunc_rule_needs_float_context() {
        let idx = "let s = StageId(i as u32);\n";
        assert!(run("crates/core/src/x.rs", idx).is_empty());
        let fl = "let d = (f.floor() as u32).max(1);\n";
        let f = run("crates/core/src/x.rs", fl);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::Trunc01FloatCast);
    }

    #[test]
    fn sleep_rule_scoped_to_exec_and_storage() {
        let src = "fn wait() {\n    std::thread::sleep(Duration::from_secs_f64(backoff));\n}\n";
        let f = run("crates/storage/src/dataplane.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::Sleep01UnboundedSleep);
        assert_eq!(run("crates/exec/src/runner.rs", src).len(), 1);
        // Out of scope: the bench harness may sleep freely.
        assert!(run("crates/bench/src/adapt.rs", src).is_empty());
        // `use std::thread::sleep; sleep(Duration...)` form still fires.
        let bare = "sleep(Duration::from_millis(5));\n";
        assert_eq!(run("crates/exec/src/runner.rs", bare).len(), 1);
    }

    #[test]
    fn fsync_rule_guards_journal_and_storage_paths() {
        let src = "fn persist(&self) {\n    std::fs::write(&self.path, &self.buf).unwrap();\n}\n";
        let f = run("crates/exec/src/journal.rs", src);
        assert!(
            f.iter().any(|f| f.rule == LintRule::Fsync01RawDurableWrite),
            "{f:?}"
        );
        assert_eq!(
            run("crates/storage/src/object_store.rs", "file.write_all(&frame)?;\n").len(),
            1
        );
        assert_eq!(
            run(
                "crates/storage/src/commit.rs",
                "let f = OpenOptions::new().append(true).open(p)?;\n"
            )
            .len(),
            1
        );
        // Out of scope: the rest of exec, the bench harness, binaries.
        assert!(run("crates/exec/src/runner.rs", "std::fs::write(p, b)?;\n").is_empty());
        assert!(run("crates/bench/src/crash.rs", "std::fs::write(p, b)?;\n").is_empty());
    }

    #[test]
    fn fsync_rule_honors_allowlist_justification() {
        let mut allow = Allowlist::parse(
            "FSYNC01|crates/storage/src/object_store.rs|write_all(&frame)|frame already CRC-framed by JournalWriter::encode; single append\n",
        )
        .unwrap();
        let f = lint_source(
            "crates/storage/src/object_store.rs",
            "file.write_all(&frame)?;\n",
            &mut allow,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
    }

    #[test]
    fn sleep_rule_honors_allowlist_cap_reason() {
        let mut allow = Allowlist::parse(
            "SLEEP01|crates/exec/src/runner.rs|from_secs_f64(backoff)|retry loop exits via max_retries; backoff capped at 5 ms\n",
        )
        .unwrap();
        let src = "std::thread::sleep(Duration::from_secs_f64(backoff));\n";
        let f = lint_source("crates/exec/src/runner.rs", src, &mut allow);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
        assert!(f[0].reason.as_deref().unwrap().contains("max_retries"));
    }

    #[test]
    fn allowlist_covers_and_tracks_staleness() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             PANIC02|crates/core/src/x.rs|inserted above|memo entry written two lines up\n\
             DET01|crates/core/src/gone.rs||file was deleted\n",
        )
        .unwrap();
        let src = "let v = memo.get(k).expect(\"inserted above\");\n";
        let f = lint_source("crates/core/src/x.rs", src, &mut allow);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
        assert_eq!(f[0].reason.as_deref(), Some("memo entry written two lines up"));
        let stale = allow.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/core/src/gone.rs");
    }

    #[test]
    fn malformed_allowlist_is_an_error() {
        assert!(Allowlist::parse("PANIC02|only|three").is_err());
        assert!(Allowlist::parse("PANIC02|a|b|   ").is_err());
    }

    #[test]
    fn bins_tests_examples_exempt() {
        assert!(scannable("crates/core/src/dop.rs"));
        assert!(!scannable("crates/audit/src/bin/ditto-lint.rs"));
        assert!(!scannable("crates/core/tests/props.rs"));
        assert!(!scannable("shims/rand/src/lib.rs"));
        assert!(!scannable("src/bin/ditto-sched.rs"));
        assert!(scannable("src/jobspec.rs"));
    }
}
