//! Flat exporters: JSONL event log and end-of-run summary table.
//!
//! [`to_jsonl`] writes one self-describing JSON object per line
//! (`kind` = `span` / `event` / `counter` / `metric`) — easy to grep,
//! stream, or load into a dataframe without a trace viewer.
//! [`summary_table`] renders the human-readable end-of-run digest:
//! per-span-name durations and every metric series.

use crate::metrics::MetricKind;
use crate::span::{AttrValue, TraceData, Track};
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;

fn track_value(track: Track) -> Value {
    let mut m = Map::new();
    m.insert("group".into(), Value::Number(Number::PosInt(track.group as u64)));
    m.insert("lane".into(), Value::Number(Number::PosInt(track.lane as u64)));
    Value::Object(m)
}

fn attrs_value(attrs: &[(&'static str, AttrValue)]) -> Value {
    let mut m = Map::new();
    for (k, v) in attrs {
        let jv = match v {
            AttrValue::U64(x) => Value::Number(Number::PosInt(*x)),
            AttrValue::F64(x) => Value::Number(Number::Float(*x)),
            AttrValue::Str(s) => Value::String((*s).to_string()),
            AttrValue::Text(s) => Value::String(s.clone()),
        };
        m.insert((*k).to_string(), jv);
    }
    Value::Object(m)
}

fn line(m: Map) -> String {
    Value::Object(m).to_string()
}

/// Serialize a finished trace as JSONL: one object per line, each with a
/// `kind` discriminator. Ends with a trailing newline.
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for s in &data.spans {
        let mut m = Map::new();
        m.insert("kind".into(), Value::String("span".into()));
        m.insert("name".into(), Value::String(s.name.to_string()));
        m.insert("id".into(), Value::Number(Number::PosInt(s.id as u64)));
        m.insert("parent".into(), Value::Number(Number::PosInt(s.parent as u64)));
        m.insert("track".into(), track_value(s.track));
        m.insert("start".into(), Value::Number(Number::Float(s.start)));
        m.insert(
            "end".into(),
            if s.end.is_finite() {
                Value::Number(Number::Float(s.end))
            } else {
                Value::Null
            },
        );
        m.insert("wall_start".into(), Value::Number(Number::Float(s.wall_start)));
        m.insert("attrs".into(), attrs_value(&s.attrs));
        out.push_str(&line(m));
        out.push('\n');
    }
    for e in &data.events {
        let mut m = Map::new();
        m.insert("kind".into(), Value::String("event".into()));
        m.insert("name".into(), Value::String(e.name.to_string()));
        m.insert("track".into(), track_value(e.track));
        m.insert("ts".into(), Value::Number(Number::Float(e.ts)));
        m.insert("wall".into(), Value::Number(Number::Float(e.wall)));
        m.insert("attrs".into(), attrs_value(&e.attrs));
        out.push_str(&line(m));
        out.push('\n');
    }
    for c in &data.samples {
        let mut m = Map::new();
        m.insert("kind".into(), Value::String("counter".into()));
        m.insert("name".into(), Value::String(c.name.to_string()));
        m.insert("series".into(), Value::String(c.series.clone()));
        m.insert("ts".into(), Value::Number(Number::Float(c.ts)));
        m.insert("total".into(), Value::Number(Number::Float(c.total)));
        out.push_str(&line(m));
        out.push('\n');
    }
    for s in &data.metrics {
        let mut m = Map::new();
        m.insert("kind".into(), Value::String("metric".into()));
        m.insert("name".into(), Value::String(s.name.to_string()));
        m.insert("series".into(), Value::String(s.series.clone()));
        m.insert("metric_kind".into(), Value::String(s.kind.as_str().into()));
        m.insert("value".into(), Value::Number(Number::Float(s.value)));
        if s.kind == MetricKind::Histogram {
            m.insert("count".into(), Value::Number(Number::PosInt(s.count)));
            m.insert("p50".into(), Value::Number(Number::Float(s.p50)));
            m.insert("p95".into(), Value::Number(Number::Float(s.p95)));
            m.insert("p99".into(), Value::Number(Number::Float(s.p99)));
            m.insert("max".into(), Value::Number(Number::Float(s.max)));
        }
        out.push_str(&line(m));
        out.push('\n');
    }
    out
}

/// Render the human-readable end-of-run summary: spans grouped by name
/// (count, total/mean/max duration) followed by every metric series.
pub fn summary_table(data: &TraceData) -> String {
    struct Agg {
        count: u64,
        total: f64,
        max: f64,
    }
    let mut by_name: BTreeMap<&'static str, Agg> = BTreeMap::new();
    for s in &data.spans {
        let d = s.duration();
        let agg = by_name.entry(s.name).or_insert(Agg {
            count: 0,
            total: 0.0,
            max: 0.0,
        });
        agg.count += 1;
        agg.total += d;
        agg.max = agg.max.max(d);
    }

    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "span", "count", "total s", "mean s", "max s"
    ));
    for (name, agg) in &by_name {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.4} {:>12.4} {:>12.4}\n",
            name,
            agg.count,
            agg.total,
            agg.total / agg.count as f64,
            agg.max
        ));
    }
    if !data.events.is_empty() {
        let mut ev_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &data.events {
            *ev_counts.entry(e.name).or_insert(0) += 1;
        }
        out.push_str(&format!("{:<28} {:>8}\n", "event", "count"));
        for (name, n) in &ev_counts {
            out.push_str(&format!("{:<28} {:>8}\n", name, n));
        }
    }
    if !data.metrics.is_empty() {
        out.push_str(&format!(
            "{:<28} {:<16} {:<10} {:>14} {:>10} {:>10} {:>10}\n",
            "metric", "series", "kind", "value", "p50", "p95", "p99"
        ));
        for m in &data.metrics {
            if m.kind == MetricKind::Histogram {
                out.push_str(&format!(
                    "{:<28} {:<16} {:<10} {:>14.4} {:>10.4} {:>10.4} {:>10.4}\n",
                    m.name,
                    m.series,
                    m.kind.as_str(),
                    m.value,
                    m.p50,
                    m.p95,
                    m.p99
                ));
            } else {
                out.push_str(&format!(
                    "{:<28} {:<16} {:<10} {:>14.4}\n",
                    m.name,
                    m.series,
                    m.kind.as_str(),
                    m.value
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    fn demo() -> TraceData {
        let rec = Recorder::new();
        rec.span("task", Track::server(0, 1), 0.0, 2.0, vec![("stage", 1u32.into())]);
        rec.span("task", Track::server(0, 2), 0.0, 4.0, vec![]);
        rec.event("fault.crashed", Track::server(0, 1), 1.0, vec![]);
        rec.counter_add("storage.bytes", "redis", 8.0, 0.5);
        rec.observe("task.duration", "all", 2.0);
        rec.finish()
    }

    #[test]
    fn jsonl_lines_parse_and_discriminate() {
        let text = to_jsonl(&demo());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 1 + 1 + 2); // spans + event + sample + 2 metrics
        let mut kinds = Vec::new();
        for l in &lines {
            let v: Value = serde_json::from_str(l).unwrap();
            kinds.push(v["kind"].as_str().unwrap().to_string());
        }
        assert_eq!(kinds.iter().filter(|k| *k == "span").count(), 2);
        assert_eq!(kinds.iter().filter(|k| *k == "event").count(), 1);
        assert_eq!(kinds.iter().filter(|k| *k == "counter").count(), 1);
        assert_eq!(kinds.iter().filter(|k| *k == "metric").count(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["attrs"]["stage"].as_u64(), Some(1));
        assert_eq!(first["track"]["group"].as_u64(), Some(Track::SERVER_BASE as u64));
    }

    #[test]
    fn summary_aggregates_span_names() {
        let table = summary_table(&demo());
        assert!(table.contains("task"));
        assert!(table.contains("fault.crashed"));
        assert!(table.contains("storage.bytes"));
        let task_line = table.lines().find(|l| l.starts_with("task")).unwrap();
        assert!(task_line.contains("2"), "{task_line}"); // count
        assert!(task_line.contains("6.0000"), "{task_line}"); // total
        assert!(task_line.contains("3.0000"), "{task_line}"); // mean
    }
}
