//! Tables: named, typed column collections with partitioning and a codec.

use crate::column::{Column, DataType};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from `(name, dtype)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Self {
        Schema {
            fields: fields
                .iter()
                .map(|&(n, t)| Field {
                    name: n.to_string(),
                    dtype: t,
                })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A columnar table. All columns have identical length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names and types.
    pub schema: Schema,
    /// The column data, aligned with `schema.fields`.
    pub columns: Vec<Column>,
}

impl Table {
    /// Build a table; validates column count and lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        if let Some(first) = columns.first() {
            for (f, c) in schema.fields.iter().zip(&columns) {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} length differs",
                    f.name
                );
                assert_eq!(c.dtype(), f.dtype, "column {} type differs", f.name);
            }
        }
        Table { schema, columns }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| match f.dtype {
                DataType::I64 => Column::I64(Vec::new()),
                DataType::F64 => Column::F64(Vec::new()),
                DataType::Str => Column::Str(Vec::new()),
            })
            .collect();
        Table { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// A column by name, panicking with a useful message when missing.
    pub fn column_req(&self, name: &str) -> &Column {
        self.column(name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema {:?}", self.schema))
    }

    /// Keep only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Table {
        let mut fields = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let i = self
                .schema
                .index_of(n)
                .unwrap_or_else(|| panic!("no column {n:?} to project"));
            fields.push(self.schema.fields[i].clone());
            cols.push(self.columns[i].clone());
        }
        Table::new(Schema { fields }, cols)
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Gather the given rows.
    pub fn take(&self, idx: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
        }
    }

    /// Append another table with an identical schema.
    pub fn extend(&mut self, other: &Table) {
        assert_eq!(self.schema, other.schema, "schema mismatch in extend");
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend(b);
        }
    }

    /// Concatenate tables with identical schemas (empty input → `None`).
    pub fn concat(tables: &[Table]) -> Option<Table> {
        let mut iter = tables.iter();
        let mut out = iter.next()?.clone();
        for t in iter {
            out.extend(t);
        }
        Some(out)
    }

    /// Split into `n` contiguous row chunks of near-equal size (for scan
    /// parallelism). Later chunks may be one row smaller. Each chunk is a
    /// direct per-column range copy — no index vectors.
    pub fn split(&self, n: usize) -> Vec<Table> {
        assert!(n > 0);
        let rows = self.num_rows();
        let base = rows / n;
        let rem = rows % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            out.push(Table {
                schema: self.schema.clone(),
                columns: self.columns.iter().map(|c| c.slice(start, len)).collect(),
            });
            start += len;
        }
        out
    }

    /// The bucket each row lands in under `hash_row(key) % n` — the
    /// shuffle placement function, shared by [`Table::hash_partition`] and
    /// [`Table::encode_partitions`] so both agree byte-for-byte.
    fn bucket_ids(&self, key: &str, n: usize) -> Vec<u32> {
        assert!(n > 0);
        let col = self.column_req(key);
        match col {
            // Hash each distinct string once; map through the codes.
            Column::Str(v) => {
                let (dict, codes) = crate::dict::StrDict::encode_column(v);
                let bucket_of: Vec<u32> = dict
                    .entries()
                    .iter()
                    .map(|s| (crate::hash::fnv1a_bytes(s.as_bytes()) % n as u64) as u32)
                    .collect();
                codes.iter().map(|&c| bucket_of[c as usize]).collect()
            }
            _ => col
                .hash_column()
                .iter()
                .map(|&h| (h % n as u64) as u32)
                .collect(),
        }
    }

    /// Hash-partition rows into `n` buckets by the named key column —
    /// the shuffle partitioner: rows with equal keys land in the same
    /// bucket regardless of which task partitioned them.
    ///
    /// Single pass: hashes are computed once, every bucket column is sized
    /// exactly, and rows scatter directly to their bucket (no index
    /// vectors, no [`Table::take`]).
    pub fn hash_partition(&self, key: &str, n: usize) -> Vec<Table> {
        let ids = self.bucket_ids(key, n);
        let mut counts = vec![0usize; n];
        for &b in &ids {
            counts[b as usize] += 1;
        }
        let mut buckets: Vec<Vec<Column>> = (0..n)
            .map(|_| Vec::with_capacity(self.num_columns()))
            .collect();
        for c in &self.columns {
            match c {
                Column::I64(v) => {
                    let mut outs: Vec<Vec<i64>> =
                        counts.iter().map(|&k| Vec::with_capacity(k)).collect();
                    for (&b, &x) in ids.iter().zip(v) {
                        outs[b as usize].push(x);
                    }
                    for (bucket, o) in buckets.iter_mut().zip(outs) {
                        bucket.push(Column::I64(o));
                    }
                }
                Column::F64(v) => {
                    let mut outs: Vec<Vec<f64>> =
                        counts.iter().map(|&k| Vec::with_capacity(k)).collect();
                    for (&b, &x) in ids.iter().zip(v) {
                        outs[b as usize].push(x);
                    }
                    for (bucket, o) in buckets.iter_mut().zip(outs) {
                        bucket.push(Column::F64(o));
                    }
                }
                Column::Str(v) => {
                    let mut outs: Vec<Vec<String>> =
                        counts.iter().map(|&k| Vec::with_capacity(k)).collect();
                    for (&b, x) in ids.iter().zip(v) {
                        outs[b as usize].push(x.clone());
                    }
                    for (bucket, o) in buckets.iter_mut().zip(outs) {
                        bucket.push(Column::Str(o));
                    }
                }
            }
        }
        buckets
            .into_iter()
            .map(|columns| Table {
                schema: self.schema.clone(),
                columns,
            })
            .collect()
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    // ------------------------------------------------------------------
    // Binary codec: how intermediate tables travel through the data plane.
    // Format: [ncols:u32] then per column: [name_len:u32][name][tag:u8]
    // [nrows:u64][data...].
    //
    //   tag 0  i64    — nrows LE words, written as one bulk byte run
    //   tag 1  f64    — nrows LE bit-patterns, bulk
    //   tag 2  str    — length-prefixed cells (legacy v1; decode-only)
    //   tag 3  str    — dictionary-encoded: [ndict:u32] then ndict
    //                   length-prefixed entries, then nrows u32 LE codes
    //
    // Encoding emits tags 0/1/3; decoding accepts all four, so buffers
    // written by the retained reference encoder still round-trip.
    // ------------------------------------------------------------------

    /// Serialize to the compact binary wire format (v2: bulk numerics,
    /// dictionary-encoded strings — repeated cells ship once).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.byte_size() as usize + 64);
        buf.put_u32_le(self.num_columns() as u32);
        for (f, c) in self.schema.fields.iter().zip(&self.columns) {
            buf.put_u32_le(f.name.len() as u32);
            buf.put_slice(f.name.as_bytes());
            match c {
                Column::I64(v) => {
                    buf.put_u8(0);
                    buf.put_u64_le(v.len() as u64);
                    put_words_le(&mut buf, v.iter().map(|&x| x as u64));
                }
                Column::F64(v) => {
                    buf.put_u8(1);
                    buf.put_u64_le(v.len() as u64);
                    put_words_le(&mut buf, v.iter().map(|x| x.to_bits()));
                }
                Column::Str(v) => {
                    let (dict, codes) = crate::dict::StrDict::encode_column(v);
                    buf.put_u8(3);
                    buf.put_u64_le(v.len() as u64);
                    buf.put_u32_le(dict.len() as u32);
                    for s in dict.entries() {
                        buf.put_u32_le(s.len() as u32);
                        buf.put_slice(s.as_bytes());
                    }
                    put_u32s_le(&mut buf, codes.iter().copied());
                }
            }
        }
        buf.freeze()
    }

    /// Hash-partition by `key` and encode every bucket, without ever
    /// materializing the bucket tables — the zero-copy shuffle path.
    ///
    /// `result[i].data` is byte-identical to
    /// `self.hash_partition(key, n)[i].encode()`: hashes are computed once
    /// per distinct key, numeric cells scatter straight into the wire
    /// buffers, and string buckets get per-bucket sub-dictionaries (in
    /// bucket first-appearance order) remapped from one full-column
    /// dictionary pass — no `String` is cloned anywhere.
    pub fn encode_partitions(&self, key: &str, n: usize) -> Vec<EncodedPartition> {
        assert!(n > 0);
        // Dictionary-encode every string column once, up front. The key
        // column's dictionary doubles as the bucket router, so a string
        // key is hashed once per *distinct* value, not once per row.
        enum Pre<'a> {
            I64(&'a [i64]),
            F64(&'a [f64]),
            Str {
                dict: crate::dict::StrDict<'a>,
                codes: Vec<u32>,
            },
        }
        let pre: Vec<Pre<'_>> = self
            .columns
            .iter()
            .map(|c| match c {
                Column::I64(v) => Pre::I64(v),
                Column::F64(v) => Pre::F64(v),
                Column::Str(v) => {
                    let (dict, codes) = crate::dict::StrDict::encode_column(v);
                    Pre::Str { dict, codes }
                }
            })
            .collect();
        let key_idx = self
            .schema
            .index_of(key)
            .unwrap_or_else(|| panic!("no column {key}"));
        // Must agree with `bucket_ids` bucket-for-bucket (the audit for
        // that is the fused-encode equivalence proptest).
        let ids: Vec<u32> = match &pre[key_idx] {
            Pre::Str { dict, codes } => {
                let bucket_of: Vec<u32> = dict
                    .entries()
                    .iter()
                    .map(|s| (crate::hash::fnv1a_bytes(s.as_bytes()) % n as u64) as u32)
                    .collect();
                codes.iter().map(|&c| bucket_of[c as usize]).collect()
            }
            _ => self.columns[key_idx]
                .hash_column()
                .iter()
                .map(|&h| (h % n as u64) as u32)
                .collect(),
        };
        let mut counts = vec![0usize; n];
        for &b in &ids {
            counts[b as usize] += 1;
        }

        // Scatter each string column's codes into per-bucket arrays, then
        // remap every bucket to its sub-dictionary (global codes in
        // first-appearance order — identical to what encoding the
        // materialized bucket would produce). The stamp array is shared
        // across buckets and columns; generations avoid clearing it.
        struct StrScat {
            /// Sub-dictionary per bucket: global codes in bucket
            /// first-appearance order.
            sub_entries: Vec<Vec<u32>>,
            /// Per-bucket codes, remapped to the sub-dictionary.
            codes: Vec<Vec<u32>>,
            /// Pre-encoding string bytes per bucket.
            logical: Vec<u64>,
        }
        let max_dict = pre
            .iter()
            .map(|p| match p {
                Pre::Str { dict, .. } => dict.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let mut stamp: Vec<u64> = vec![0; max_dict];
        let mut sub_code: Vec<u32> = vec![0; max_dict];
        let mut generation: u64 = 0;
        let strs: Vec<Option<StrScat>> = pre
            .iter()
            .map(|p| {
                let Pre::Str { dict, codes } = p else {
                    return None;
                };
                let mut bcodes: Vec<Vec<u32>> =
                    counts.iter().map(|&c| Vec::with_capacity(c)).collect();
                let mut logical = vec![0u64; n];
                for (&c, &b) in codes.iter().zip(&ids) {
                    bcodes[b as usize].push(c);
                    // &str length lives in the fat pointer — no
                    // string-data dereference here.
                    logical[b as usize] += dict.get(c).len() as u64 + 8;
                }
                let mut subs: Vec<Vec<u32>> = Vec::with_capacity(n);
                for bucket in bcodes.iter_mut() {
                    generation += 1;
                    let mut sub: Vec<u32> = Vec::new();
                    for c in bucket.iter_mut() {
                        let g = *c as usize;
                        if stamp[g] != generation {
                            stamp[g] = generation;
                            sub_code[g] = sub.len() as u32;
                            sub.push(g as u32);
                        }
                        *c = sub_code[g];
                    }
                    subs.push(sub);
                }
                Some(StrScat {
                    sub_entries: subs,
                    codes: bcodes,
                    logical,
                })
            })
            .collect();

        // Lay out each bucket's frame: headers, string dictionaries and
        // codes are written sequentially; word-column payload regions are
        // zero-reserved and their offsets recorded, so the scatter below
        // streams i64/f64 cells straight into the final wire buffers — no
        // intermediate per-bucket word arrays.
        let ncols = self.num_columns();
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(n);
        let mut logicals = vec![0u64; n];
        // Write cursor for word column `ci` in bucket `b`: `ci * n + b`.
        let mut cursors = vec![0usize; ncols * n];
        for b in 0..n {
            let rows = counts[b];
            let mut size = 4usize;
            for (ci, f) in self.schema.fields.iter().enumerate() {
                size += 4 + f.name.len() + 1 + 8;
                size += match (&pre[ci], &strs[ci]) {
                    (Pre::Str { dict, .. }, Some(s)) => {
                        let entries: usize = s.sub_entries[b]
                            .iter()
                            .map(|&c| 4 + dict.get(c).len())
                            .sum();
                        4 + entries + rows * 4
                    }
                    _ => rows * 8,
                };
            }
            let mut buf: Vec<u8> = Vec::with_capacity(size);
            buf.extend_from_slice(&(ncols as u32).to_le_bytes());
            for (ci, f) in self.schema.fields.iter().enumerate() {
                buf.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
                buf.extend_from_slice(f.name.as_bytes());
                match (&pre[ci], &strs[ci]) {
                    (Pre::Str { dict, .. }, Some(s)) => {
                        buf.push(3);
                        buf.extend_from_slice(&(rows as u64).to_le_bytes());
                        buf.extend_from_slice(&(s.sub_entries[b].len() as u32).to_le_bytes());
                        for &c in &s.sub_entries[b] {
                            let e = dict.get(c);
                            buf.extend_from_slice(&(e.len() as u32).to_le_bytes());
                            buf.extend_from_slice(e.as_bytes());
                        }
                        for &c in &s.codes[b] {
                            buf.extend_from_slice(&c.to_le_bytes());
                        }
                        logicals[b] += s.logical[b];
                    }
                    (p, _) => {
                        buf.push(match p {
                            Pre::I64(_) => 0,
                            Pre::F64(_) => 1,
                            Pre::Str { .. } => unreachable!("string handled above"),
                        });
                        buf.extend_from_slice(&(rows as u64).to_le_bytes());
                        cursors[ci * n + b] = buf.len();
                        buf.resize(buf.len() + rows * 8, 0);
                        logicals[b] += rows as u64 * 8;
                    }
                }
            }
            debug_assert_eq!(buf.len(), size, "frame size precompute diverged");
            bufs.push(buf);
        }
        for (ci, p) in pre.iter().enumerate() {
            let mut write = |bits: u64, b: u32| {
                let cur = &mut cursors[ci * n + b as usize];
                bufs[b as usize][*cur..*cur + 8].copy_from_slice(&bits.to_le_bytes());
                *cur += 8;
            };
            match p {
                Pre::I64(v) => {
                    for (&x, &b) in v.iter().zip(&ids) {
                        write(x as u64, b);
                    }
                }
                Pre::F64(v) => {
                    for (&x, &b) in v.iter().zip(&ids) {
                        write(x.to_bits(), b);
                    }
                }
                Pre::Str { .. } => {}
            }
        }
        bufs.into_iter()
            .zip(counts)
            .zip(logicals)
            .map(|((buf, rows), logical_bytes)| EncodedPartition {
                data: Bytes::from(buf),
                rows,
                logical_bytes,
            })
            .collect()
    }

    /// Deserialize from the wire format, validating framing first.
    /// Returns a descriptive error for truncated or corrupt buffers.
    pub fn try_decode(data: Bytes) -> Result<Table, String> {
        // Pre-validate the framing with a non-consuming cursor walk so the
        // panicking fast path below can never be reached on bad input.
        let buf = &data[..];
        let mut pos = 0usize;
        let need = |pos: usize, n: usize, what: &str| -> Result<(), String> {
            if pos + n > buf.len() {
                Err(format!("truncated table buffer while reading {what}"))
            } else {
                Ok(())
            }
        };
        need(pos, 4, "column count")?;
        let ncols = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if ncols > 4096 {
            return Err(format!("implausible column count {ncols}"));
        }
        for _ in 0..ncols {
            need(pos, 4, "name length")?;
            let name_len =
                u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(pos, name_len, "column name")?;
            std::str::from_utf8(&buf[pos..pos + name_len])
                .map_err(|_| "column name is not UTF-8".to_string())?;
            pos += name_len;
            need(pos, 9, "column header")?;
            let tag = buf[pos];
            pos += 1;
            let nrows =
                u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            match tag {
                0 | 1 => {
                    need(pos, nrows.checked_mul(8).ok_or("row count overflow")?, "numeric data")?;
                    pos += nrows * 8;
                }
                2 => {
                    for _ in 0..nrows {
                        need(pos, 4, "string length")?;
                        let len =
                            u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += 4;
                        need(pos, len, "string data")?;
                        std::str::from_utf8(&buf[pos..pos + len])
                            .map_err(|_| "string cell is not UTF-8".to_string())?;
                        pos += len;
                    }
                }
                3 => {
                    need(pos, 4, "dictionary size")?;
                    let ndict =
                        u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    if ndict > nrows {
                        return Err(format!(
                            "dictionary larger than column: {ndict} entries, {nrows} rows"
                        ));
                    }
                    for _ in 0..ndict {
                        need(pos, 4, "dictionary entry length")?;
                        let len =
                            u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += 4;
                        need(pos, len, "dictionary entry")?;
                        std::str::from_utf8(&buf[pos..pos + len])
                            .map_err(|_| "dictionary entry is not UTF-8".to_string())?;
                        pos += len;
                    }
                    need(pos, nrows.checked_mul(4).ok_or("row count overflow")?, "dictionary codes")?;
                    for chunk in buf[pos..pos + nrows * 4].chunks_exact(4) {
                        let code = u32::from_le_bytes(chunk.try_into().unwrap()) as usize;
                        if code >= ndict {
                            return Err(format!(
                                "dictionary code {code} out of range (dictionary has {ndict})"
                            ));
                        }
                    }
                    pos += nrows * 4;
                }
                t => return Err(format!("unknown column tag {t}")),
            }
        }
        if pos != buf.len() {
            return Err(format!("{} trailing bytes after table", buf.len() - pos));
        }
        Ok(Self::decode(data))
    }

    /// Deserialize from the wire format.
    ///
    /// # Panics
    /// Panics on malformed input; the runtime only decodes its own encoded
    /// buffers. Use [`Table::try_decode`] for untrusted data.
    pub fn decode(mut data: Bytes) -> Table {
        let ncols = data.get_u32_le() as usize;
        let mut fields = Vec::with_capacity(ncols);
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name_len = data.get_u32_le() as usize;
            let name = String::from_utf8(data.split_to(name_len).to_vec()).expect("utf8 name");
            let tag = data.get_u8();
            let nrows = data.get_u64_le() as usize;
            let (dtype, col) = match tag {
                0 => {
                    let raw = data.split_to(nrows * 8);
                    let v = raw
                        .chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte word")))
                        .collect();
                    (DataType::I64, Column::I64(v))
                }
                1 => {
                    let raw = data.split_to(nrows * 8);
                    let v = raw
                        .chunks_exact(8)
                        .map(|c| {
                            f64::from_bits(u64::from_le_bytes(
                                c.try_into().expect("8-byte word"),
                            ))
                        })
                        .collect();
                    (DataType::F64, Column::F64(v))
                }
                2 => {
                    let mut v = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        let len = data.get_u32_le() as usize;
                        v.push(String::from_utf8(data.split_to(len).to_vec()).expect("utf8"));
                    }
                    (DataType::Str, Column::Str(v))
                }
                3 => {
                    let ndict = data.get_u32_le() as usize;
                    let mut dict = Vec::with_capacity(ndict);
                    for _ in 0..ndict {
                        let len = data.get_u32_le() as usize;
                        dict.push(
                            String::from_utf8(data.split_to(len).to_vec()).expect("utf8"),
                        );
                    }
                    let raw = data.split_to(nrows * 4);
                    let v = raw
                        .chunks_exact(4)
                        .map(|c| {
                            let code = u32::from_le_bytes(c.try_into().expect("4-byte code"));
                            dict[code as usize].clone()
                        })
                        .collect();
                    (DataType::Str, Column::Str(v))
                }
                t => panic!("unknown column tag {t}"),
            };
            fields.push(Field { name, dtype });
            columns.push(col);
        }
        Table::new(Schema { fields }, columns)
    }
}

/// One shuffle bucket produced by [`Table::encode_partitions`]: the wire
/// bytes plus the accounting the data plane records.
#[derive(Debug, Clone)]
pub struct EncodedPartition {
    /// The encoded bucket, byte-identical to materializing the bucket and
    /// calling [`Table::encode`].
    pub data: Bytes,
    /// Rows in the bucket.
    pub rows: usize,
    /// Decoded (in-memory) size of the bucket per [`Table::byte_size`] —
    /// what the dictionary encoding saved shows up as the gap between this
    /// and `data.len()`.
    pub logical_bytes: u64,
}

/// Write 64-bit LE words as one byte run, staged through a stack buffer so
/// the `BytesMut` reserve/copy machinery runs once per 512 words instead of
/// once per word.
fn put_words_le(buf: &mut BytesMut, words: impl Iterator<Item = u64>) {
    let mut tmp = [0u8; 8 * 512];
    let mut fill = 0usize;
    for w in words {
        tmp[fill..fill + 8].copy_from_slice(&w.to_le_bytes());
        fill += 8;
        if fill == tmp.len() {
            buf.put_slice(&tmp);
            fill = 0;
        }
    }
    buf.put_slice(&tmp[..fill]);
}

/// [`put_words_le`] for 32-bit values (dictionary codes).
fn put_u32s_le(buf: &mut BytesMut, vals: impl Iterator<Item = u32>) {
    let mut tmp = [0u8; 4 * 512];
    let mut fill = 0usize;
    for v in vals {
        tmp[fill..fill + 4].copy_from_slice(&v.to_le_bytes());
        fill += 4;
        if fill == tmp.len() {
            buf.put_slice(&tmp);
            fill = 0;
        }
    }
    buf.put_slice(&tmp[..fill]);
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.fields.iter().map(|x| x.name.as_str()).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for row in 0..self.num_rows().min(20) {
            let vals: Vec<String> = self
                .columns
                .iter()
                .map(|c| match c.value(row) {
                    crate::column::Value::I64(x) => x.to_string(),
                    crate::column::Value::F64(x) => format!("{x:.2}"),
                    crate::column::Value::Str(x) => x,
                })
                .collect();
            writeln!(f, "{}", vals.join(" | "))?;
        }
        if self.num_rows() > 20 {
            writeln!(f, "... ({} rows total)", self.num_rows())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            Schema::new(&[("id", DataType::I64), ("amt", DataType::F64), ("st", DataType::Str)]),
            vec![
                Column::I64(vec![1, 2, 3, 4]),
                Column::F64(vec![10.0, 20.0, 30.0, 40.0]),
                Column::Str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.column("amt").unwrap().as_f64()[1], 20.0);
        assert!(t.column("zzz").is_none());
        assert!(t.byte_size() > 0);
    }

    #[test]
    #[should_panic(expected = "length differs")]
    fn ragged_columns_rejected() {
        Table::new(
            Schema::new(&[("a", DataType::I64), ("b", DataType::I64)]),
            vec![Column::I64(vec![1]), Column::I64(vec![1, 2])],
        );
    }

    #[test]
    #[should_panic(expected = "type differs")]
    fn wrong_type_rejected() {
        Table::new(
            Schema::new(&[("a", DataType::I64)]),
            vec![Column::F64(vec![1.0])],
        );
    }

    #[test]
    fn project_and_filter() {
        let t = sample();
        let p = t.project(&["st", "id"]);
        assert_eq!(p.schema.fields[0].name, "st");
        assert_eq!(p.schema.fields[1].name, "id");
        let f = t.filter(&[true, false, true, false]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column_req("id").as_i64(), &[1, 3]);
    }

    #[test]
    fn split_even() {
        let t = sample();
        let parts = t.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.num_rows()).collect::<Vec<_>>(),
            vec![2, 1, 1]
        );
        let back = Table::concat(&parts).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn hash_partition_consistent() {
        let t = sample();
        let parts = t.hash_partition("st", 3);
        assert_eq!(parts.iter().map(|p| p.num_rows()).sum::<usize>(), 4);
        // Rows with st="a" (ids 1 and 3) land in the same bucket.
        let bucket_of = |id: i64| {
            parts
                .iter()
                .position(|p| p.column_req("id").as_i64().contains(&id))
                .unwrap()
        };
        assert_eq!(bucket_of(1), bucket_of(3));
    }

    #[test]
    fn codec_roundtrip() {
        let t = sample();
        let bytes = t.encode();
        let back = Table::decode(bytes);
        assert_eq!(back, t);
    }

    #[test]
    fn try_decode_accepts_valid_rejects_malformed() {
        let t = sample();
        let good = t.encode();
        assert_eq!(Table::try_decode(good.clone()).unwrap(), t);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..good.len().min(64) {
            let sliced = good.slice(0..cut);
            if cut == good.len() {
                continue;
            }
            assert!(Table::try_decode(sliced).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut extended = good.to_vec();
        extended.push(0xFF);
        assert!(Table::try_decode(Bytes::from(extended)).is_err());
        // Corrupt tag is rejected.
        let mut corrupt = good.to_vec();
        // first column: 4 (ncols) + 4 (len) + 2 ("id") = offset 10 is tag
        corrupt[10] = 9;
        assert!(Table::try_decode(Bytes::from(corrupt)).is_err());
    }

    #[test]
    fn codec_empty_table() {
        let t = Table::empty(Schema::new(&[("x", DataType::Str)]));
        let back = Table::decode(t.encode());
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema, t.schema);
    }

    #[test]
    fn dict_codec_rejects_out_of_range_codes() {
        let t = Table::new(
            Schema::new(&[("s", DataType::Str)]),
            vec![Column::Str(vec!["aa".into(), "bb".into(), "aa".into()])],
        );
        let good = t.encode();
        assert_eq!(Table::try_decode(good.clone()).unwrap(), t);
        // Layout: ncols(4) name_len(4) "s"(1) tag(1) nrows(8) ndict(4)
        // entry "aa"(4+2) entry "bb"(4+2) codes(3*4). Corrupt the last
        // code (bytes -4..) to an out-of-range value.
        let mut corrupt = good.to_vec();
        let n = corrupt.len();
        corrupt[n - 4..].copy_from_slice(&99u32.to_le_bytes());
        let err = Table::try_decode(Bytes::from(corrupt)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // A dictionary claiming more entries than rows is rejected.
        let mut bad_dict = good.to_vec();
        bad_dict[18..22].copy_from_slice(&200u32.to_le_bytes());
        assert!(Table::try_decode(Bytes::from(bad_dict)).is_err());
    }

    #[test]
    fn dict_encoding_shrinks_repetitive_columns() {
        // v1 (reference) buffers still decode — tag 2 is kept — and the
        // v2 dictionary format is smaller on repetitive string columns.
        let names = ["Tennessee", "California", "New York"];
        let states: Vec<String> = (0..100).map(|i| names[i % 3].to_string()).collect();
        let t = Table::new(
            Schema::new(&[("st", DataType::Str)]),
            vec![Column::Str(states)],
        );
        let v1 = crate::reference::encode_reference(&t);
        let v2 = t.encode();
        assert!(v2.len() < v1.len(), "v2 {} >= v1 {}", v2.len(), v1.len());
        assert_eq!(Table::decode(v1), t);
        assert_eq!(Table::decode(v2), t);
    }

    #[test]
    fn encode_partitions_matches_materialized_encode() {
        let t = sample();
        for n in [1, 2, 3, 7] {
            let parts = t.hash_partition("st", n);
            let enc = t.encode_partitions("st", n);
            assert_eq!(enc.len(), n);
            for (p, e) in parts.iter().zip(&enc) {
                assert_eq!(e.data, p.encode(), "n={n}");
                assert_eq!(e.rows, p.num_rows());
                assert_eq!(e.logical_bytes, p.byte_size());
            }
        }
    }

    #[test]
    fn encode_partitions_on_numeric_key_and_empty_table() {
        let t = sample();
        let enc = t.encode_partitions("id", 4);
        let parts = t.hash_partition("id", 4);
        for (p, e) in parts.iter().zip(&enc) {
            assert_eq!(e.data, p.encode());
        }
        let empty = Table::empty(t.schema.clone());
        let enc = empty.encode_partitions("st", 3);
        for (p, e) in empty.hash_partition("st", 3).iter().zip(&enc) {
            assert_eq!(e.data, p.encode());
            assert_eq!(e.rows, 0);
        }
    }

    #[test]
    fn split_slices_match_reference() {
        let t = sample();
        for n in [1, 2, 3, 4, 9] {
            assert_eq!(t.split(n), crate::reference::split_reference(&t, n));
        }
    }

    #[test]
    fn hash_partition_matches_reference() {
        let t = sample();
        for key in ["id", "amt", "st"] {
            for n in [1, 2, 5] {
                assert_eq!(
                    t.hash_partition(key, n),
                    crate::reference::hash_partition_reference(&t, key, n),
                    "key={key} n={n}"
                );
            }
        }
    }

    #[test]
    fn extend_and_concat() {
        let t = sample();
        let mut a = t.clone();
        a.extend(&t);
        assert_eq!(a.num_rows(), 8);
        assert!(Table::concat(&[]).is_none());
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("id | amt | st"));
        assert!(s.contains("30.00"));
    }
}
