//! The pre-incremental joint optimizer, kept verbatim as the equivalence
//! oracle and benchmark baseline.
//!
//! [`joint_optimize_reference`] is Algorithm 3 exactly as first
//! implemented: every candidate edge clones the union-find, rebuilds the
//! full co-location mask, recomputes every stage DoP from scratch and runs
//! a from-scratch placement check, while the greedy order is fully
//! re-derived each round. That is O(rounds × E × (V + E)) and worse — fine
//! for unit-scale DAGs, quadratic-to-cubic pain at hundreds of stages. The
//! incremental rewrite in [`crate::joint`] must produce **bit-identical**
//! schedules; the property tests in `core/tests/joint_equivalence.rs` and
//! the `sched_bench` suite hold it to that.

use crate::dop::compute_dop;
use crate::grouping::{greedy_group_order, sort_edges_by_weight_desc, StageGroups};
use crate::joint::{GroupOrderPolicy, JointOptions, JointStats};
use crate::objective::Objective;
use crate::placement::can_place_with;
use crate::schedule::Schedule;
use ditto_cluster::ResourceManager;
use ditto_dag::{EdgeId, JobDag};
use ditto_obs::{Recorder, SpanId, Track};
use ditto_timemodel::JobTimeModel;

/// The original from-scratch Algorithm 3 (see module docs). Identical
/// output to [`crate::joint_optimize`], at the original cost.
pub fn joint_optimize_reference(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
) -> Schedule {
    joint_optimize_reference_traced(dag, model, rm, objective, opts, &Recorder::disabled())
}

/// [`joint_optimize_reference`] with telemetry (same span/event shape as
/// [`crate::joint_optimize_traced`]).
pub fn joint_optimize_reference_traced(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
    obs: &Recorder,
) -> Schedule {
    joint_optimize_reference_with_stats(dag, model, rm, objective, opts, obs).0
}

/// [`joint_optimize_reference_traced`] also reporting loop statistics
/// (candidate evaluations, rounds, commits) for the scheduler benchmarks.
pub fn joint_optimize_reference_with_stats(
    dag: &JobDag,
    model: &JobTimeModel,
    rm: &ResourceManager,
    objective: Objective,
    opts: &JointOptions,
    obs: &Recorder,
) -> (Schedule, JointStats) {
    let c = rm.total_free();
    let n = dag.num_stages();
    let mut stats = JointStats::default();

    obs.name_track(Track::SCHEDULER_GROUP, "scheduler");
    let run_span = obs.begin(
        "sched.joint",
        Track::scheduler(0),
        obs.wall_now(),
        SpanId::NONE,
        vec![
            ("objective", objective.to_string().into()),
            ("stages", (n as u64).into()),
            ("edges", (dag.edges().len() as u64).into()),
            ("free_slots", (c as u64).into()),
        ],
    );

    let mut groups = StageGroups::singletons(n);
    let mut colocated = groups.colocation_mask(dag);
    let dop_span = obs.begin(
        "sched.dop_ratio",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let mut assignment = compute_dop(dag, model, &colocated, objective, c.max(1));
    obs.end(dop_span, obs.wall_now());
    assert!(
        can_place_with(dag, &assignment.dop, &groups, rm, opts.gather_decomposition, opts.fit_strategy).is_some(),
        "ungrouped baseline configuration must be placeable (C={c}, stages={n})"
    );

    let mut ungrouped: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
    let mut iterations = 0usize;
    while !ungrouped.is_empty() && iterations < opts.max_iterations {
        iterations += 1;
        let round_span = obs.begin(
            "sched.round",
            Track::scheduler(1),
            obs.wall_now(),
            run_span,
            vec![
                ("iteration", (iterations as u64).into()),
                ("ungrouped", (ungrouped.len() as u64).into()),
            ],
        );
        // Re-derive the edge order under the current DoPs and mask, then
        // keep only still-ungrouped edges (ω of grouped edges is 0 anyway).
        let raw_order: Vec<EdgeId> = match opts.order_policy {
            GroupOrderPolicy::Greedy => {
                greedy_group_order(dag, model, &assignment.dop, &colocated, objective)
            }
            GroupOrderPolicy::GlobalDescending => {
                // Descending by the objective's edge weight, ignoring the
                // critical path.
                let w = crate::grouping::grouping_weights(
                    dag,
                    model,
                    &assignment.dop,
                    &colocated,
                    objective,
                );
                let mut v: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
                sort_edges_by_weight_desc(&mut v, &w);
                v
            }
            GroupOrderPolicy::Random(seed) => {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut v: Vec<EdgeId> = dag.edges().iter().map(|e| e.id).collect();
                v.shuffle(&mut rng);
                v
            }
        };
        let order: Vec<EdgeId> = raw_order
            .into_iter()
            .filter(|e| ungrouped.contains(e))
            .collect();

        let mut committed = None;
        for e in order {
            let edge = dag.edge(e);
            stats.candidates += 1;
            // Tentatively group sᵢ and sⱼ (merging their whole groups).
            let mut trial_groups = groups.clone();
            trial_groups.union(edge.src, edge.dst);
            let trial_mask = trial_groups.colocation_mask(dag);
            let trial_assignment = compute_dop(dag, model, &trial_mask, objective, c.max(1));
            let placeable = can_place_with(
                dag,
                &trial_assignment.dop,
                &trial_groups,
                rm,
                opts.gather_decomposition,
                opts.fit_strategy,
            )
            .is_some();
            if obs.is_enabled() {
                obs.event(
                    "sched.merge",
                    Track::scheduler(1),
                    obs.wall_now(),
                    vec![
                        ("edge", (e.index() as u64).into()),
                        ("src", (edge.src.index() as u64).into()),
                        ("dst", (edge.dst.index() as u64).into()),
                        ("src_alpha", model.stage_alpha(dag, edge.src, &trial_mask).into()),
                        ("src_beta", model.stage_beta(dag, edge.src, &trial_mask).into()),
                        ("dst_alpha", model.stage_alpha(dag, edge.dst, &trial_mask).into()),
                        ("dst_beta", model.stage_beta(dag, edge.dst, &trial_mask).into()),
                        ("verdict", if placeable { "accept" } else { "reject" }.into()),
                    ],
                );
            }
            if placeable {
                groups = trial_groups;
                colocated = trial_mask;
                assignment = trial_assignment;
                committed = Some(e);
                break;
            }
            // else: undo (nothing was mutated) and try the next edge.
        }
        obs.end(round_span, obs.wall_now());
        match committed {
            Some(e) => {
                stats.commits += 1;
                ungrouped.retain(|&x| x != e);
                obs.event(
                    "sched.commit",
                    Track::scheduler(0),
                    obs.wall_now(),
                    vec![
                        ("iteration", (iterations as u64).into()),
                        ("edge", (e.index() as u64).into()),
                    ],
                );
            }
            None => break, // no edge in E_u groupable → done
        }
    }
    stats.rounds = iterations;

    let place_span = obs.begin(
        "sched.placement",
        Track::scheduler(1),
        obs.wall_now(),
        run_span,
        vec![],
    );
    let plan = can_place_with(
        dag,
        &assignment.dop,
        &groups,
        rm,
        opts.gather_decomposition,
        opts.fit_strategy,
    )
    .expect("committed configuration was verified placeable");
    obs.end(place_span, obs.wall_now());
    // An edge is effectively colocated only when both endpoints ended on
    // the same server set; group membership is exactly that by
    // construction (groups place wholly on one server, or into aligned
    // gather chunks).
    let schedule = Schedule {
        scheduler: format!("ditto-{objective}"),
        dop: assignment.dop,
        group_of: groups.group_of(n),
        groups: groups.groups(n),
        colocated,
        placement: plan.stage_placement,
    };
    if obs.is_enabled() {
        obs.gauge_set("sched.groups", "", schedule.groups.len() as f64);
        obs.gauge_set("sched.slots", "", schedule.total_slots() as f64);
        obs.gauge_set("sched.iterations", "", iterations as f64);
    }
    obs.end(run_span, obs.wall_now());
    (schedule, stats)
}
