//! Query plans: stage operators bound to a job DAG.
//!
//! A [`QueryPlan`] pairs a `ditto-dag` [`JobDag`] with one [`StageOp`] per
//! stage. The operators are interpretable at two granularities:
//!
//! * [`QueryPlan::execute_reference`] runs the whole plan single-threaded
//!   over a [`Database`] — the correctness oracle for distributed runs;
//! * [`QueryPlan::execute_stage`] runs one stage given its (already
//!   gathered) upstream inputs — what each task of the local runtime in
//!   `ditto-exec` evaluates over its partition.
//!
//! [`QueryPlan::measure_volumes`] executes the plan once and stamps the
//! observed intermediate byte sizes onto the DAG's stages and edges (the
//! role job profiles play for recurring jobs in the paper), and
//! [`QueryPlan::scale_volumes`] inflates those volumes to paper-scale
//! magnitudes for the simulator.

use crate::datagen::Database;
use crate::expr::Pred;
use crate::ops::group_by::AggSpec;
use crate::ops::{group_by, hash_join, sort_limit, SortOrder};
use crate::selvec::SelVec;
use crate::table::Table;
use ditto_dag::{JobDag, StageId};
use std::collections::BTreeMap;

pub use crate::ops::group_by::AggFunc;
pub use crate::ops::join::JoinKind;

/// The operator a stage executes.
#[derive(Debug, Clone)]
pub enum StageOp {
    /// Scan a base table with optional predicate, projecting columns.
    Scan {
        /// Base table name.
        table: String,
        /// Columns to keep.
        projection: Vec<String>,
        /// Row filter applied before projection.
        predicate: Option<Pred>,
    },
    /// Join the outputs of two upstream stages.
    Join {
        /// Upstream stage providing the left (probe) side.
        left: String,
        /// Upstream stage providing the right (build) side.
        right: String,
        /// Left key column.
        left_key: String,
        /// Right key column.
        right_key: String,
        /// Join flavor.
        kind: JoinKind,
    },
    /// Group-by aggregation over one upstream stage.
    GroupBy {
        /// Upstream stage providing the input.
        input: String,
        /// Group keys.
        keys: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Post-aggregation filter.
        having: Option<Pred>,
    },
    /// Filter (and optionally re-project) one upstream stage's output.
    Filter {
        /// Upstream stage providing the input.
        input: String,
        /// Row filter.
        predicate: Pred,
        /// Columns to keep afterwards (`None` keeps all).
        projection: Option<Vec<String>>,
    },
    /// Top-N over one upstream stage (a final reduce).
    SortLimit {
        /// Upstream stage providing the input.
        input: String,
        /// Sort column.
        col: String,
        /// Descending?
        desc: bool,
        /// Row limit.
        limit: usize,
    },
}

/// A stage's operator plus its shuffle key.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// The operator.
    pub op: StageOp,
    /// Column this stage's output is hash-partitioned on when a downstream
    /// edge is a shuffle. `None` for gather/all-gather-only outputs.
    pub output_key: Option<String>,
}

/// A job DAG with executable stage operators.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Query name (`q1`, `q16`, `q94`, `q95`).
    pub name: String,
    /// The DAG (stage/edge byte volumes filled by
    /// [`QueryPlan::measure_volumes`]).
    pub dag: JobDag,
    /// Stage specs, index-aligned with `dag` stage ids.
    pub stages: Vec<StageSpec>,
}

impl QueryPlan {
    /// Execute one stage over its gathered inputs. `inputs` maps *upstream
    /// stage names* to their (concatenated) outputs destined for this task.
    /// Scans read from `db` directly — the caller controls which partition
    /// of the base table this task sees by pre-slicing `db` is not needed:
    /// pass the task's scan slice via `scan_override`.
    pub fn execute_stage(
        &self,
        stage: StageId,
        db: &Database,
        inputs: &BTreeMap<String, Table>,
        scan_override: Option<&Table>,
    ) -> Table {
        let spec = &self.stages[stage.index()];
        match &spec.op {
            StageOp::Scan {
                table,
                projection,
                predicate,
            } => {
                let full;
                let src = match scan_override {
                    Some(t) => t,
                    None => {
                        full = db.table(table).clone();
                        &full
                    }
                };
                // Fused filter+project through a selection vector: the
                // unprojected filtered intermediate is never materialized.
                let sel = match predicate {
                    Some(p) => SelVec::from_mask(&p.eval(src)),
                    None => SelVec::all(src.num_rows()),
                };
                let cols: Vec<&str> = projection.iter().map(|s| s.as_str()).collect();
                src.gather_project(&sel, &cols)
            }
            StageOp::Join {
                left,
                right,
                left_key,
                right_key,
                kind,
            } => {
                let l = input_req(inputs, left, &self.name);
                let r = input_req(inputs, right, &self.name);
                hash_join(l, r, left_key, right_key, *kind)
            }
            StageOp::GroupBy {
                input,
                keys,
                aggs,
                having,
            } => {
                let t = input_req(inputs, input, &self.name);
                let key_refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
                group_by(t, &key_refs, aggs, having.as_ref())
            }
            StageOp::Filter {
                input,
                predicate,
                projection,
            } => {
                let t = input_req(inputs, input, &self.name);
                let sel = SelVec::from_mask(&predicate.eval(t));
                match projection {
                    Some(cols) => {
                        let refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
                        t.gather_project(&sel, &refs)
                    }
                    None => t.gather(&sel),
                }
            }
            StageOp::SortLimit {
                input,
                col,
                desc,
                limit,
            } => {
                let t = input_req(inputs, input, &self.name);
                let order = if *desc { SortOrder::Desc } else { SortOrder::Asc };
                sort_limit(t, col, order, *limit)
            }
        }
    }

    /// Run the full plan single-threaded: the correctness oracle.
    /// Returns the final stage's output (plans here have a single sink).
    pub fn execute_reference(&self, db: &Database) -> Table {
        let order = self.dag.topo_order().expect("plan DAG is valid");
        let mut outputs: BTreeMap<StageId, Table> = BTreeMap::new();
        for s in order {
            let inputs: BTreeMap<String, Table> = self
                .dag
                .parents_of(s)
                .map(|p| (self.dag.stage(p).name.clone(), outputs[&p].clone()))
                .collect();
            let out = self.execute_stage(s, db, &inputs, None);
            outputs.insert(s, out);
        }
        let sink = self.dag.final_stages()[0];
        outputs.remove(&sink).expect("sink executed")
    }

    /// Execute the plan once and stamp the observed byte volumes onto the
    /// DAG (stage `input_bytes`/`output_bytes` and edge `bytes`). This is
    /// the "recurring job profile" stand-in: schedulers and simulators read
    /// these volumes.
    pub fn measure_volumes(&mut self, db: &Database) {
        let order = self.dag.topo_order().expect("plan DAG is valid");
        let mut outputs: BTreeMap<StageId, Table> = BTreeMap::new();
        for s in order {
            let inputs: BTreeMap<String, Table> = self
                .dag
                .parents_of(s)
                .map(|p| (self.dag.stage(p).name.clone(), outputs[&p].clone()))
                .collect();
            let out = self.execute_stage(s, db, &inputs, None);
            // External input: base table bytes for scans.
            if let StageOp::Scan { table, .. } = &self.stages[s.index()].op {
                self.dag.stage_mut(s).input_bytes = db.table(table).byte_size();
            }
            self.dag.stage_mut(s).output_bytes = out.byte_size();
            outputs.insert(s, out);
        }
        // Edge volume = producing stage's output (each consumer reads it).
        let edges: Vec<(ditto_dag::EdgeId, StageId)> =
            self.dag.edges().iter().map(|e| (e.id, e.src)).collect();
        for (e, src) in edges {
            self.dag.edge_mut(e).bytes = outputs[&src].byte_size().max(1);
        }
    }

    /// Merge the partial outputs the final stage's parallel tasks produced
    /// into the job answer:
    ///
    /// * a global aggregate (group-by with no keys) sums columnwise —
    ///   additive because the upstream shuffle partitions by the distinct
    ///   key, so even count-distinct partials are disjoint;
    /// * a sort-limit re-applies itself over the concatenation;
    /// * anything else concatenates.
    pub fn combine_final(&self, partials: &[Table]) -> Table {
        let sink = self.dag.final_stages()[0];
        let concat = Table::concat(partials).unwrap_or_default();
        match &self.stages[sink.index()].op {
            StageOp::GroupBy { keys, .. } if keys.is_empty() => {
                if concat.num_rows() == 0 {
                    return concat;
                }
                let cols = concat
                    .columns
                    .iter()
                    .map(|c| match c {
                        crate::column::Column::I64(v) => {
                            crate::column::Column::I64(vec![v.iter().sum()])
                        }
                        crate::column::Column::F64(v) => {
                            crate::column::Column::F64(vec![v.iter().sum()])
                        }
                        crate::column::Column::Str(_) => {
                            panic!("global aggregate output cannot contain strings")
                        }
                    })
                    .collect();
                Table::new(concat.schema.clone(), cols)
            }
            StageOp::SortLimit {
                col, desc, limit, ..
            } => {
                let order = if *desc { SortOrder::Desc } else { SortOrder::Asc };
                sort_limit(&concat, col, order, *limit)
            }
            _ => concat,
        }
    }

    /// Annotate every gather edge as pipelined (§4.5): gather is
    /// one-to-one, so the consumer can stream the producer's output as it
    /// is emitted. Shuffle and all-gather edges need the full partition
    /// set before consumption and stay un-pipelined.
    pub fn annotate_gather_pipelining(&mut self) {
        let gathers: Vec<ditto_dag::EdgeId> = self
            .dag
            .edges()
            .iter()
            .filter(|e| e.kind == ditto_dag::EdgeKind::Gather)
            .map(|e| e.id)
            .collect();
        for e in gathers {
            self.dag.set_pipelined(e, true);
        }
    }

    /// Multiply every byte volume by `factor` — bridges laptop-scale data
    /// to the paper-scale magnitudes the simulator schedules for.
    pub fn scale_volumes(&mut self, factor: f64) {
        assert!(factor > 0.0);
        for i in 0..self.dag.num_stages() {
            let s = self.dag.stage_mut(StageId(i as u32));
            s.input_bytes = (s.input_bytes as f64 * factor) as u64;
            s.output_bytes = (s.output_bytes as f64 * factor) as u64;
        }
        for i in 0..self.dag.num_edges() {
            let e = self.dag.edge_mut(ditto_dag::EdgeId(i as u32));
            e.bytes = ((e.bytes as f64 * factor) as u64).max(1);
        }
    }
}

fn input_req<'a>(inputs: &'a BTreeMap<String, Table>, name: &str, query: &str) -> &'a Table {
    inputs
        .get(name)
        .unwrap_or_else(|| panic!("{query}: missing input from stage {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;
    use crate::expr::Pred;
    use ditto_dag::{DagBuilder, EdgeKind, StageKind};

    /// A tiny two-stage plan: scan store filtered to TN, count rows.
    fn mini_plan() -> QueryPlan {
        let dag = DagBuilder::new("mini")
            .stage("scan", StageKind::Map, 0, 0)
            .stage("agg", StageKind::Reduce, 0, 0)
            .edge("scan", "agg", EdgeKind::Gather, 0)
            .build()
            .unwrap();
        QueryPlan {
            name: "mini".into(),
            dag,
            stages: vec![
                StageSpec {
                    op: StageOp::Scan {
                        table: "store".into(),
                        projection: vec!["s_store_sk".into(), "s_state".into()],
                        predicate: Some(Pred::eq_str("s_state", "TN")),
                    },
                    output_key: None,
                },
                StageSpec {
                    op: StageOp::GroupBy {
                        input: "scan".into(),
                        keys: vec![],
                        aggs: vec![AggSpec::count("n")],
                        having: None,
                    },
                    output_key: None,
                },
            ],
        }
    }

    #[test]
    fn reference_execution() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let out = mini_plan().execute_reference(&db);
        assert_eq!(out.num_rows(), 1);
        let n = out.column_req("n").as_i64()[0];
        let expect = db
            .table("store")
            .column_req("s_state")
            .as_str()
            .iter()
            .filter(|s| s.as_str() == "TN")
            .count() as i64;
        assert_eq!(n, expect);
        assert!(n > 0);
    }

    #[test]
    fn stage_with_scan_override() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let plan = mini_plan();
        let store = db.table("store");
        let parts = store.split(4);
        // Running the scan over each slice and concatenating equals the
        // full-table scan: the runtime's task decomposition is lossless.
        let full = plan.execute_stage(StageId(0), &db, &BTreeMap::new(), None);
        let by_parts: Vec<Table> = parts
            .iter()
            .map(|p| plan.execute_stage(StageId(0), &db, &BTreeMap::new(), Some(p)))
            .collect();
        let merged = Table::concat(&by_parts).unwrap();
        assert_eq!(merged.num_rows(), full.num_rows());
    }

    #[test]
    fn measure_volumes_stamps_dag() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let mut plan = mini_plan();
        plan.measure_volumes(&db);
        let scan = &plan.dag.stages()[0];
        assert!(scan.input_bytes > 0, "scan reads the base table");
        assert!(scan.output_bytes > 0);
        assert!(plan.dag.edges()[0].bytes > 0);
        assert!(scan.output_bytes < scan.input_bytes, "TN filter is selective");
    }

    #[test]
    fn scale_volumes_multiplies() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let mut plan = mini_plan();
        plan.measure_volumes(&db);
        let before = plan.dag.edges()[0].bytes;
        plan.scale_volumes(100.0);
        assert_eq!(plan.dag.edges()[0].bytes, before * 100);
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_input_panics() {
        let db = Database::generate(ScaleConfig::with_sf(0.05));
        let plan = mini_plan();
        plan.execute_stage(StageId(1), &db, &BTreeMap::new(), None);
    }
}
