//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p ditto-bench --bin figures -- all
//! cargo run --release -p ditto-bench --bin figures -- fig8a fig12 table1
//! cargo run --release -p ditto-bench --bin figures -- --json fig8a
//! cargo run --release -p ditto-bench --bin figures -- faults --trace-out trace.json
//! cargo run --release -p ditto-bench --bin figures -- sched        # writes BENCH_sched.json
//! cargo run --release -p ditto-bench --bin figures -- sqlbench     # writes BENCH_sql.json
//! cargo run --release -p ditto-bench --bin figures -- regress      # gate vs BENCH_HISTORY.jsonl
//! cargo run --release -p ditto-bench --bin figures -- race         # hb race certify + model check
//! cargo run --release -p ditto-bench --bin figures -- crash        # crash-point certification sweep
//! ```
//!
//! `sched` (and its CI subset `sched-smoke`) is not part of `all`: the
//! full sweep times the from-scratch reference optimizer up to 1024
//! stages, which is exactly the slow path the incremental rewrite
//! retired.
//!
//! `--trace-out <path>` writes a Chrome trace_event file (load in
//! <https://ui.perfetto.dev>) of the target's telemetry: scheduler spans
//! for `sched` and `audit`, the adaptive 2×-drift exemplar (plus its
//! frozen-vs-adaptive diff and predictor scorecard) for `adapt`, and the
//! fixed-seed traced fault experiment otherwise.
//!
//! Every `sched|sqlbench|adapt|faults|telemetry` run appends a config-fingerprinted
//! record to `BENCH_HISTORY.jsonl` (`DITTO_HISTORY_PATH` overrides);
//! `regress` replays the deterministic experiments (`faults`,
//! `adapt-smoke`, `sqlbench-smoke`, `crash-smoke`) against that history with noise-aware thresholds and
//! exits nonzero on regression (`--record-only` seeds history without
//! judging — CI's first runs).

use ditto_bench::{render_rows, write_json, HistoryRecord, RegressOptions};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--trace-out needs a path argument");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    };
    let json = args.iter().any(|a| a == "--json");
    let record_only = args.iter().any(|a| a == "--record-only");
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let all = [
        "fig1", "fig2", "fig4", "fig5", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1", "table2", "ablations",
        "multi", "deadline", "faults", "telemetry", "audit", "export",
    ];
    let targets: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        all.to_vec()
    } else {
        wanted
    };

    // Targets that consume --trace-out themselves; don't overwrite their
    // file with the fault exemplar afterwards.
    let mut trace_consumed = false;

    for t in targets {
        println!("==================== {t} ====================");
        match t {
            "fig1" => emit(&ditto_bench::fig1(), json),
            "fig2" => emit(&ditto_bench::fig2(), json),
            "fig4" => emit(&ditto_bench::fig4(), json),
            "fig5" => emit(&ditto_bench::fig5(), json),
            "fig8a" => emit(&ditto_bench::fig8a(), json),
            "fig8b" => emit(&ditto_bench::fig8b(), json),
            "fig8c" => emit(&ditto_bench::fig8c(), json),
            "fig9a" => emit(&ditto_bench::fig9a(), json),
            "fig9b" => emit(&ditto_bench::fig9b(), json),
            "fig9c" => emit(&ditto_bench::fig9c(), json),
            "fig10" => {
                let (jct, cost) = ditto_bench::fig10();
                println!("--- JCT ---");
                emit(&jct, json);
                println!("--- cost ---");
                emit(&cost, json);
            }
            "fig11" => emit(&ditto_bench::fig11(), json),
            "fig12" => {
                let (jct, cost) = ditto_bench::fig12();
                println!("--- JCT ---");
                emit(&jct, json);
                println!("--- cost ---");
                emit(&cost, json);
            }
            "fig13" => {
                // The Q95 DAG structure is data, not a measurement.
                let plan = ditto_sql::queries::Query::Q95.plan();
                println!("{}", plan.dag.describe());
            }
            "fig14" => emit(&ditto_bench::fig14(), json),
            "fig15" => {
                let out = ditto_bench::fig15();
                println!(
                    "fixed JCT = {:.1}s (dop {:?})",
                    out.fixed_jct, out.fixed_dop
                );
                println!("{}", out.fixed_gantt);
                println!(
                    "elastic JCT = {:.1}s (dop {:?})",
                    out.elastic_jct, out.elastic_dop
                );
                println!("{}", out.elastic_gantt);
            }
            "table1" => emit(&ditto_bench::table1(9), json),
            "table2" => emit(&ditto_bench::table2(), json),
            "ablations" => emit(&ditto_bench::all_ablations(), json),
            "multi" => emit(&ditto_bench::multi_job(), json),
            "deadline" => emit(&ditto_bench::deadline_sweep(), json),
            "faults" => {
                let rows = ditto_bench::fault_sweep();
                emit(&rows, json);
                record_history(HistoryRecord::now(
                    "faults",
                    &faults_config(),
                    faults_metrics(&rows),
                ));
            }
            // Scheduler throughput: incremental joint_optimize vs the
            // from-scratch reference. `sched` runs the full 16→1024-stage
            // sweep; `sched-smoke` the CI subset (16/64/256). Both write
            // BENCH_sched.json to the cwd; with `--trace-out` the
            // bench.sched spans land in the Chrome trace.
            "sched" | "sched-smoke" => {
                let obs = if trace_out.is_some() {
                    ditto_obs::Recorder::new()
                } else {
                    ditto_obs::Recorder::disabled()
                };
                let sizes = if t == "sched" {
                    ditto_bench::sched_bench::SCHED_BENCH_SIZES
                } else {
                    ditto_bench::sched_bench::SCHED_SMOKE_SIZES
                };
                let rows = ditto_bench::sched_bench_sizes(sizes, &obs);
                emit(&rows, json);
                std::fs::write("BENCH_sched.json", write_json(&rows)).expect("write BENCH_sched.json");
                println!("wrote BENCH_sched.json ({} rows)", rows.len());
                record_history(HistoryRecord::now(
                    t,
                    &format!("sizes={sizes:?}"),
                    sched_metrics(&rows),
                ));
                if let Some(path) = &trace_out {
                    write_trace(path, &obs.finish(), "bench.sched scheduler spans");
                    trace_consumed = true;
                }
            }
            // SQL data-plane benchmark: vectorized columnar kernels vs
            // the retained row-at-a-time reference, plus the five query
            // plans end to end through the LocalRuntime. `sqlbench` runs
            // the 1M-row micros + sf-0.5 e2e tier; `sqlbench-smoke` the
            // CI subset. Both write BENCH_sql.json; the smoke history
            // record carries only the deterministic byte metrics so the
            // regress gate compares exact values.
            "sqlbench" | "sqlbench-smoke" => {
                let rows = if t == "sqlbench" {
                    ditto_bench::sql_bench()
                } else {
                    ditto_bench::sql_bench_smoke()
                };
                emit(&rows, json);
                std::fs::write("BENCH_sql.json", write_json(&rows)).expect("write BENCH_sql.json");
                println!("wrote BENCH_sql.json ({} rows)", rows.len());
                record_history(HistoryRecord::now(
                    t,
                    &sql_config(t),
                    sql_metrics(&rows, t == "sqlbench"),
                ));
            }
            // Adaptive-execution sweep: drift × loss × recovery policy,
            // frozen vs adaptive engine. `adapt` runs the full grid;
            // `adapt-smoke` the CI extremes. Both write BENCH_adapt.json
            // (deterministic: same seed → byte-identical artifact).
            "adapt" | "adapt-smoke" => {
                let rows = if t == "adapt" {
                    ditto_bench::adapt_sweep()
                } else {
                    ditto_bench::adapt_sweep_smoke()
                };
                emit(&rows, json);
                std::fs::write("BENCH_adapt.json", write_json(&rows)).expect("write BENCH_adapt.json");
                println!("wrote BENCH_adapt.json ({} rows)", rows.len());
                record_history(HistoryRecord::now(t, &adapt_config(t), adapt_metrics(&rows)));
                if rows.iter().any(|r| !r.audit_clean) {
                    eprintln!("adaptive sweep: a replan failed its feasibility certificate");
                    std::process::exit(1);
                }
                // The cross-run observability quick-start: trace the
                // fixed-seed frozen-vs-adaptive pair under 2× drift,
                // write the adaptive run's trace, and print the diff
                // (who moved the JCT) + the predictor scorecard.
                if let Some(path) = &trace_out {
                    let (frozen, adaptive) = ditto_bench::traced_adapt_pair();
                    write_trace(path, &adaptive, "adaptive 2x-drift exemplar");
                    let diff = ditto_obs::diff_traces(&frozen, &adaptive);
                    println!("{}", diff.render());
                    println!("{}", ditto_obs::PredictorScorecard::from_trace(&adaptive).render());
                    trace_consumed = true;
                }
            }
            // Crash-point certification sweep: kill the coordinator at
            // every journal record index (smoke: a strided subset) of
            // two fixed-seed scenarios and recover from the write-ahead
            // journal. `crash` exercises every index; `crash-smoke` the
            // CI stride. Both write BENCH_crash.json and the recovered
            // adaptive exemplar's journal as JOURNAL_crash.bin; exits
            // nonzero if any crash point diverged or failed
            // certification. With `--trace-out` the recovered run's
            // trace (deterministic virtual scheduler clock) is written.
            "crash" | "crash-smoke" => {
                let rows = if t == "crash" {
                    ditto_bench::crash_sweep()
                } else {
                    ditto_bench::crash_sweep_smoke()
                };
                emit(&rows, json);
                std::fs::write("BENCH_crash.json", write_json(&rows)).expect("write BENCH_crash.json");
                println!("wrote BENCH_crash.json ({} rows)", rows.len());
                let (trace, journal) = ditto_bench::traced_crash_recovery();
                std::fs::write("JOURNAL_crash.bin", &journal).expect("write JOURNAL_crash.bin");
                println!(
                    "wrote JOURNAL_crash.bin ({} bytes) — certify with `ditto-audit journal`",
                    journal.len()
                );
                record_history(HistoryRecord::now(t, &crash_config(), crash_metrics(&rows)));
                if let Some(path) = &trace_out {
                    write_trace(path, &trace, "recovered-run crash exemplar");
                    trace_consumed = true;
                }
                if rows.iter().any(|r| !r.bit_identical || !r.certified_clean) {
                    eprintln!("crash sweep: a crash point diverged or failed certification");
                    std::process::exit(1);
                }
            }
            "telemetry" => {
                let rows = ditto_bench::telemetry_overhead();
                emit(&rows, json);
                record_history(HistoryRecord::now(
                    "telemetry",
                    "exemplar-q95-s3",
                    telemetry_metrics(&rows),
                ));
            }
            // Certificate sweep: audit every scheduler's output on 32
            // seeded random DAGs × both objectives. Exits nonzero if any
            // schedule fails its certificate, so CI can gate on it. With
            // `--trace-out`, the joint optimizer's decision spans for the
            // whole sweep land in the Chrome trace.
            "audit" => {
                let obs = if trace_out.is_some() {
                    ditto_obs::Recorder::new()
                } else {
                    ditto_obs::Recorder::disabled()
                };
                let rows = ditto_bench::audit_sweep_traced(ditto_bench::AUDIT_SWEEP_SEEDS, &obs);
                emit(&rows, json);
                let errors: usize = rows.iter().map(|r| r.errors).sum();
                println!(
                    "audit sweep: {} schedules certified, {} error findings",
                    rows.len(),
                    errors
                );
                if let Some(path) = &trace_out {
                    write_trace(path, &obs.finish(), "audit sweep scheduler spans");
                    trace_consumed = true;
                }
                if !ditto_bench::sweep_is_clean(&rows) {
                    std::process::exit(1);
                }
            }
            // Race-freedom gate: certify the fixed-seed traced scenarios
            // through the happens-before checker (real slot capacities),
            // then model-check tie-break invariance on seeded random
            // DAGs. `race` runs the full 16-DAG bar, `race-smoke` the CI
            // subset. Exits nonzero on any finding or divergence.
            "race" | "race-smoke" => {
                let rows = ditto_bench::race_certify();
                emit(&rows, json);
                let dirty = rows.iter().filter(|r| !r.clean).count();
                let dags = if t == "race" { 16 } else { 4 };
                let explored = ditto_bench::race_explore(dags);
                emit(&explored, json);
                let diverged = explored.iter().filter(|r| r.divergent).count();
                println!(
                    "race: {} traces certified ({} with errors), {} DAGs model-checked ({} divergent)",
                    rows.len(),
                    dirty,
                    explored.len(),
                    diverged
                );
                if dirty > 0 || diverged > 0 {
                    std::process::exit(1);
                }
            }
            // Regression gate: replay the deterministic experiments and
            // compare against BENCH_HISTORY.jsonl. `--record-only` seeds
            // history without judging. Exits 1 on any regression.
            "regress" => {
                let opts = RegressOptions::default();
                let path = ditto_bench::history_path();
                let history = ditto_bench::load_history(&path);
                println!(
                    "regress: {} history records in {}",
                    history.len(),
                    path.display()
                );
                let frows = ditto_bench::fault_sweep();
                let arows = ditto_bench::adapt_sweep_smoke();
                let srows = ditto_bench::sql_bench_smoke();
                let crows = ditto_bench::crash_sweep_smoke();
                let records = [
                    HistoryRecord::now("faults", &faults_config(), faults_metrics(&frows)),
                    HistoryRecord::now(
                        "adapt-smoke",
                        &adapt_config("adapt-smoke"),
                        adapt_metrics(&arows),
                    ),
                    HistoryRecord::now(
                        "sqlbench-smoke",
                        &sql_config("sqlbench-smoke"),
                        sql_metrics(&srows, false),
                    ),
                    HistoryRecord::now("crash-smoke", &crash_config(), crash_metrics(&crows)),
                ];
                let mut failed = false;
                for rec in records {
                    if record_only {
                        record_history(rec);
                        continue;
                    }
                    let report = ditto_bench::check_regression(&history, &rec, &opts);
                    print!("{}", report.render());
                    if report.regressed() {
                        failed = true;
                    } else {
                        // A passing run extends the history baseline.
                        record_history(rec);
                    }
                }
                if failed {
                    eprintln!("regress: performance regression detected (see table above)");
                    std::process::exit(1);
                }
                println!(
                    "regress: {}",
                    if record_only { "recorded baselines" } else { "clean" }
                );
            }
            other => eprintln!(
                "unknown target {other:?}; known: {all:?} (+ \"sched\", \"sched-smoke\", \"sqlbench\", \"sqlbench-smoke\", \"adapt\", \"adapt-smoke\", \"crash\", \"crash-smoke\", \"race\", \"race-smoke\", \"regress\" — not in `all`)"
            ),
        }
    }

    if let Some(path) = trace_out.filter(|_| !trace_consumed) {
        println!("==================== trace-out ====================");
        let run = ditto_bench::traced_fault_run();
        write_trace(&path, &run.data, "fixed-seed traced fault experiment");
        println!("{}", ditto_obs::summary_table(&run.data));
        println!("{}", run.critical_path.render());
        println!("{}", ditto_obs::PredictorScorecard::from_trace(&run.data).render());
    }
}

fn emit<T: serde::Serialize>(rows: &[T], json: bool) {
    if json {
        println!("{}", write_json(rows));
    } else {
        print!("{}", render_rows(rows));
    }
}

/// Write a finished trace as a Chrome trace_event file — the one place
/// every `--trace-out` path goes through.
fn write_trace(path: &str, data: &ditto_obs::TraceData, label: &str) {
    let chrome = ditto_obs::to_chrome_trace(data);
    std::fs::write(path, &chrome).expect("write trace file");
    println!(
        "wrote {path} ({} bytes, {} spans, {} events) [{label}] — load in https://ui.perfetto.dev",
        chrome.len(),
        data.spans.len(),
        data.events.len(),
    );
}

/// Append one record to the bench history, reporting rather than dying
/// on IO trouble (history is telemetry, not a gate on the experiment).
fn record_history(rec: HistoryRecord) {
    let path = ditto_bench::history_path();
    match ditto_bench::append_history(&path, &rec) {
        Ok(()) => println!(
            "history: appended `{}` ({} metrics) to {}",
            rec.experiment,
            rec.metrics.len(),
            path.display()
        ),
        Err(e) => eprintln!("history: append to {} failed: {e}", path.display()),
    }
}

fn faults_config() -> String {
    format!(
        "rates={:?} schedulers=[ditto,nimble] policies=[retry,retry+spec]",
        ditto_bench::FAULT_SWEEP_RATES
    )
}

fn faults_metrics(rows: &[ditto_bench::FaultSweepRow]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| {
            (
                format!(
                    "faults_{}_{}_r{:.2}_jct_s",
                    r.scheduler, r.policy, r.fault_rate
                ),
                r.jct_seconds,
            )
        })
        .collect()
}

fn adapt_config(t: &str) -> String {
    if t == "adapt" {
        format!(
            "drifts={:?} losses={:?}",
            ditto_bench::adapt::ADAPT_DRIFTS,
            ditto_bench::adapt::ADAPT_LOSSES
        )
    } else {
        format!(
            "drifts={:?} losses={:?}",
            ditto_bench::adapt::ADAPT_SMOKE_DRIFTS,
            ditto_bench::adapt::ADAPT_SMOKE_LOSSES
        )
    }
}

fn adapt_metrics(rows: &[ditto_bench::AdaptSweepRow]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| {
            (
                format!(
                    "adapt_d{:.1}_l{:.2}_{}_{}_jct_s",
                    r.drift, r.loss_rate, r.recovery, r.engine
                ),
                r.jct_seconds,
            )
        })
        .collect()
}

fn crash_config() -> String {
    format!(
        "seed={} slots={:?} scenarios=[frozen-ladder,adaptive-drift2x]",
        ditto_bench::crash::CRASH_SEED,
        ditto_bench::crash::CRASH_SLOTS,
    )
}

/// JCT is asserted bit-identical to the crash-free run, so it doubles as
/// the correctness fingerprint; resim counts are the recovery-overhead
/// metric the regress gate holds.
fn crash_metrics(rows: &[ditto_bench::CrashSweepRow]) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for r in rows {
        m.push((format!("crash_{}_jct_s", r.scenario), r.jct_seconds));
        m.push((
            format!("crash_{}_mean_resim_stages", r.scenario),
            r.mean_resim_stages,
        ));
    }
    m
}

fn sql_config(t: &str) -> String {
    use ditto_bench::sql_bench::{SQL_BENCH_ROWS, SQL_BENCH_SF, SQL_SMOKE_ROWS, SQL_SMOKE_SF};
    if t == "sqlbench" {
        format!("micro_rows={SQL_BENCH_ROWS} sf={SQL_BENCH_SF}")
    } else {
        format!("micro_rows={SQL_SMOKE_ROWS} sf={SQL_SMOKE_SF}")
    }
}

/// Byte metrics are deterministic (placement + codec), so they always go
/// in; wall metrics are only worth tracking on the full release sweep.
fn sql_metrics(rows: &[ditto_bench::SqlBenchRow], include_wall: bool) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for r in rows {
        if r.wire_bytes > 0 {
            m.push((format!("sql_{}_wire_bytes", r.op), r.wire_bytes as f64));
            m.push((
                format!("sql_{}_logical_bytes", r.op),
                r.logical_bytes as f64,
            ));
        }
        if include_wall {
            m.push((format!("sql_{}_vectorized_ms", r.op), r.vectorized_ms));
        }
    }
    m
}

fn sched_metrics(rows: &[ditto_bench::SchedBenchRow]) -> Vec<(String, f64)> {
    rows.iter()
        .filter(|r| r.implementation == "incremental")
        .map(|r| {
            (
                format!("sched_{}_{}_micros", r.stages, r.objective),
                r.median_micros,
            )
        })
        .collect()
}

fn telemetry_metrics(rows: &[ditto_bench::TelemetryOverheadRow]) -> Vec<(String, f64)> {
    let mut m: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("telemetry_{}_run_ms", r.mode), r.run_ms))
        .collect();
    if let Some(t) = rows.iter().find(|r| r.mode == "traced") {
        m.push(("telemetry_overhead_pct".to_string(), t.overhead_pct));
    }
    m
}
