#![warn(missing_docs)]

//! # ditto-timemodel — step-based execution time model (paper §4.1)
//!
//! A stage's execution consists of *steps*: read, compute, write. The paper
//! models the time of each step as `α/d + β`, where `d` is the degree of
//! parallelism, `α/d` is the parallelizable portion and `β` the inherent
//! per-step overhead. Summed over the `m` steps of a stage:
//!
//! ```text
//! T(sᵢ, dᵢ, P) = Σₖ (αᵢₖ/dᵢ + βᵢₖ) = αᵢ/dᵢ + βᵢ            (paper Eq. 2)
//! ```
//!
//! Three refinements from §4.1 are implemented here:
//!
//! * **Shared memory:** when placement `P` co-locates the endpoint stages of
//!   an edge, that edge's read and write steps have `α = β = 0` (SPRIGHT's
//!   zero-copy exchange is microsecond-level regardless of data size).
//! * **Stragglers:** a stage's time is its slowest task's; a scaling factor
//!   (≥ 1) fitted from job history inflates the mean-task model.
//! * **Pipelining:** NIMBLE-style overlapping of an upstream write with the
//!   downstream read; a pipelined edge's read step is excluded from the
//!   downstream stage's (non-overlapped) execution time.
//!
//! The crate also provides:
//!
//! * [`fit`] — least-squares fitting of `(d, t)` profile samples to
//!   `α/d + β` (the offline model building the paper times in Table 2);
//! * [`profile`] — job profiles and model building;
//! * [`resource`] — the linear resource-usage model `M(s, d) = ρ + σ·d`
//!   (paper Eq. 5) and the stage cost `M · T`.

pub mod correction;
pub mod fit;
pub mod model;
pub mod profile;
pub mod resource;
pub mod step;

pub use correction::{ModelCorrections, StepCorrections, CORRECTION_CLAMP};
pub use fit::{fit_step, FitResult};
pub use model::{EdgeIo, JobTimeModel, StageSteps};
pub use profile::{JobProfile, ProfileSample, StageProfile, StepTarget};
pub use resource::ResourceModel;
pub use step::{Step, StepKind};
