//! Adaptive-execution sweep: drift × loss × recovery policy, frozen vs
//! adaptive engine (`figures -- adapt`, writes `BENCH_adapt.json`).
//!
//! Extension beyond the paper: Ditto schedules once from a profiled
//! model, but recurring jobs drift — input growth, co-tenant
//! interference, storage brownouts. The sweep injects a multiplicative
//! compute drift and seeded intermediate-object loss, then plays every
//! scenario through both engines:
//!
//! * **frozen** — the schedule as optimized, faults handled by the
//!   retry/lineage ladder only ([`ditto_exec::try_simulate_with_faults`]);
//! * **adaptive** — the same ladder plus online drift detection and
//!   elastic suffix re-optimization ([`ditto_exec::try_simulate_adaptive`]).
//!
//! Deterministic: one seed names one fault history per cell, so the JSON
//! artifact is byte-identical across runs.

use crate::setup::{prepare, PreparedQuery};
use ditto_cluster::ResourceManager;
use ditto_core::{DittoScheduler, JointOptions, Objective, Schedule};
use ditto_exec::{
    try_simulate_adaptive, try_simulate_adaptive_traced, try_simulate_with_faults,
    try_simulate_with_faults_traced, AdaptiveConfig, FaultPlan, FaultRates, RecoveryPolicy,
    ReschedulingContext,
};
use ditto_obs::{Recorder, TraceData};
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use serde::Serialize;

/// Drift factors the full sweep covers (1.0 = the model was right).
pub const ADAPT_DRIFTS: &[f64] = &[1.0, 1.5, 2.0];
/// Intermediate-object loss probabilities the full sweep covers.
pub const ADAPT_LOSSES: &[f64] = &[0.0, 0.02, 0.05];
/// CI smoke subset: the extremes only.
pub const ADAPT_SMOKE_DRIFTS: &[f64] = &[1.0, 2.0];
/// CI smoke subset: clean vs lossy.
pub const ADAPT_SMOKE_LOSSES: &[f64] = &[0.0, 0.05];

/// Seed naming the fault history of every sweep cell.
pub const ADAPT_SEED: u64 = 23;

/// One adaptive-sweep measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptSweepRow {
    /// Injected multiplicative compute drift (1.0 = none).
    pub drift: f64,
    /// Per-read intermediate-object loss probability.
    pub loss_rate: f64,
    /// Recovery policy ("retry" / "retry+spec").
    pub recovery: String,
    /// Execution engine ("frozen" / "adaptive").
    pub engine: String,
    /// Realized JCT under the injected conditions, seconds.
    pub jct_seconds: f64,
    /// JCT relative to the frozen engine on the same cell (1.0 for the
    /// frozen rows themselves; < 1.0 means the adaptive engine won).
    pub jct_vs_frozen: f64,
    /// Replans recorded on the trace (attempted, including rejected).
    pub replans: u32,
    /// Replans whose corrected-model JCT beat the incumbent and were
    /// spliced in.
    pub applied_replans: u32,
    /// Lineage re-executions of lost/corrupt intermediates.
    pub lineage_reexecs: u32,
    /// Failed / superseded task attempts.
    pub extra_attempts: u32,
    /// True iff every recorded replan passed the feasibility certificate.
    pub audit_clean: bool,
}

/// The sweep's cluster: deliberately slot-constrained (the §6 testbed
/// has ~10× more slots than Q95 wants, where every schedule is
/// near-optimal and replanning has nothing to move). Two uneven servers
/// force real DoP trade-offs, so a drifted model prices them wrong.
fn adapt_cluster() -> ResourceManager {
    ResourceManager::from_free_slots(vec![24, 16])
}

/// Full sweep for `figures -- adapt`.
pub fn adapt_sweep() -> Vec<AdaptSweepRow> {
    adapt_sweep_grid(ADAPT_DRIFTS, ADAPT_LOSSES)
}

/// CI subset for `figures -- adapt-smoke`.
pub fn adapt_sweep_smoke() -> Vec<AdaptSweepRow> {
    adapt_sweep_grid(ADAPT_SMOKE_DRIFTS, ADAPT_SMOKE_LOSSES)
}

/// Sweep an explicit drift × loss grid through both engines.
pub fn adapt_sweep_grid(drifts: &[f64], losses: &[f64]) -> Vec<AdaptSweepRow> {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = adapt_cluster();
    let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    let policies = [
        ("retry", RecoveryPolicy::retry_only()),
        ("retry+spec", RecoveryPolicy::default()),
    ];
    let mut rows = Vec::new();
    for &drift in drifts {
        for &loss in losses {
            for (policy_name, policy) in &policies {
                let plan = fault_plan(drift, loss);
                rows.extend(run_cell(
                    &p, &rm, &schedule, &plan, policy, policy_name, drift, loss,
                ));
            }
        }
    }
    rows
}

/// The fixed-seed frozen-vs-adaptive exemplar pair under 2× compute
/// drift (no object loss): both engines on the same schedule and fault
/// history, each with its own live recorder. This is the input of the
/// cross-run diff quick-start (`figures -- adapt --trace-out`) and the
/// diff engine's acceptance test — the JCT delta between the two traces
/// is the adaptive engine's win, and [`ditto_obs::diff_traces`] must
/// attribute it to (stage, step) buckets.
pub fn traced_adapt_pair() -> (TraceData, TraceData) {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = adapt_cluster();
    let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
    let plan = fault_plan(2.0, 0.0);
    let policy = RecoveryPolicy::default();
    let frozen_obs = Recorder::new();
    try_simulate_with_faults_traced(
        &p.plan.dag,
        &schedule,
        &p.gt,
        &plan,
        &policy,
        None,
        &frozen_obs,
    )
    .expect("frozen engine recovers within policy bounds");
    let ctx = ReschedulingContext {
        model: &p.model,
        resources: &rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    let adaptive_obs = Recorder::new();
    try_simulate_adaptive_traced(
        &p.plan.dag,
        &schedule,
        &p.gt,
        &plan,
        &policy,
        &ctx,
        &AdaptiveConfig::default(),
        &adaptive_obs,
    )
    .expect("adaptive engine recovers within policy bounds");
    (frozen_obs.finish(), adaptive_obs.finish())
}

fn fault_plan(drift: f64, loss: f64) -> FaultPlan {
    let mut plan = FaultPlan::from_rates(FaultRates {
        loss_prob: loss,
        ..FaultRates::none(ADAPT_SEED)
    });
    if drift != 1.0 {
        plan = plan.with_drift(drift);
    }
    plan
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    p: &PreparedQuery,
    rm: &ResourceManager,
    schedule: &Schedule,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    policy_name: &str,
    drift: f64,
    loss: f64,
) -> [AdaptSweepRow; 2] {
    let dag = &p.plan.dag;
    let (_, frozen) = try_simulate_with_faults(dag, schedule, &p.gt, plan, policy, None)
        .expect("frozen engine recovers within policy bounds");
    let ctx = ReschedulingContext {
        model: &p.model,
        resources: rm,
        objective: Objective::Jct,
        options: JointOptions::default(),
    };
    let (trace, adaptive) = try_simulate_adaptive(
        dag,
        schedule,
        &p.gt,
        plan,
        policy,
        &ctx,
        &AdaptiveConfig::default(),
    )
    .expect("adaptive engine recovers within policy bounds");
    let row = |engine: &str, jct: f64, adaptive: bool| AdaptSweepRow {
        drift,
        loss_rate: loss,
        recovery: policy_name.into(),
        engine: engine.into(),
        jct_seconds: jct,
        jct_vs_frozen: jct / frozen.jct,
        replans: if adaptive { trace.replans.len() as u32 } else { 0 },
        applied_replans: if adaptive {
            trace.replans.iter().filter(|r| r.applied).count() as u32
        } else {
            0
        },
        lineage_reexecs: 0,
        extra_attempts: 0,
        audit_clean: !adaptive || trace.replans.iter().all(|r| r.audit_clean),
    };
    let mut fr = row("frozen", frozen.jct, false);
    fr.lineage_reexecs = frozen.faults.lineage_reexecs;
    fr.extra_attempts = frozen.faults.extra_attempts;
    let mut ad = row("adaptive", adaptive.jct, true);
    ad.lineage_reexecs = adaptive.faults.lineage_reexecs;
    ad.extra_attempts = adaptive.faults.extra_attempts;
    [fr, ad]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapt_smoke_is_sound_and_deterministic() {
        let rows = adapt_sweep_smoke();
        assert_eq!(rows.len(), 2 * 2 * 2 * 2, "drift × loss × policy × engine");
        for r in &rows {
            assert!(r.jct_seconds > 0.0, "JCT must be positive: {r:?}");
            assert!(r.audit_clean, "replan failed its certificate: {r:?}");
            if r.engine == "frozen" {
                assert!((r.jct_vs_frozen - 1.0).abs() < 1e-12);
            } else if r.loss_rate == 0.0 {
                // Deterministic drift: the apply margin must make the
                // adaptive engine strictly no-worse than frozen.
                assert!(
                    r.jct_vs_frozen <= 1.0 + 1e-9,
                    "adaptive must not lose to frozen on a loss-free cell: {r:?}"
                );
            } else {
                // Stochastic object loss re-rolls per external read: a
                // splice with positive expected value can still lose one
                // realization (the externalized seam edges are new loss
                // surface). Require the downside stays bounded.
                assert!(
                    r.jct_vs_frozen <= 1.15,
                    "adaptive downside under loss must stay bounded: {r:?}"
                );
            }
        }
        // Net win: across the whole grid the adaptive engine comes out
        // ahead even counting the lossy realizations it loses.
        let adaptive: Vec<f64> = rows
            .iter()
            .filter(|r| r.engine == "adaptive")
            .map(|r| r.jct_vs_frozen)
            .collect();
        let mean = adaptive.iter().sum::<f64>() / adaptive.len() as f64;
        assert!(mean < 1.0, "adaptive must win in aggregate, mean ratio {mean:.4}");
        // Drift 1.0 + loss 0: the adaptive engine must be bit-identical
        // to the frozen one — zero replans, equal JCT.
        for r in rows.iter().filter(|r| r.drift == 1.0 && r.loss_rate == 0.0) {
            assert_eq!(r.replans, 0, "clean cell replanned: {r:?}");
            assert!((r.jct_vs_frozen - 1.0).abs() < 1e-12, "clean cell diverged: {r:?}");
        }
        // Determinism: the sweep re-run is value-identical.
        let again = adapt_sweep_smoke();
        assert_eq!(
            crate::write_json(&rows),
            crate::write_json(&again),
            "same seed must give a byte-identical artifact"
        );
    }

    /// Fixed-seed drift + loss simulation whose emitted trace must
    /// validate against the Chrome `trace_event` schema — the adaptive
    /// engine's replans and lineage re-executions may not corrupt the
    /// telemetry the rest of the toolchain loads into Perfetto.
    #[test]
    fn drift_loss_trace_is_schema_valid() {
        let p = prepare(Query::Q95, Medium::S3);
        let rm = adapt_cluster();
        let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
        let plan = fault_plan(2.0, 0.05);
        let ctx = ReschedulingContext {
            model: &p.model,
            resources: &rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        };
        let (trace, _) = try_simulate_adaptive(
            &p.plan.dag,
            &schedule,
            &p.gt,
            &plan,
            &RecoveryPolicy::default(),
            &ctx,
            &AdaptiveConfig::default(),
        )
        .expect("adaptive engine recovers within policy bounds");
        // `to_chrome_trace` emits the bare-array form; the validator
        // checks the wrapped object form Perfetto also accepts.
        let wrapped = format!("{{\"traceEvents\":{}}}", trace.to_chrome_trace());
        let stats = ditto_obs::validate_chrome_trace(&wrapped).expect("schema-valid trace");
        assert!(stats.durations > 0, "trace must carry task step events");
        assert_eq!(
            stats.pids.len(),
            3,
            "both servers of the sweep cluster plus the scheduler replan \
             track must appear as track groups"
        );
        assert!(stats.instants > 0, "replan instants must survive export");
    }

    /// The headline robustness number, asserted in release CI where the
    /// full-resolution sweep is cheap: under 2× compute drift the
    /// adaptive engine's realized JCT beats the frozen schedule by ≥10%.
    #[cfg(not(debug_assertions))]
    #[test]
    fn adaptive_beats_frozen_by_ten_percent_under_2x_drift() {
        let rows = adapt_sweep_grid(&[2.0], &[0.0]);
        let best = rows
            .iter()
            .filter(|r| r.engine == "adaptive")
            .map(|r| r.jct_vs_frozen)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= 0.90,
            "adaptive JCT under 2x drift must be ≤ 0.90 of frozen, got {best:.3}"
        );
    }
}
