//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the macro/builder surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`) and times a small
//! fixed number of iterations per benchmark, printing mean wall-clock time.
//! No statistics, warm-up, or HTML reports — enough to keep `cargo bench`
//! and `cargo test --benches` compiling and producing useful numbers.

use std::time::Instant;

/// Iterations per benchmark. Kept small so `cargo test` (which compiles
/// and runs bench targets in test mode) stays fast.
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { total_nanos: 0, iters: 0 };
        for _ in 0..ITERS {
            f(&mut b);
        }
        report(&self.name, &id.text, &b);
        self
    }

    /// Run a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { total_nanos: 0, iters: 0 };
        for _ in 0..ITERS {
            f(&mut b, input);
        }
        report(&self.name, &id.text, &b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters > 0 {
        let mean = b.total_nanos as f64 / b.iters as f64;
        println!("bench {group}/{id}: {:.3} ms/iter ({} iters)", mean / 1e6, b.iters);
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `f` (criterion runs many; the shim runs one
    /// per outer repetition).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += 1;
        drop(out);
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point invoking one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        let input = 5u32;
        let mut with_input_runs = 0u32;
        group.bench_with_input(BenchmarkId::new("p", 5), &input, |b, &i| {
            b.iter(|| with_input_runs += i)
        });
        group.finish();
        assert_eq!(runs, super::ITERS);
        assert_eq!(with_input_runs, 5 * super::ITERS);
    }
}
