//! The scheduler's output: DoPs, stage groups, and task placement.

use ditto_cluster::ServerId;
use ditto_dag::{JobDag, StageId};

/// Where the tasks of one stage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskPlacement {
    /// All tasks on a single server (the stage belongs to a co-located
    /// stage group, or a singleton that happened to fit one server).
    Single(ServerId),
    /// Tasks spread over servers: `(server, task_count)` in task order —
    /// tasks `0..c₀` on the first server, the next `c₁` on the second, …
    Spread(Vec<(ServerId, u32)>),
}

impl TaskPlacement {
    /// The server the `task`-th task (0-based) runs on.
    ///
    /// # Panics
    /// Panics if `task` is beyond the placed task count.
    pub fn server_of_task(&self, task: u32) -> ServerId {
        match self {
            TaskPlacement::Single(s) => *s,
            TaskPlacement::Spread(parts) => {
                let mut t = task;
                for &(server, count) in parts {
                    if t < count {
                        return server;
                    }
                    t -= count;
                }
                panic!("task index {task} beyond placement {parts:?}");
            }
        }
    }

    /// Total tasks covered by this placement.
    pub fn task_count(&self) -> u32 {
        match self {
            TaskPlacement::Single(_) => u32::MAX, // unbounded: one server hosts all
            TaskPlacement::Spread(parts) => parts.iter().map(|&(_, c)| c).sum(),
        }
    }

    /// Distinct servers used.
    pub fn servers(&self) -> Vec<ServerId> {
        match self {
            TaskPlacement::Single(s) => vec![*s],
            TaskPlacement::Spread(parts) => {
                let mut v: Vec<ServerId> = parts.iter().map(|&(s, _)| s).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }
}

/// A complete scheduling decision for one job.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Name of the scheduler that produced this (for traces and figures).
    pub scheduler: String,
    /// Degree of parallelism per stage, ≥ 1.
    pub dop: Vec<u32>,
    /// Stage groups (singletons included), sorted by representative.
    pub groups: Vec<Vec<StageId>>,
    /// Group index per stage, aligned with `groups`.
    pub group_of: Vec<usize>,
    /// Per-edge co-location: `true` iff the edge's endpoints share a group
    /// *and* the placement realizes the co-location (same server per task
    /// pair), so the edge's I/O uses zero-copy shared memory.
    pub colocated: Vec<bool>,
    /// Placement of every stage's tasks.
    pub placement: Vec<TaskPlacement>,
}

impl Schedule {
    /// Total function slots the schedule occupies (Σ DoP).
    pub fn total_slots(&self) -> u32 {
        self.dop.iter().sum()
    }

    /// Sanity-check the schedule against its DAG: every stage has a DoP
    /// ≥ 1 and a placement covering its tasks; colocated edges join stages
    /// of the same group. Returns a human-readable violation if any.
    pub fn validate(&self, dag: &JobDag) -> Result<(), String> {
        if self.dop.len() != dag.num_stages() {
            return Err(format!(
                "dop length {} != stage count {}",
                self.dop.len(),
                dag.num_stages()
            ));
        }
        if self.placement.len() != dag.num_stages() {
            return Err("placement length mismatch".into());
        }
        if self.colocated.len() != dag.num_edges() {
            return Err("colocated mask length mismatch".into());
        }
        for s in dag.stages() {
            let d = self.dop[s.id.index()];
            if d == 0 {
                return Err(format!("stage {} has DoP 0", s.name));
            }
            if let TaskPlacement::Spread(parts) = &self.placement[s.id.index()] {
                let covered: u32 = parts.iter().map(|&(_, c)| c).sum();
                if covered != d {
                    return Err(format!(
                        "stage {} places {covered} tasks but DoP is {d}",
                        s.name
                    ));
                }
            }
        }
        for e in dag.edges() {
            if self.colocated[e.id.index()]
                && self.group_of[e.src.index()] != self.group_of[e.dst.index()]
            {
                return Err(format!(
                    "edge {} marked colocated but endpoints in different groups",
                    e.id
                ));
            }
        }
        Ok(())
    }

    /// Splice a replanned schedule into this one: stages in the `suffix`
    /// mask take the replanned DoP and placement, everything else keeps the
    /// original decision. Edges crossing the prefix/suffix boundary are
    /// conservatively treated as external (not co-located), since the two
    /// halves were placed by different optimizer runs and any co-location
    /// claim across the seam is unverified. Groups are rebuilt from the
    /// surviving co-location mask (connected components over colocated
    /// edges), so the spliced schedule stays self-consistent under
    /// [`Schedule::validate`] and the auditor's co-location certificate.
    /// The scheduler name gains a `+replan` suffix so downstream consumers
    /// (audits, figures) can tell a spliced schedule apart.
    ///
    /// # Panics
    /// Panics if `suffix.len() != dag.num_stages()` or the two schedules
    /// do not both cover `dag`.
    pub fn splice(&self, dag: &JobDag, replanned: &Schedule, suffix: &[bool]) -> Schedule {
        let n = dag.num_stages();
        assert_eq!(suffix.len(), n, "suffix mask must cover every stage");
        let mut dop = self.dop.clone();
        let mut placement = self.placement.clone();
        for i in 0..n {
            if suffix[i] {
                dop[i] = replanned.dop[i];
                placement[i] = replanned.placement[i].clone();
            }
        }
        let colocated: Vec<bool> = dag
            .edges()
            .iter()
            .map(|e| match (suffix[e.src.index()], suffix[e.dst.index()]) {
                (true, true) => replanned.colocated[e.id.index()],
                (false, false) => self.colocated[e.id.index()],
                _ => false,
            })
            .collect();
        // Rebuild groups as connected components over the surviving
        // colocated edges (union-find with path halving).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in dag.edges() {
            if colocated[e.id.index()] {
                let (a, b) = (
                    find(&mut parent, e.src.index()),
                    find(&mut parent, e.dst.index()),
                );
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        let mut groups: Vec<Vec<StageId>> = Vec::new();
        let mut group_of = vec![usize::MAX; n];
        for i in 0..n {
            let root = find(&mut parent, i);
            if group_of[root] == usize::MAX {
                group_of[root] = groups.len();
                groups.push(Vec::new());
            }
            group_of[i] = group_of[root];
            groups[group_of[i]].push(StageId(i as u32));
        }
        Schedule {
            scheduler: format!("{}+replan", self.scheduler),
            dop,
            groups,
            group_of,
            colocated,
            placement,
        }
    }

    /// Human-readable description for examples and traces.
    pub fn describe(&self, dag: &JobDag) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "schedule by {} ({} slots):", self.scheduler, self.total_slots());
        for g in &self.groups {
            let names: Vec<&str> = g.iter().map(|&s| dag.stage(s).name.as_str()).collect();
            let dops: Vec<u32> = g.iter().map(|&s| self.dop[s.index()]).collect();
            let place = match &self.placement[g[0].index()] {
                TaskPlacement::Single(srv) => format!("{srv}"),
                TaskPlacement::Spread(p) => format!("{} servers", p.len()),
            };
            let _ = writeln!(out, "  group [{}] dop={dops:?} @ {place}", names.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_of_task_spread() {
        let p = TaskPlacement::Spread(vec![(ServerId(0), 2), (ServerId(3), 3)]);
        assert_eq!(p.server_of_task(0), ServerId(0));
        assert_eq!(p.server_of_task(1), ServerId(0));
        assert_eq!(p.server_of_task(2), ServerId(3));
        assert_eq!(p.server_of_task(4), ServerId(3));
        assert_eq!(p.task_count(), 5);
        assert_eq!(p.servers(), vec![ServerId(0), ServerId(3)]);
    }

    #[test]
    #[should_panic(expected = "beyond placement")]
    fn server_of_task_out_of_range() {
        TaskPlacement::Spread(vec![(ServerId(0), 1)]).server_of_task(1);
    }

    #[test]
    fn single_placement() {
        let p = TaskPlacement::Single(ServerId(2));
        assert_eq!(p.server_of_task(99), ServerId(2));
        assert_eq!(p.servers(), vec![ServerId(2)]);
    }

    #[test]
    fn splice_takes_suffix_and_drops_boundary_colocation() {
        let dag = ditto_dag::generators::fig1_join();
        let orig = Schedule {
            scheduler: "ditto-jct".into(),
            dop: vec![4, 2, 2],
            groups: vec![vec![StageId(0), StageId(2)], vec![StageId(1)]],
            group_of: vec![0, 1, 0],
            colocated: vec![true, false],
            placement: vec![
                TaskPlacement::Single(ServerId(0)),
                TaskPlacement::Single(ServerId(1)),
                TaskPlacement::Single(ServerId(0)),
            ],
        };
        let replanned = Schedule {
            scheduler: "ditto-jct".into(),
            dop: vec![8, 6, 5],
            groups: vec![vec![StageId(0)], vec![StageId(1)], vec![StageId(2)]],
            group_of: vec![0, 1, 2],
            colocated: vec![false, false],
            placement: vec![
                TaskPlacement::Single(ServerId(1)),
                TaskPlacement::Single(ServerId(1)),
                TaskPlacement::Spread(vec![(ServerId(1), 5)]),
            ],
        };
        // Suffix = final stage only. Edge 0 (s0→s2) crosses the boundary.
        let spliced = orig.splice(&dag, &replanned, &[false, false, true]);
        assert_eq!(spliced.scheduler, "ditto-jct+replan");
        assert_eq!(spliced.dop, vec![4, 2, 5]);
        assert_eq!(spliced.placement[0], TaskPlacement::Single(ServerId(0)));
        assert_eq!(
            spliced.placement[2],
            TaskPlacement::Spread(vec![(ServerId(1), 5)])
        );
        assert_eq!(
            spliced.colocated,
            vec![false, false],
            "boundary edge must lose its co-location claim"
        );
        assert!(spliced.validate(&dag).is_ok());
        // Empty suffix keeps every decision, and the surviving colocated
        // edge (s0→s2) regroups its endpoints so validate stays clean.
        let same = orig.splice(&dag, &replanned, &[false, false, false]);
        assert_eq!(same.dop, orig.dop);
        assert_eq!(same.placement, orig.placement);
        assert_eq!(same.colocated, orig.colocated);
        assert_eq!(same.group_of[0], same.group_of[2]);
        assert_ne!(same.group_of[0], same.group_of[1]);
        assert!(same.validate(&dag).is_ok());
        // Full suffix is the replanned schedule.
        let full = orig.splice(&dag, &replanned, &[true, true, true]);
        assert_eq!(full.dop, replanned.dop);
        assert_eq!(full.colocated, replanned.colocated);
    }

    #[test]
    fn validate_catches_mismatches() {
        let dag = ditto_dag::generators::fig1_join();
        let good = Schedule {
            scheduler: "test".into(),
            dop: vec![2, 1, 1],
            groups: vec![vec![StageId(0)], vec![StageId(1)], vec![StageId(2)]],
            group_of: vec![0, 1, 2],
            colocated: vec![false, false],
            placement: vec![
                TaskPlacement::Spread(vec![(ServerId(0), 2)]),
                TaskPlacement::Single(ServerId(0)),
                TaskPlacement::Single(ServerId(1)),
            ],
        };
        assert!(good.validate(&dag).is_ok());
        assert_eq!(good.total_slots(), 4);

        let mut bad = good.clone();
        bad.dop[1] = 0;
        assert!(bad.validate(&dag).is_err());

        let mut bad = good.clone();
        bad.placement[0] = TaskPlacement::Spread(vec![(ServerId(0), 1)]);
        assert!(bad.validate(&dag).unwrap_err().contains("places 1 tasks"));

        let mut bad = good.clone();
        bad.colocated[0] = true; // groups differ
        assert!(bad.validate(&dag).is_err());

        let desc = good.describe(&dag);
        assert!(desc.contains("map1"));
        assert!(desc.contains("test"));
    }
}
