//! Hash join: inner, left-semi and left-anti over single-column keys.

use crate::column::Column;
#[cfg(test)]
use crate::column::DataType;
use crate::table::{Field, Schema, Table};
use std::collections::HashMap;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// All matching (left, right) row pairs; output carries both sides'
    /// columns (right-side name collisions get an `_r` suffix).
    Inner,
    /// Left rows with at least one match; left columns only (`EXISTS`).
    LeftSemi,
    /// Left rows with no match; left columns only (`NOT EXISTS`).
    LeftAnti,
}

/// A join key usable as a hash-map key (i64 or string columns).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    I(i64),
    S(String),
}

fn key_at(col: &Column, row: usize) -> Key {
    match col {
        Column::I64(v) => Key::I(v[row]),
        Column::Str(v) => Key::S(v[row].clone()),
        Column::F64(_) => panic!("cannot join on a float column"),
    }
}

/// Hash join `left ⋈ right` on `left_key = right_key`.
///
/// Builds the hash table on the right side, probes with the left, so row
/// order follows the left input (deterministic).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
) -> Table {
    let lcol = left.column_req(left_key);
    let rcol = right.column_req(right_key);
    assert_eq!(
        lcol.dtype(),
        rcol.dtype(),
        "join key types differ: {left_key} vs {right_key}"
    );

    // Build: right key → row indices.
    let mut build: HashMap<Key, Vec<usize>> = HashMap::new();
    for r in 0..right.num_rows() {
        build.entry(key_at(rcol, r)).or_default().push(r);
    }

    match kind {
        JoinKind::Inner => {
            let mut lidx = Vec::new();
            let mut ridx = Vec::new();
            for l in 0..left.num_rows() {
                if let Some(rs) = build.get(&key_at(lcol, l)) {
                    for &r in rs {
                        lidx.push(l);
                        ridx.push(r);
                    }
                }
            }
            let lpart = left.take(&lidx);
            let rpart = right.take(&ridx);
            // Merge schemas; suffix right-side collisions.
            let mut fields = lpart.schema.fields.clone();
            let mut cols = lpart.columns.clone();
            for (f, c) in rpart.schema.fields.iter().zip(&rpart.columns) {
                let name = if lpart.schema.index_of(&f.name).is_some() {
                    format!("{}_r", f.name)
                } else {
                    f.name.clone()
                };
                fields.push(Field {
                    name,
                    dtype: f.dtype,
                });
                cols.push(c.clone());
            }
            Table::new(Schema { fields }, cols)
        }
        JoinKind::LeftSemi | JoinKind::LeftAnti => {
            let want_match = kind == JoinKind::LeftSemi;
            let mask: Vec<bool> = (0..left.num_rows())
                .map(|l| build.contains_key(&key_at(lcol, l)) == want_match)
                .collect();
            left.filter(&mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("lx", DataType::F64)]),
            vec![
                Column::I64(vec![1, 2, 2, 3]),
                Column::F64(vec![10.0, 20.0, 21.0, 30.0]),
            ],
        )
    }

    fn right() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("ry", DataType::Str)]),
            vec![
                Column::I64(vec![2, 3, 3, 5]),
                Column::Str(vec!["b".into(), "c1".into(), "c2".into(), "e".into()]),
            ],
        )
    }

    #[test]
    fn inner_join_pairs() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::Inner);
        // k=2 matches 1 right row ×2 left rows; k=3 matches 2 right rows.
        assert_eq!(j.num_rows(), 4);
        // Right key column collided → suffixed.
        assert!(j.column("k_r").is_some());
        assert_eq!(j.column_req("k").as_i64(), &[2, 2, 3, 3]);
        assert_eq!(
            j.column_req("ry").as_str(),
            &["b".to_string(), "b".into(), "c1".into(), "c2".into()]
        );
    }

    #[test]
    fn semi_join_keeps_matching_left_rows_once() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::LeftSemi);
        assert_eq!(j.column_req("k").as_i64(), &[2, 2, 3]);
        assert_eq!(j.num_columns(), 2, "left columns only");
    }

    #[test]
    fn anti_join_keeps_unmatched() {
        let j = hash_join(&left(), &right(), "k", "k", JoinKind::LeftAnti);
        assert_eq!(j.column_req("k").as_i64(), &[1]);
    }

    #[test]
    fn string_keys_work() {
        let l = Table::new(
            Schema::new(&[("s", DataType::Str)]),
            vec![Column::Str(vec!["x".into(), "y".into()])],
        );
        let r = Table::new(
            Schema::new(&[("s2", DataType::Str)]),
            vec![Column::Str(vec!["y".into()])],
        );
        let j = hash_join(&l, &r, "s", "s2", JoinKind::Inner);
        assert_eq!(j.num_rows(), 1);
        // No collision: right column keeps its name.
        assert!(j.column("s2").is_some());
    }

    #[test]
    fn empty_sides() {
        let e = Table::empty(Schema::new(&[("k", DataType::I64)]));
        assert_eq!(hash_join(&e, &right(), "k", "k", JoinKind::Inner).num_rows(), 0);
        assert_eq!(hash_join(&left(), &e, "k", "k", JoinKind::Inner).num_rows(), 0);
        assert_eq!(
            hash_join(&left(), &e, "k", "k", JoinKind::LeftAnti).num_rows(),
            4,
            "anti join against empty right keeps everything"
        );
    }

    #[test]
    #[should_panic(expected = "key types differ")]
    fn mismatched_key_types() {
        let r = Table::new(
            Schema::new(&[("k", DataType::Str)]),
            vec![Column::Str(vec!["1".into()])],
        );
        hash_join(&left(), &r, "k", "k", JoinKind::Inner);
    }

    #[test]
    #[should_panic(expected = "float column")]
    fn float_key_rejected() {
        // Both key columns are f64 so the type-equality check passes and
        // the float-key rejection fires.
        hash_join(&left(), &left(), "lx", "lx", JoinKind::Inner);
    }
}
