//! Sort-limit (top-N) and distinct.

use crate::column::Column;
use crate::table::Table;
use std::collections::HashSet;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// `ORDER BY col <order> LIMIT limit`. Stable: ties keep input order.
pub fn sort_limit(t: &Table, col: &str, order: SortOrder, limit: usize) -> Table {
    let c = t.column_req(col);
    let mut idx: Vec<usize> = (0..t.num_rows()).collect();
    match c {
        Column::I64(v) => idx.sort_by(|&a, &b| v[a].cmp(&v[b])),
        Column::F64(v) => idx.sort_by(|&a, &b| v[a].total_cmp(&v[b])),
        Column::Str(v) => idx.sort_by(|&a, &b| v[a].cmp(&v[b])),
    }
    if order == SortOrder::Desc {
        idx.reverse();
    }
    idx.truncate(limit);
    t.take(&idx)
}

/// `SELECT DISTINCT cols FROM t` — unique rows of the named columns, in
/// first-appearance order.
pub fn distinct(t: &Table, cols: &[&str]) -> Table {
    let projected = t.project(cols);
    let key_cols: Vec<&Column> = cols.iter().map(|c| projected.column_req(c)).collect();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut keep = Vec::new();
    for row in 0..projected.num_rows() {
        let key: Vec<u64> = key_cols.iter().map(|c| c.hash_row(row)).collect();
        if seen.insert(key) {
            keep.push(row);
        }
    }
    projected.take(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::table::Schema;

    fn t() -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64), ("x", DataType::F64)]),
            vec![
                Column::I64(vec![3, 1, 2, 1]),
                Column::F64(vec![30.0, 10.0, 20.0, 11.0]),
            ],
        )
    }

    #[test]
    fn sort_asc_desc() {
        let a = sort_limit(&t(), "k", SortOrder::Asc, 10);
        assert_eq!(a.column_req("k").as_i64(), &[1, 1, 2, 3]);
        // Stable: first 1 is x=10, second x=11.
        assert_eq!(a.column_req("x").as_f64()[0], 10.0);
        let d = sort_limit(&t(), "x", SortOrder::Desc, 2);
        assert_eq!(d.column_req("x").as_f64(), &[30.0, 20.0]);
    }

    #[test]
    fn limit_truncates() {
        let a = sort_limit(&t(), "k", SortOrder::Asc, 1);
        assert_eq!(a.num_rows(), 1);
        let all = sort_limit(&t(), "k", SortOrder::Asc, 100);
        assert_eq!(all.num_rows(), 4);
    }

    #[test]
    fn distinct_unique_rows() {
        let d = distinct(&t(), &["k"]);
        assert_eq!(d.column_req("k").as_i64(), &[3, 1, 2]);
        assert_eq!(d.num_columns(), 1);
    }

    #[test]
    fn distinct_multi_column() {
        let tab = Table::new(
            Schema::new(&[("a", DataType::I64), ("b", DataType::I64)]),
            vec![
                Column::I64(vec![1, 1, 2, 1]),
                Column::I64(vec![1, 2, 1, 1]),
            ],
        );
        let d = distinct(&tab, &["a", "b"]);
        assert_eq!(d.num_rows(), 3);
    }
}
