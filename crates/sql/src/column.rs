//! Typed columns: the storage unit of the engine.

use std::fmt;

/// A typed column of values. Strings are owned; numeric columns are dense
/// vectors. No null support — the synthetic generator emits complete data,
/// and TPC-DS predicates used by the four queries never test for NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers (all key and date columns).
    I64(Vec<i64>),
    /// 64-bit floats (measures: prices, profits, amounts).
    F64(Vec<f64>),
    /// UTF-8 strings (dimension attributes: states, county names).
    Str(Vec<String>),
}

/// The type tag of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::I64 => "i64",
            DataType::F64 => "f64",
            DataType::Str => "str",
        })
    }
}

/// A single value (for predicates and scalar results).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer value.
    I64(i64),
    /// Float value.
    F64(f64),
    /// String value.
    Str(String),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type tag.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::I64(_) => DataType::I64,
            Column::F64(_) => DataType::F64,
            Column::Str(_) => DataType::Str,
        }
    }

    /// The value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::I64(v) => Value::I64(v[row]),
            Column::F64(v) => Value::F64(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Borrow the string at `row` without cloning (the hot-path
    /// replacement for [`Column::value`] on string columns).
    pub fn str_at(&self, row: usize) -> &str {
        match self {
            Column::Str(v) => &v[row],
            other => panic!("expected str column, got {}", other.dtype()),
        }
    }

    /// Copy the contiguous row range `start .. start + len` into a new
    /// column (one block copy for numerics).
    pub fn slice(&self, start: usize, len: usize) -> Column {
        match self {
            Column::I64(v) => Column::I64(v[start..start + len].to_vec()),
            Column::F64(v) => Column::F64(v[start..start + len].to_vec()),
            Column::Str(v) => Column::Str(v[start..start + len].to_vec()),
        }
    }

    /// [`Column::hash_row`] for every row at once. Equal to
    /// `(0..len).map(|r| hash_row(r))` but hashes each *distinct* string
    /// only once by dictionary-encoding string columns first.
    pub fn hash_column(&self) -> Vec<u64> {
        match self {
            Column::I64(v) => v.iter().map(|&x| crate::hash::fnv1a_u64_le(x as u64)).collect(),
            Column::F64(v) => {
                v.iter().map(|x| crate::hash::fnv1a_u64_le(x.to_bits())).collect()
            }
            Column::Str(v) => {
                let (dict, codes) = crate::dict::StrDict::encode_column(v);
                let by_code: Vec<u64> = dict
                    .entries()
                    .iter()
                    .map(|s| crate::hash::fnv1a_bytes(s.as_bytes()))
                    .collect();
                codes.iter().map(|&c| by_code[c as usize]).collect()
            }
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::I64(_) => Column::I64(Vec::new()),
            Column::F64(_) => Column::F64(Vec::new()),
            Column::Str(_) => Column::Str(Vec::new()),
        }
    }

    /// Gather the given row indices into a new column.
    pub fn take(&self, idx: &[usize]) -> Column {
        match self {
            Column::I64(v) => Column::I64(idx.iter().map(|&i| v[i]).collect()),
            Column::F64(v) => Column::F64(idx.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Keep rows where `mask` is `true` (lengths must match).
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        match self {
            Column::I64(v) => Column::I64(
                v.iter().zip(mask).filter(|&(_, &m)| m).map(|(x, _)| *x).collect(),
            ),
            Column::F64(v) => Column::F64(
                v.iter().zip(mask).filter(|&(_, &m)| m).map(|(x, _)| *x).collect(),
            ),
            Column::Str(v) => Column::Str(
                v.iter()
                    .zip(mask)
                    .filter(|&(_, &m)| m)
                    .map(|(x, _)| x.clone())
                    .collect(),
            ),
        }
    }

    /// Append another column of the same type.
    pub fn extend(&mut self, other: &Column) {
        match (self, other) {
            (Column::I64(a), Column::I64(b)) => a.extend_from_slice(b),
            (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (a, b) => panic!("type mismatch in extend: {:?} vs {:?}", a.dtype(), b.dtype()),
        }
    }

    /// The integer data, or panic with the column's real type.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::I64(v) => v,
            other => panic!("expected i64 column, got {}", other.dtype()),
        }
    }

    /// The float data, or panic.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::F64(v) => v,
            other => panic!("expected f64 column, got {}", other.dtype()),
        }
    }

    /// The string data, or panic.
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            other => panic!("expected str column, got {}", other.dtype()),
        }
    }

    /// A stable 64-bit hash of the value at `row` (for hash partitioning
    /// and hash joins). FNV-1a over the canonical byte encoding —
    /// deterministic across runs and platforms.
    pub fn hash_row(&self, row: usize) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            Column::I64(v) => eat(&v[row].to_le_bytes()),
            Column::F64(v) => eat(&v[row].to_bits().to_le_bytes()),
            Column::Str(v) => eat(v[row].as_bytes()),
        }
        h
    }

    /// Approximate in-memory byte size.
    pub fn byte_size(&self) -> u64 {
        match self {
            Column::I64(v) => (v.len() * 8) as u64,
            Column::F64(v) => (v.len() * 8) as u64,
            Column::Str(v) => v.iter().map(|s| s.len() as u64 + 8).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::I64(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.dtype(), DataType::I64);
        assert_eq!(c.value(1), Value::I64(2));
        assert_eq!(c.as_i64(), &[1, 2, 3]);
        assert_eq!(c.byte_size(), 24);
    }

    #[test]
    fn take_and_filter() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.take(&[2, 0]), Column::Str(vec!["c".into(), "a".into()]));
        assert_eq!(
            c.filter(&[true, false, true]),
            Column::Str(vec!["a".into(), "c".into()])
        );
    }

    #[test]
    fn extend_same_type() {
        let mut a = Column::F64(vec![1.0]);
        a.extend(&Column::F64(vec![2.0, 3.0]));
        assert_eq!(a.as_f64(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn extend_type_mismatch_panics() {
        let mut a = Column::F64(vec![1.0]);
        a.extend(&Column::I64(vec![2]));
    }

    #[test]
    #[should_panic(expected = "expected i64")]
    fn wrong_accessor_panics() {
        Column::F64(vec![1.0]).as_i64();
    }

    #[test]
    fn hash_stable_and_discriminating() {
        let c = Column::I64(vec![7, 7, 8]);
        assert_eq!(c.hash_row(0), c.hash_row(1));
        assert_ne!(c.hash_row(0), c.hash_row(2));
        let s = Column::Str(vec!["x".into(), "y".into()]);
        assert_ne!(s.hash_row(0), s.hash_row(1));
    }

    #[test]
    fn str_at_borrows() {
        let c = Column::Str(vec!["a".into(), "b".into()]);
        assert_eq!(c.str_at(1), "b");
    }

    #[test]
    #[should_panic(expected = "expected str")]
    fn str_at_wrong_type_panics() {
        Column::I64(vec![1]).str_at(0);
    }

    #[test]
    fn slice_copies_contiguous_range() {
        let c = Column::I64(vec![1, 2, 3, 4]);
        assert_eq!(c.slice(1, 2), Column::I64(vec![2, 3]));
        assert_eq!(c.slice(4, 0), Column::I64(vec![]));
        let s = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(s.slice(0, 2), Column::Str(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn hash_column_matches_hash_row() {
        let cols = [
            Column::I64(vec![7, -1, 7, i64::MIN]),
            Column::F64(vec![0.0, -0.0, 3.5]),
            Column::Str(vec!["x".into(), "".into(), "x".into(), "yy".into()]),
        ];
        for c in &cols {
            let bulk = c.hash_column();
            for (row, &h) in bulk.iter().enumerate() {
                assert_eq!(h, c.hash_row(row));
            }
        }
    }

    #[test]
    fn empty_like_preserves_type() {
        assert_eq!(Column::Str(vec!["a".into()]).empty_like().dtype(), DataType::Str);
        assert!(Column::I64(vec![1]).empty_like().is_empty());
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn filter_length_mismatch() {
        Column::I64(vec![1, 2]).filter(&[true]);
    }
}
