//! Scheduler-throughput benchmark: incremental `joint_optimize` vs the
//! preserved from-scratch reference, swept over `random_dag` sizes.
//!
//! For each DAG size and objective the sweep times both implementations
//! on the *same* DAG and cluster (8 servers, `stages/4` slots each, so
//! the slot budget `C = 2·stages` scales with the job), reporting the
//! median per-call scheduling latency, the candidate-evaluation count
//! and the DoP-memo hit count from [`JointStats`]. The two
//! implementations are bit-identical by contract (see
//! `crates/core/tests/joint_equivalence.rs`); this sweep measures only
//! how much work each does to arrive at the same schedule.
//!
//! Each timed loop is wrapped in a `bench.sched` span on the recorder
//! passed in (scheduler track, lane 1), carrying the implementation,
//! size, objective and measured median as attributes — run
//! `figures -- sched --trace-out sched_trace.json` to see the
//! reference/incremental duration gap side by side in Perfetto.

use ditto_cluster::ResourceManager;
use ditto_core::reference::joint_optimize_reference_with_stats;
use ditto_core::{joint_optimize_with_stats, JointOptions, JointStats, Objective};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_obs::{Recorder, Track};
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use serde::Serialize;
use std::time::Instant;

/// The full sweep behind `BENCH_sched.json`.
pub const SCHED_BENCH_SIZES: &[usize] = &[16, 64, 256, 512, 1024];
/// The CI smoke subset (debug-friendly sizes; see `.github/workflows`).
pub const SCHED_SMOKE_SIZES: &[usize] = &[16, 64, 256];

/// One `(size, objective, implementation)` measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SchedBenchRow {
    /// Stages in the random DAG.
    pub stages: usize,
    /// Edges in the random DAG.
    pub edges: usize,
    /// `jct` or `cost`.
    pub objective: String,
    /// `reference` (from-scratch) or `incremental`.
    pub implementation: String,
    /// Median wall-clock latency of one `joint_optimize` call, in µs.
    pub median_micros: f64,
    /// Commit rounds of Algorithm 3.
    pub rounds: usize,
    /// Candidate edges evaluated across all rounds.
    pub candidates: usize,
    /// Candidates accepted.
    pub commits: usize,
    /// Candidate evaluations that skipped `compute_dop`.
    pub dop_memo_hits: usize,
    /// `reference median / this median` on the same (size, objective);
    /// 1.0 for the reference rows themselves.
    pub speedup_vs_reference: f64,
}

/// Timed repetitions per call, scaled down as the DAG grows (the
/// reference implementation is the budget: O(minutes) at 1024 stages).
fn iters_for(stages: usize) -> usize {
    match stages {
        0..=64 => 9,
        65..=256 => 5,
        257..=512 => 3,
        _ => 1,
    }
}

/// The benchmark cluster for an `n`-stage job: 8 servers with `n/4`
/// slots each (minimum 4), i.e. a slot budget of `2n` — roomy enough
/// that grouping proceeds, tight enough that placement rejects the
/// largest merges and exercises the backtracking path.
fn bench_cluster(stages: usize) -> ResourceManager {
    ResourceManager::from_free_slots(vec![(stages as u32 / 4).max(4); 8])
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn timed<F: FnMut() -> JointStats>(
    iters: usize,
    obs: &Recorder,
    implementation: &'static str,
    stages: usize,
    objective: &'static str,
    mut call: F,
) -> (f64, JointStats) {
    let span = obs.begin(
        "bench.sched",
        Track::scheduler(1),
        obs.wall_now(),
        ditto_obs::SpanId::NONE,
        vec![
            ("impl", implementation.into()),
            ("stages", (stages as u64).into()),
            ("objective", objective.into()),
            ("iters", (iters as u64).into()),
        ],
    );
    let mut samples = Vec::with_capacity(iters);
    let mut stats = JointStats::default();
    for _ in 0..iters {
        let start = Instant::now();
        stats = call();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let med = median(&mut samples);
    obs.observe("bench.sched.micros", implementation, med);
    obs.end(span, obs.wall_now());
    (med, stats)
}

/// Run the sweep over `sizes`, recording `bench.sched` spans on `obs`.
pub fn sched_bench_sizes(sizes: &[usize], obs: &Recorder) -> Vec<SchedBenchRow> {
    obs.name_track(Track::SCHEDULER_GROUP, "scheduler");
    let opts = JointOptions::default();
    let mut rows = Vec::new();
    for (i, &stages) in sizes.iter().enumerate() {
        let dag = random_dag(0xd177 + i as u64, &RandomDagConfig::sized(stages));
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = bench_cluster(stages);
        let iters = iters_for(stages);
        for (objective, obj_name) in [(Objective::Jct, "jct"), (Objective::Cost, "cost")] {
            let off = Recorder::disabled();
            let (ref_med, ref_stats) = timed(iters, obs, "reference", stages, obj_name, || {
                let (s, stats) =
                    joint_optimize_reference_with_stats(&dag, &model, &rm, objective, &opts, &off);
                std::hint::black_box(s);
                stats
            });
            let (inc_med, inc_stats) = timed(iters, obs, "incremental", stages, obj_name, || {
                let (s, stats) =
                    joint_optimize_with_stats(&dag, &model, &rm, objective, &opts, &off);
                std::hint::black_box(s);
                stats
            });
            for (implementation, med, stats, speedup) in [
                ("reference", ref_med, ref_stats, 1.0),
                ("incremental", inc_med, inc_stats, ref_med / inc_med),
            ] {
                rows.push(SchedBenchRow {
                    stages,
                    edges: dag.num_edges(),
                    objective: obj_name.to_string(),
                    implementation: implementation.to_string(),
                    median_micros: med,
                    rounds: stats.rounds,
                    candidates: stats.candidates,
                    commits: stats.commits,
                    dop_memo_hits: stats.dop_memo_hits,
                    speedup_vs_reference: speedup,
                });
            }
        }
    }
    rows
}

/// The full sweep (16 → 1024 stages, both objectives, both
/// implementations) — the source of `BENCH_sched.json`.
pub fn sched_bench() -> Vec<SchedBenchRow> {
    sched_bench_sizes(SCHED_BENCH_SIZES, &Recorder::disabled())
}

/// The CI smoke sweep (16/64/256 stages).
pub fn sched_bench_smoke() -> Vec<SchedBenchRow> {
    sched_bench_sizes(SCHED_SMOKE_SIZES, &Recorder::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep produces one row per (size, objective, implementation)
    /// and both implementations agree on the loop-shape counters (they
    /// evaluate the identical candidate sequence).
    #[test]
    fn smoke_rows_are_complete_and_loop_shapes_agree() {
        let sizes = [16usize, 48];
        let rows = sched_bench_sizes(&sizes, &Recorder::disabled());
        assert_eq!(rows.len(), sizes.len() * 2 * 2);
        for pair in rows.chunks(2) {
            let (r, i) = (&pair[0], &pair[1]);
            assert_eq!(r.implementation, "reference");
            assert_eq!(i.implementation, "incremental");
            assert_eq!((r.stages, &r.objective), (i.stages, &i.objective));
            assert_eq!(r.rounds, i.rounds, "{}/{}", r.stages, r.objective);
            assert_eq!(r.candidates, i.candidates, "{}/{}", r.stages, r.objective);
            assert_eq!(r.commits, i.commits, "{}/{}", r.stages, r.objective);
            assert!(i.speedup_vs_reference > 0.0);
            assert!(r.candidates >= r.commits);
        }
    }

    /// The wrapper spans land on the recorder: one `bench.sched` span
    /// per measurement, tagged with the implementation.
    #[test]
    fn bench_spans_are_recorded() {
        let obs = Recorder::new();
        let rows = sched_bench_sizes(&[16], &obs);
        let data = obs.finish();
        let spans: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "bench.sched")
            .collect();
        assert_eq!(spans.len(), rows.len());
        assert!(spans
            .iter()
            .all(|s| s.attr("impl").is_some() && s.end.is_finite()));
    }

    /// The headline claim, at a conservative threshold: at 512 stages the
    /// incremental optimizer is ≥3× faster than the reference (the ISSUE
    /// targets ≥10×; release runs land far above 3×, debug builds skew
    /// constant factors so the assertion is release-only).
    #[cfg(not(debug_assertions))]
    #[test]
    fn incremental_is_at_least_3x_faster_at_512_stages() {
        let rows = sched_bench_sizes(&[512], &Recorder::disabled());
        for pair in rows.chunks(2) {
            let (r, i) = (&pair[0], &pair[1]);
            assert!(
                i.speedup_vs_reference >= 3.0,
                "{}: reference {:.0}µs vs incremental {:.0}µs (speedup {:.1}×)",
                r.objective,
                r.median_micros,
                i.median_micros,
                i.speedup_vs_reference
            );
        }
    }
}
