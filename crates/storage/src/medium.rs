//! Storage media with transfer-time and persistence-cost models.

use std::fmt;

/// Where a piece of intermediate data travels or rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    /// Intra-server zero-copy shared memory (SPRIGHT-like).
    SharedMemory,
    /// Fast in-memory external storage (ElastiCache Redis-like).
    Redis,
    /// Elastic object storage (S3-like).
    S3,
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Medium::SharedMemory => "shared-memory",
            Medium::Redis => "redis",
            Medium::S3 => "s3",
        })
    }
}

/// Per-task transfer characteristics of a medium: a one-off request latency
/// plus streaming at a fixed per-task bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed per-request latency, seconds.
    pub latency: f64,
    /// Per-task streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl TransferModel {
    /// Time for one task to move `bytes` through this medium.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Calibrated defaults per medium. Absolute values are representative
    /// of the paper's environment (S3 ~80 MB/s per function with tens of ms
    /// latency; Redis several hundred MB/s with sub-ms latency; SPRIGHT
    /// shared memory "microsecond-level latency, no matter the data size"),
    /// preserving the orders-of-magnitude gaps that drive scheduling.
    pub fn for_medium(m: Medium) -> Self {
        match m {
            // Zero-copy: latency only, effectively infinite bandwidth.
            Medium::SharedMemory => TransferModel {
                latency: 2e-6,
                bandwidth: 1e15,
            },
            // Redis is sub-millisecond per request, but two cache nodes
            // serve hundreds of concurrent functions: the per-task
            // streaming rate is contention-bound well below the NIC rate.
            Medium::Redis => TransferModel {
                latency: 1.5e-3,
                bandwidth: 150e6,
            },
            Medium::S3 => TransferModel {
                latency: 40e-3,
                bandwidth: 80e6,
            },
        }
    }
}

/// Persistence pricing of a medium, in dollars per GB·second (relative
/// units; only ratios matter for the normalized-cost figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price per GB of data resident for one second.
    pub gb_second_price: f64,
}

impl CostModel {
    /// Cost of keeping `bytes` resident for `seconds`.
    pub fn persistence_cost(&self, bytes: u64, seconds: f64) -> f64 {
        self.gb_second_price * (bytes as f64 / 1e9) * seconds
    }

    /// Calibrated defaults: memory (shared memory, Redis) dominates; S3 is
    /// >1000× cheaper per GB·s and is ignored, exactly as the paper does.
    pub fn for_medium(m: Medium) -> Self {
        match m {
            Medium::SharedMemory => CostModel {
                gb_second_price: 1.0,
            },
            Medium::Redis => CostModel {
                gb_second_price: 1.2, // managed cache premium
            },
            Medium::S3 => CostModel {
                gb_second_price: 0.0, // ignored per §6 (priced >1000x less)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_latency_plus_stream() {
        let t = TransferModel {
            latency: 0.01,
            bandwidth: 100e6,
        };
        assert!((t.transfer_time(100_000_000) - 1.01).abs() < 1e-9);
        assert!((t.transfer_time(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn media_ordering_holds() {
        // Shared memory ≪ Redis ≪ S3 for any realistic size.
        for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
            let sm = TransferModel::for_medium(Medium::SharedMemory).transfer_time(bytes);
            let rd = TransferModel::for_medium(Medium::Redis).transfer_time(bytes);
            let s3 = TransferModel::for_medium(Medium::S3).transfer_time(bytes);
            assert!(sm < rd && rd < s3, "bytes={bytes}: {sm} {rd} {s3}");
        }
    }

    #[test]
    fn shared_memory_size_insensitive() {
        let m = TransferModel::for_medium(Medium::SharedMemory);
        let small = m.transfer_time(1 << 10);
        let huge = m.transfer_time(1 << 40);
        assert!((huge - small) < 1e-2, "zero-copy must not scale with size");
    }

    #[test]
    fn s3_persistence_free_memory_priced() {
        let gb = 1_000_000_000u64;
        assert_eq!(CostModel::for_medium(Medium::S3).persistence_cost(gb, 100.0), 0.0);
        let sm = CostModel::for_medium(Medium::SharedMemory).persistence_cost(gb, 2.0);
        assert!((sm - 2.0).abs() < 1e-9);
        let rd = CostModel::for_medium(Medium::Redis).persistence_cost(gb, 2.0);
        assert!(rd > sm);
    }

    #[test]
    fn display_names() {
        assert_eq!(Medium::SharedMemory.to_string(), "shared-memory");
        assert_eq!(Medium::Redis.to_string(), "redis");
        assert_eq!(Medium::S3.to_string(), "s3");
    }
}
