//! Control-plane write-ahead journal and crash recovery.
//!
//! Ditto's scheduler (§4) is a single coordinator: every schedule commit,
//! replan splice, failover and object commit is one process's decision,
//! and losing that process loses the job. This module makes the control
//! plane durable: both engines (the frozen fault engine and the adaptive
//! engine) write an append-only, CRC-checksummed, length-prefixed journal
//! of their decisions through one batched [`JournalWriter`], and
//! [`recover`] / [`JournalSession::resume`] rebuild engine state from the
//! durable prefix so a crashed job *resumes* from its last completed
//! stage instead of restarting.
//!
//! Format: a 9-byte header (`DITTOWAL` + version) followed by frames of
//! `[len: u32 LE][crc64: u64 LE][payload]`, where `crc64` is
//! [`checksum64`] of the payload. A coordinator crash can tear the tail
//! mid-frame; [`decode_journal`] detects the torn tail (truncation, bad
//! length, or checksum mismatch) with exact record-index provenance and
//! truncates recovery to the durable prefix.
//!
//! Recovery invariants (DESIGN.md §6k):
//!
//! * **exactly-once commits** — re-execution after a crash is
//!   at-least-once; the [`CommitLedger`] keyed by `(object,
//!   attempt_epoch)` deduplicates re-delivered commits and hard-fails on
//!   value conflicts;
//! * **bit-identical results** — restored stages replay absolute
//!   checkpointed state ([`StageCheckpoint`]) and re-simulated suffix
//!   stages run the same deterministic engine, so final metrics, task
//!   timelines and replan decisions equal the crash-free run bit for bit;
//! * **replayed decisions, re-run gates** — on resume the adaptive engine
//!   re-runs its drift gates deterministically and substitutes journaled
//!   [`ReplanRecord`]s for the optimizer calls they gate, so a replayed
//!   splice is applied without re-optimizing (bounded recovery work) and
//!   any divergence from the journal is a hard [`ExecError::Journal`].

use crate::adaptive::{ReplanRecord, ReplanTrigger};
use crate::error::ExecError;
use crate::faults::{
    finish_pass, medium_label, outcome_label, ready_time, sim_stage, slot_pair, AttemptOutcome,
    AttemptRecord, FaultPlan, FaultStats, RecoveryPolicy, ReschedulingContext, SimPass, SimState,
};
use crate::groundtruth::GroundTruth;
use crate::metrics::JobMetrics;
use crate::queue::{ReadyQueue, TieBreak};
use crate::trace::{ExecutionTrace, TaskTrace};
use ditto_cluster::ServerId;
use ditto_core::{joint_optimize_traced, Schedule, TaskPlacement};
use ditto_dag::{JobDag, StageId};
use ditto_obs::{Recorder, StepTimings, TraceData, Track};
use ditto_storage::{checksum64, CommitLedger, CommitOutcome, Medium};
use ditto_timemodel::StepCorrections;
use std::collections::{BTreeMap, VecDeque};

/// Journal file magic: the first 8 bytes of every journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"DITTOWAL";
/// Journal format version (header byte 9).
pub const JOURNAL_VERSION: u8 = 1;
/// Header length: magic + version byte.
pub const JOURNAL_HEADER_LEN: usize = 9;
/// Seed for the per-frame payload checksum.
pub const JOURNAL_SEED: u64 = 0xD177_0A11_0F4A_C0DE;
/// Seed for the schedule fingerprint recorded by `ScheduleCommit`.
pub const SCHEDULE_FP_SEED: u64 = 0x00D1_7705_C4ED;
/// Maximum frame payload size accepted by the decoder.
pub const MAX_FRAME: usize = 64 << 20;

// ---------------------------------------------------------------------
// Little-endian put/take codec helpers
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v.as_bytes());
}

/// Cursor-based payload decoder; every taker errors on underrun.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!(
                "payload underrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|e| format!("bad utf8 string: {e}"))
    }

    fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------

/// Which engine wrote a journal (recorded in `JobAdmit` so recovery
/// resumes with the same engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The frozen-schedule fault engine ([`try_simulate_with_faults_journaled`]).
    Frozen,
    /// The adaptive engine ([`try_simulate_adaptive_journaled`]).
    Adaptive,
    /// The physical thread-pool runtime (`crate::runner`).
    Runner,
}

impl EngineKind {
    fn to_u8(self) -> u8 {
        match self {
            EngineKind::Frozen => 0,
            EngineKind::Adaptive => 1,
            EngineKind::Runner => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(EngineKind::Frozen),
            1 => Ok(EngineKind::Adaptive),
            2 => Ok(EngineKind::Runner),
            b => Err(format!("bad engine kind {b}")),
        }
    }

    /// Human-readable engine label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Frozen => "frozen",
            EngineKind::Adaptive => "adaptive",
            EngineKind::Runner => "runner",
        }
    }
}

/// One lineage re-execution paid by a reader stage: recorded in the
/// reader's [`StageCheckpoint`] so a restored stage re-emits the same
/// fault/recovery telemetry the live simulation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineageHit {
    /// Stage whose read detected the fault and paid the wait.
    pub reader_stage: u32,
    /// Producer stage of the lost/corrupt object.
    pub src_stage: u32,
    /// Producer task of the lost/corrupt object.
    pub src_task: u32,
    /// `true` for a checksum corruption, `false` for a loss.
    pub corrupt: bool,
    /// Sim time the fault was detected (the reader's pre-recovery ready).
    pub detect_at: f64,
    /// Re-execution time of the producing task, seconds.
    pub reexec_s: f64,
}

/// Why [`decode_journal`] stopped before the end of the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// The remaining bytes are shorter than the frame they announce (the
    /// classic torn tail of a crash mid-append).
    Truncated,
    /// A full frame was present but its payload failed the CRC check.
    ChecksumMismatch,
    /// The frame length field is zero or beyond [`MAX_FRAME`].
    BadLength,
}

impl TornReason {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TornReason::Truncated => "truncated",
            TornReason::ChecksumMismatch => "checksum-mismatch",
            TornReason::BadLength => "bad-length",
        }
    }
}

/// Exact provenance of a torn or corrupt journal tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Index of the first unreadable record (== count of durable records).
    pub at_record: u64,
    /// Byte length of the durable prefix (header + intact frames).
    pub byte_offset: usize,
    /// What was wrong with the tail.
    pub reason: TornReason,
}

/// A decoded journal: the durable record prefix plus tail provenance.
#[derive(Debug, Clone)]
pub struct DecodedJournal {
    /// All intact records, in append order.
    pub records: Vec<JournalRecord>,
    /// Present iff the byte stream did not end exactly on a frame
    /// boundary.
    pub torn: Option<TornTail>,
    /// Byte length of the durable prefix (equals the input length when
    /// the journal is clean).
    pub durable_len: usize,
}

/// Absolute post-state of one completed stage: everything the simulator
/// wrote into its `SimState` while running it, so recovery can restore the
/// stage wholesale instead of re-simulating it. Checkpoints form a strict
/// prefix of the deterministic stage pop order, so whole-vector restores
/// (fault buckets, edge media, heal map) are safe: every restore happens
/// before any re-simulation.
#[derive(Debug, Clone)]
pub struct StageCheckpoint {
    /// Stage index.
    pub stage: u32,
    /// Stage end (latest task end).
    pub end: f64,
    /// Earliest task write start (the pipelining gate).
    pub write_start: f64,
    /// Latest task compute start (end of reads).
    pub read_end: f64,
    /// Stage container launch (earliest attempt launch).
    pub launch: f64,
    /// Mean as-executed step durations (drift-detector food).
    pub observed: StepTimings,
    /// Mean clean step durations (the detector's expected side).
    pub clean: StepTimings,
    /// Clean single-attempt duration per task (lineage re-execution cost).
    pub task_clean: Vec<f64>,
    /// The *whole* per-edge medium vector at stage completion
    /// (`medium_code`-encoded, 255 = unset).
    pub edge_medium: Vec<u8>,
    /// The whole lineage-healing map: `(stage, task, heal_end)`.
    pub heal_end: Vec<(u32, u32, f64)>,
    /// All per-stage fault buckets, absolute (lineage charges hit the
    /// *producer* stage's bucket, so this stage's completion can mutate
    /// any earlier bucket).
    pub buckets: Vec<FaultStats>,
    /// Lineage re-executions this stage paid for as a reader.
    pub lineage: Vec<LineageHit>,
    /// Winning task timelines of this stage.
    pub tasks: Vec<TaskTrace>,
    /// Attempt history of this stage (empty per task when fault-free).
    pub attempts: Vec<AttemptRecord>,
}

/// One journaled control-plane decision.
///
/// No `PartialEq`: [`Schedule`] does not compare; tests compare encoded
/// bytes instead, which is the stronger statement anyway.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// Job admission: DAG shape and the engine that will run it.
    JobAdmit {
        /// Number of DAG stages.
        stages: u32,
        /// Number of DAG edges.
        edges: u32,
        /// Engine writing this journal.
        engine: EngineKind,
        /// Scheduler name of the committed schedule.
        scheduler: String,
    },
    /// The initial schedule commit (decision 0 of every run).
    ScheduleCommit {
        /// Monotonic decision sequence number (always 0 here).
        decision_seq: u64,
        /// [`checksum64`] fingerprint of the encoded schedule.
        schedule_fp: u64,
    },
    /// One object commit: a task's surviving output became durable.
    ObjectCommit {
        /// Producer stage.
        stage: u32,
        /// Producer task.
        task: u32,
        /// Attempt epoch of the surviving execution.
        attempt_epoch: u32,
        /// Value fingerprint (sim: commit-instant bits; runner: output
        /// table checksum).
        value: u64,
    },
    /// A stage completed; carries its full restore checkpoint.
    StageComplete(Box<StageCheckpoint>),
    /// An adaptive suffix replan decision (applied or rejected).
    Replan {
        /// The decision record, as it lands on the execution trace.
        record: ReplanRecord,
        /// Suffix mask at the decision (`true` = stage not yet started).
        suffix: Vec<bool>,
        /// The spliced schedule, present iff the replan was applied.
        schedule: Option<Schedule>,
    },
    /// A failure-aware failover reschedule (frozen engine).
    Failover {
        /// Monotonic decision sequence number.
        decision_seq: u64,
        /// Failed server index.
        failed_server: u32,
        /// Failure instant, sim seconds.
        at_time: f64,
        /// Suffix mask (`true` = stage had not launched at the failure).
        suffix: Vec<bool>,
        /// The spliced hybrid schedule the suffix runs under.
        schedule: Schedule,
    },
    /// One physical task attempt (runner engine; wall-clock times).
    TaskAttempt {
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// Attempt number.
        attempt: u32,
        /// Outcome code (see [`AttemptOutcome`] codec).
        outcome: u8,
        /// Attempt start, wall seconds since run start.
        start: f64,
        /// Attempt end, wall seconds since run start.
        end: f64,
    },
    /// The job finished with these final metrics.
    JobComplete {
        /// Final metrics of the run.
        metrics: JobMetrics,
    },
    /// A compaction snapshot: the entire durable prefix folded into one
    /// record (see [`compact_journal`]).
    Snapshot(Vec<JournalRecord>),
}

// ---------------------------------------------------------------------
// Sub-codecs
// ---------------------------------------------------------------------

fn medium_code(m: Option<Medium>) -> u8 {
    match m {
        Some(Medium::SharedMemory) => 0,
        Some(Medium::Redis) => 1,
        Some(Medium::S3) => 2,
        None => 255,
    }
}

fn medium_from_code(c: u8) -> Result<Option<Medium>, String> {
    match c {
        0 => Ok(Some(Medium::SharedMemory)),
        1 => Ok(Some(Medium::Redis)),
        2 => Ok(Some(Medium::S3)),
        255 => Ok(None),
        b => Err(format!("bad medium code {b}")),
    }
}

fn outcome_code(o: AttemptOutcome) -> u8 {
    match o {
        AttemptOutcome::Completed => 0,
        AttemptOutcome::Crashed => 1,
        AttemptOutcome::ServerLost => 2,
        AttemptOutcome::Superseded => 3,
    }
}

fn outcome_from_code(c: u8) -> Result<AttemptOutcome, String> {
    match c {
        0 => Ok(AttemptOutcome::Completed),
        1 => Ok(AttemptOutcome::Crashed),
        2 => Ok(AttemptOutcome::ServerLost),
        3 => Ok(AttemptOutcome::Superseded),
        b => Err(format!("bad outcome code {b}")),
    }
}

fn enc_timings(buf: &mut Vec<u8>, t: &StepTimings) {
    put_f64(buf, t.setup);
    put_f64(buf, t.read);
    put_f64(buf, t.compute);
    put_f64(buf, t.write);
}

fn dec_timings(d: &mut Dec<'_>) -> Result<StepTimings, String> {
    Ok(StepTimings {
        setup: d.f64()?,
        read: d.f64()?,
        compute: d.f64()?,
        write: d.f64()?,
    })
}

fn enc_stats(buf: &mut Vec<u8>, s: &FaultStats) {
    put_u32(buf, s.extra_attempts);
    put_f64(buf, s.wasted_gb_s);
    put_f64(buf, s.recovery_delay_s);
    put_u32(buf, s.server_failures);
    put_u32(buf, s.rescheduled_stages);
    put_u32(buf, s.speculative_copies);
    put_u32(buf, s.object_losses);
    put_u32(buf, s.object_corruptions);
    put_u32(buf, s.lineage_reexecs);
    put_u64(buf, s.storage_retries);
}

fn dec_stats(d: &mut Dec<'_>) -> Result<FaultStats, String> {
    Ok(FaultStats {
        extra_attempts: d.u32()?,
        wasted_gb_s: d.f64()?,
        recovery_delay_s: d.f64()?,
        server_failures: d.u32()?,
        rescheduled_stages: d.u32()?,
        speculative_copies: d.u32()?,
        object_losses: d.u32()?,
        object_corruptions: d.u32()?,
        lineage_reexecs: d.u32()?,
        storage_retries: d.u64()?,
    })
}

fn enc_metrics(buf: &mut Vec<u8>, m: &JobMetrics) {
    put_f64(buf, m.jct);
    put_f64(buf, m.compute_cost);
    put_f64(buf, m.storage_cost);
    enc_stats(buf, &m.faults);
}

fn dec_metrics(d: &mut Dec<'_>) -> Result<JobMetrics, String> {
    Ok(JobMetrics {
        jct: d.f64()?,
        compute_cost: d.f64()?,
        storage_cost: d.f64()?,
        faults: dec_stats(d)?,
    })
}

fn enc_attempt(buf: &mut Vec<u8>, a: &AttemptRecord) {
    put_u32(buf, a.stage);
    put_u32(buf, a.task);
    put_u32(buf, a.attempt);
    put_u32(buf, a.server.0);
    put_f64(buf, a.start);
    put_f64(buf, a.end);
    put_u8(buf, outcome_code(a.outcome));
    put_f64(buf, a.wasted_gb_s);
    put_bool(buf, a.speculative);
}

fn dec_attempt(d: &mut Dec<'_>) -> Result<AttemptRecord, String> {
    Ok(AttemptRecord {
        stage: d.u32()?,
        task: d.u32()?,
        attempt: d.u32()?,
        server: ServerId(d.u32()?),
        start: d.f64()?,
        end: d.f64()?,
        outcome: outcome_from_code(d.u8()?)?,
        wasted_gb_s: d.f64()?,
        speculative: d.boolean()?,
    })
}

fn enc_task(buf: &mut Vec<u8>, t: &TaskTrace) {
    put_u32(buf, t.stage);
    put_u32(buf, t.task);
    put_u32(buf, t.server.0);
    put_f64(buf, t.launch);
    put_f64(buf, t.read_start);
    put_f64(buf, t.compute_start);
    put_f64(buf, t.write_start);
    put_f64(buf, t.end);
    put_f64(buf, t.memory_gb);
}

fn dec_task(d: &mut Dec<'_>) -> Result<TaskTrace, String> {
    Ok(TaskTrace {
        stage: d.u32()?,
        task: d.u32()?,
        server: ServerId(d.u32()?),
        launch: d.f64()?,
        read_start: d.f64()?,
        compute_start: d.f64()?,
        write_start: d.f64()?,
        end: d.f64()?,
        memory_gb: d.f64()?,
    })
}

fn enc_lineage(buf: &mut Vec<u8>, h: &LineageHit) {
    put_u32(buf, h.reader_stage);
    put_u32(buf, h.src_stage);
    put_u32(buf, h.src_task);
    put_bool(buf, h.corrupt);
    put_f64(buf, h.detect_at);
    put_f64(buf, h.reexec_s);
}

fn dec_lineage(d: &mut Dec<'_>) -> Result<LineageHit, String> {
    Ok(LineageHit {
        reader_stage: d.u32()?,
        src_stage: d.u32()?,
        src_task: d.u32()?,
        corrupt: d.boolean()?,
        detect_at: d.f64()?,
        reexec_s: d.f64()?,
    })
}

/// Encode a [`Schedule`] (also the `ScheduleCommit` fingerprint domain).
fn enc_schedule(buf: &mut Vec<u8>, s: &Schedule) {
    put_str(buf, &s.scheduler);
    put_u32(buf, s.dop.len() as u32);
    for &d in &s.dop {
        put_u32(buf, d);
    }
    put_u32(buf, s.groups.len() as u32);
    for g in &s.groups {
        put_u32(buf, g.len() as u32);
        for &st in g {
            put_u32(buf, st.0);
        }
    }
    put_u32(buf, s.group_of.len() as u32);
    for &g in &s.group_of {
        put_u32(buf, g as u32);
    }
    put_u32(buf, s.colocated.len() as u32);
    for &c in &s.colocated {
        put_bool(buf, c);
    }
    put_u32(buf, s.placement.len() as u32);
    for p in &s.placement {
        match p {
            TaskPlacement::Single(srv) => {
                put_u8(buf, 0);
                put_u32(buf, srv.0);
            }
            TaskPlacement::Spread(parts) => {
                put_u8(buf, 1);
                put_u32(buf, parts.len() as u32);
                for &(srv, count) in parts {
                    put_u32(buf, srv.0);
                    put_u32(buf, count);
                }
            }
        }
    }
}

fn dec_schedule(d: &mut Dec<'_>) -> Result<Schedule, String> {
    let scheduler = d.string()?;
    let dop = (0..d.u32()?).map(|_| d.u32()).collect::<Result<_, _>>()?;
    let n_groups = d.u32()?;
    let mut groups = Vec::with_capacity(n_groups as usize);
    for _ in 0..n_groups {
        let len = d.u32()?;
        let mut g = Vec::with_capacity(len as usize);
        for _ in 0..len {
            g.push(StageId(d.u32()?));
        }
        groups.push(g);
    }
    let group_of = (0..d.u32()?)
        .map(|_| d.u32().map(|v| v as usize))
        .collect::<Result<_, _>>()?;
    let colocated = (0..d.u32()?).map(|_| d.boolean()).collect::<Result<_, _>>()?;
    let n_place = d.u32()?;
    let mut placement = Vec::with_capacity(n_place as usize);
    for _ in 0..n_place {
        placement.push(match d.u8()? {
            0 => TaskPlacement::Single(ServerId(d.u32()?)),
            1 => {
                let len = d.u32()?;
                let mut parts = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    parts.push((ServerId(d.u32()?), d.u32()?));
                }
                TaskPlacement::Spread(parts)
            }
            b => return Err(format!("bad placement tag {b}")),
        });
    }
    Ok(Schedule {
        scheduler,
        dop,
        groups,
        group_of,
        colocated,
        placement,
    })
}

/// The `ScheduleCommit` fingerprint of a schedule.
pub fn schedule_fingerprint(s: &Schedule) -> u64 {
    let mut buf = Vec::new();
    enc_schedule(&mut buf, s);
    checksum64(&buf, SCHEDULE_FP_SEED)
}

fn trigger_code(t: ReplanTrigger) -> u8 {
    match t {
        ReplanTrigger::Drift => 0,
        ReplanTrigger::ObjectRecovery => 1,
    }
}

fn trigger_from_code(c: u8) -> Result<ReplanTrigger, String> {
    match c {
        0 => Ok(ReplanTrigger::Drift),
        1 => Ok(ReplanTrigger::ObjectRecovery),
        b => Err(format!("bad replan trigger {b}")),
    }
}

fn enc_replan(buf: &mut Vec<u8>, r: &ReplanRecord) {
    put_u8(buf, trigger_code(r.trigger));
    put_u32(buf, r.at_stage);
    put_f64(buf, r.sim_time);
    put_f64(buf, r.factor);
    put_f64(buf, r.corrections.read);
    put_f64(buf, r.corrections.compute);
    put_f64(buf, r.corrections.write);
    put_u32(buf, r.suffix_stages);
    put_f64(buf, r.old_predicted_jct);
    put_f64(buf, r.new_predicted_jct);
    put_f64(buf, r.risk_penalty);
    put_bool(buf, r.audit_clean);
    put_bool(buf, r.applied);
    put_u64(buf, r.decision_seq);
}

fn dec_replan(d: &mut Dec<'_>) -> Result<ReplanRecord, String> {
    Ok(ReplanRecord {
        trigger: trigger_from_code(d.u8()?)?,
        at_stage: d.u32()?,
        sim_time: d.f64()?,
        factor: d.f64()?,
        corrections: StepCorrections {
            read: d.f64()?,
            compute: d.f64()?,
            write: d.f64()?,
        },
        suffix_stages: d.u32()?,
        old_predicted_jct: d.f64()?,
        new_predicted_jct: d.f64()?,
        risk_penalty: d.f64()?,
        audit_clean: d.boolean()?,
        applied: d.boolean()?,
        decision_seq: d.u64()?,
    })
}

fn enc_bools(buf: &mut Vec<u8>, v: &[bool]) {
    put_u32(buf, v.len() as u32);
    for &b in v {
        put_bool(buf, b);
    }
}

fn dec_bools(d: &mut Dec<'_>) -> Result<Vec<bool>, String> {
    (0..d.u32()?).map(|_| d.boolean()).collect()
}

fn enc_checkpoint(buf: &mut Vec<u8>, cp: &StageCheckpoint) {
    put_u32(buf, cp.stage);
    put_f64(buf, cp.end);
    put_f64(buf, cp.write_start);
    put_f64(buf, cp.read_end);
    put_f64(buf, cp.launch);
    enc_timings(buf, &cp.observed);
    enc_timings(buf, &cp.clean);
    put_u32(buf, cp.task_clean.len() as u32);
    for &t in &cp.task_clean {
        put_f64(buf, t);
    }
    put_u32(buf, cp.edge_medium.len() as u32);
    buf.extend_from_slice(&cp.edge_medium);
    put_u32(buf, cp.heal_end.len() as u32);
    for &(s, t, h) in &cp.heal_end {
        put_u32(buf, s);
        put_u32(buf, t);
        put_f64(buf, h);
    }
    put_u32(buf, cp.buckets.len() as u32);
    for b in &cp.buckets {
        enc_stats(buf, b);
    }
    put_u32(buf, cp.lineage.len() as u32);
    for h in &cp.lineage {
        enc_lineage(buf, h);
    }
    put_u32(buf, cp.tasks.len() as u32);
    for t in &cp.tasks {
        enc_task(buf, t);
    }
    put_u32(buf, cp.attempts.len() as u32);
    for a in &cp.attempts {
        enc_attempt(buf, a);
    }
}

fn dec_checkpoint(d: &mut Dec<'_>) -> Result<StageCheckpoint, String> {
    let stage = d.u32()?;
    let end = d.f64()?;
    let write_start = d.f64()?;
    let read_end = d.f64()?;
    let launch = d.f64()?;
    let observed = dec_timings(d)?;
    let clean = dec_timings(d)?;
    let task_clean = (0..d.u32()?).map(|_| d.f64()).collect::<Result<_, _>>()?;
    let n_media = d.u32()? as usize;
    let edge_medium = d.bytes(n_media)?.to_vec();
    for &c in &edge_medium {
        medium_from_code(c)?;
    }
    let n_heal = d.u32()?;
    let mut heal_end = Vec::with_capacity(n_heal as usize);
    for _ in 0..n_heal {
        heal_end.push((d.u32()?, d.u32()?, d.f64()?));
    }
    let buckets = (0..d.u32()?).map(|_| dec_stats(d)).collect::<Result<_, _>>()?;
    let lineage = (0..d.u32()?).map(|_| dec_lineage(d)).collect::<Result<_, _>>()?;
    let tasks = (0..d.u32()?).map(|_| dec_task(d)).collect::<Result<_, _>>()?;
    let attempts = (0..d.u32()?).map(|_| dec_attempt(d)).collect::<Result<_, _>>()?;
    Ok(StageCheckpoint {
        stage,
        end,
        write_start,
        read_end,
        launch,
        observed,
        clean,
        task_clean,
        edge_medium,
        heal_end,
        buckets,
        lineage,
        tasks,
        attempts,
    })
}

// ---------------------------------------------------------------------
// Record codec + framing
// ---------------------------------------------------------------------

/// Encode one record's frame payload (tag byte + fields).
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    match rec {
        JournalRecord::JobAdmit {
            stages,
            edges,
            engine,
            scheduler,
        } => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, *stages);
            put_u32(&mut buf, *edges);
            put_u8(&mut buf, engine.to_u8());
            put_str(&mut buf, scheduler);
        }
        JournalRecord::ScheduleCommit {
            decision_seq,
            schedule_fp,
        } => {
            put_u8(&mut buf, 2);
            put_u64(&mut buf, *decision_seq);
            put_u64(&mut buf, *schedule_fp);
        }
        JournalRecord::ObjectCommit {
            stage,
            task,
            attempt_epoch,
            value,
        } => {
            put_u8(&mut buf, 3);
            put_u32(&mut buf, *stage);
            put_u32(&mut buf, *task);
            put_u32(&mut buf, *attempt_epoch);
            put_u64(&mut buf, *value);
        }
        JournalRecord::StageComplete(cp) => {
            put_u8(&mut buf, 4);
            enc_checkpoint(&mut buf, cp);
        }
        JournalRecord::Replan {
            record,
            suffix,
            schedule,
        } => {
            put_u8(&mut buf, 5);
            enc_replan(&mut buf, record);
            enc_bools(&mut buf, suffix);
            match schedule {
                None => put_u8(&mut buf, 0),
                Some(s) => {
                    put_u8(&mut buf, 1);
                    enc_schedule(&mut buf, s);
                }
            }
        }
        JournalRecord::Failover {
            decision_seq,
            failed_server,
            at_time,
            suffix,
            schedule,
        } => {
            put_u8(&mut buf, 6);
            put_u64(&mut buf, *decision_seq);
            put_u32(&mut buf, *failed_server);
            put_f64(&mut buf, *at_time);
            enc_bools(&mut buf, suffix);
            enc_schedule(&mut buf, schedule);
        }
        JournalRecord::TaskAttempt {
            stage,
            task,
            attempt,
            outcome,
            start,
            end,
        } => {
            put_u8(&mut buf, 7);
            put_u32(&mut buf, *stage);
            put_u32(&mut buf, *task);
            put_u32(&mut buf, *attempt);
            put_u8(&mut buf, *outcome);
            put_f64(&mut buf, *start);
            put_f64(&mut buf, *end);
        }
        JournalRecord::JobComplete { metrics } => {
            put_u8(&mut buf, 8);
            enc_metrics(&mut buf, metrics);
        }
        JournalRecord::Snapshot(inner) => {
            put_u8(&mut buf, 9);
            put_u32(&mut buf, inner.len() as u32);
            for rec in inner {
                let payload = encode_record(rec);
                put_u32(&mut buf, payload.len() as u32);
                buf.extend_from_slice(&payload);
            }
        }
    }
    buf
}

/// Decode one frame payload back into a record. Errors (including
/// trailing garbage after a well-formed record) mean an encoder bug or
/// memory corruption *inside* a CRC-valid frame — callers treat that as a
/// hard journal error, not a torn tail.
pub fn decode_record(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut d = Dec::new(payload);
    let rec = decode_record_inner(&mut d)?;
    if !d.finished() {
        return Err(format!(
            "{} trailing bytes after record",
            payload.len() - d.pos
        ));
    }
    Ok(rec)
}

fn decode_record_inner(d: &mut Dec<'_>) -> Result<JournalRecord, String> {
    match d.u8()? {
        1 => Ok(JournalRecord::JobAdmit {
            stages: d.u32()?,
            edges: d.u32()?,
            engine: EngineKind::from_u8(d.u8()?)?,
            scheduler: d.string()?,
        }),
        2 => Ok(JournalRecord::ScheduleCommit {
            decision_seq: d.u64()?,
            schedule_fp: d.u64()?,
        }),
        3 => Ok(JournalRecord::ObjectCommit {
            stage: d.u32()?,
            task: d.u32()?,
            attempt_epoch: d.u32()?,
            value: d.u64()?,
        }),
        4 => Ok(JournalRecord::StageComplete(Box::new(dec_checkpoint(d)?))),
        5 => {
            let record = dec_replan(d)?;
            let suffix = dec_bools(d)?;
            let schedule = match d.u8()? {
                0 => None,
                1 => Some(dec_schedule(d)?),
                b => return Err(format!("bad option tag {b}")),
            };
            Ok(JournalRecord::Replan {
                record,
                suffix,
                schedule,
            })
        }
        6 => Ok(JournalRecord::Failover {
            decision_seq: d.u64()?,
            failed_server: d.u32()?,
            at_time: d.f64()?,
            suffix: dec_bools(d)?,
            schedule: dec_schedule(d)?,
        }),
        7 => Ok(JournalRecord::TaskAttempt {
            stage: d.u32()?,
            task: d.u32()?,
            attempt: d.u32()?,
            outcome: d.u8()?,
            start: d.f64()?,
            end: d.f64()?,
        }),
        8 => Ok(JournalRecord::JobComplete {
            metrics: dec_metrics(d)?,
        }),
        9 => {
            let count = d.u32()?;
            let mut inner = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let len = d.u32()? as usize;
                let raw = d.bytes(len)?;
                inner.push(decode_record(raw)?);
            }
            Ok(JournalRecord::Snapshot(inner))
        }
        b => Err(format!("unknown record tag {b}")),
    }
}

fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    put_u32(buf, payload.len() as u32);
    put_u64(buf, checksum64(payload, JOURNAL_SEED));
    buf.extend_from_slice(payload);
}

/// Decode a journal byte stream: header check, then frames until the end
/// or the first torn/corrupt frame. A bad header is a hard error; a bad
/// *tail* is expected after a crash and reported as [`TornTail`] with the
/// exact record index and durable byte offset.
pub fn decode_journal(bytes: &[u8]) -> Result<DecodedJournal, ExecError> {
    if bytes.len() < JOURNAL_HEADER_LEN || bytes[..8] != JOURNAL_MAGIC {
        return Err(ExecError::Journal("missing DITTOWAL header".into()));
    }
    if bytes[8] != JOURNAL_VERSION {
        return Err(ExecError::Journal(format!(
            "unsupported journal version {}",
            bytes[8]
        )));
    }
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN;
    let mut torn = None;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        let tear = |reason| TornTail {
            at_record: records.len() as u64,
            byte_offset: pos,
            reason,
        };
        if rem < 12 {
            torn = Some(tear(TornReason::Truncated));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME {
            torn = Some(tear(TornReason::BadLength));
            break;
        }
        if len > rem - 12 {
            torn = Some(tear(TornReason::Truncated));
            break;
        }
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload = &bytes[pos + 12..pos + 12 + len];
        if checksum64(payload, JOURNAL_SEED) != crc {
            torn = Some(tear(TornReason::ChecksumMismatch));
            break;
        }
        let rec = decode_record(payload).map_err(|e| {
            ExecError::Journal(format!("record {} is CRC-valid but malformed: {e}", records.len()))
        })?;
        records.push(rec);
        pos += 12 + len;
    }
    let durable_len = torn.map_or(bytes.len(), |t| t.byte_offset);
    Ok(DecodedJournal {
        records,
        torn,
        durable_len,
    })
}

/// Flatten a record stream: compaction snapshots expand in place.
fn flatten(records: &[JournalRecord]) -> Vec<JournalRecord> {
    let mut out = Vec::with_capacity(records.len());
    for rec in records {
        match rec {
            JournalRecord::Snapshot(inner) => out.extend(inner.iter().cloned()),
            other => out.push(other.clone()),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Validation and cross-checking (`ditto-audit journal`)
// ---------------------------------------------------------------------

/// Structural validation of a decoded record stream. Returns
/// human-readable findings (empty = clean). Checks admission/commit
/// ordering, exactly-once object commits, per-stage completion, and the
/// monotonic decision sequence shared by replans and failovers.
pub fn validate_journal(records: &[JournalRecord]) -> Vec<String> {
    let mut findings = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if let JournalRecord::Snapshot(inner) = rec {
            if i != 0 {
                findings.push(format!("record {i}: snapshot not at journal head"));
            }
            if inner.iter().any(|r| matches!(r, JournalRecord::Snapshot(_))) {
                findings.push(format!("record {i}: nested snapshot"));
            }
        }
    }
    let flat = flatten(records);
    if flat.is_empty() {
        findings.push("journal holds no records".into());
        return findings;
    }
    if !matches!(flat[0], JournalRecord::JobAdmit { .. }) {
        findings.push("record 0 is not job-admit".into());
    }
    let mut admits = 0u32;
    let mut schedule_commits = 0u32;
    let mut schedule_committed_at: Option<usize> = None;
    let mut commits: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    let mut commits_per_stage: BTreeMap<u32, u32> = BTreeMap::new();
    let mut completed: BTreeMap<u32, (usize, usize)> = BTreeMap::new(); // stage -> (index, tasks)
    let mut last_seq = 0u64;
    let mut complete_at: Option<usize> = None;
    for (i, rec) in flat.iter().enumerate() {
        let needs_schedule = matches!(
            rec,
            JournalRecord::ObjectCommit { .. }
                | JournalRecord::StageComplete(_)
                | JournalRecord::Replan { .. }
                | JournalRecord::Failover { .. }
        );
        if needs_schedule && schedule_committed_at.is_none() {
            findings.push(format!("record {i}: precedes the schedule commit"));
        }
        match rec {
            JournalRecord::JobAdmit { .. } => {
                admits += 1;
                if i != 0 {
                    findings.push(format!("record {i}: duplicate job-admit"));
                }
            }
            JournalRecord::ScheduleCommit { decision_seq, .. } => {
                schedule_commits += 1;
                schedule_committed_at = Some(i);
                if *decision_seq != 0 {
                    findings.push(format!(
                        "record {i}: schedule commit has decision_seq {decision_seq}, expected 0"
                    ));
                }
            }
            JournalRecord::ObjectCommit {
                stage,
                task,
                attempt_epoch,
                value,
            } => {
                if let Some((at, _)) = completed.get(stage) {
                    findings.push(format!(
                        "record {i}: object commit s{stage}.t{task} after its stage completed (record {at})"
                    ));
                }
                match commits.get(&(*stage, *task, *attempt_epoch)) {
                    Some(v) if v == value => findings.push(format!(
                        "record {i}: duplicated object-commit record s{stage}.t{task}@{attempt_epoch}"
                    )),
                    Some(v) => findings.push(format!(
                        "record {i}: conflicting object commit s{stage}.t{task}@{attempt_epoch}: {v:#x} vs {value:#x}"
                    )),
                    None => {
                        commits.insert((*stage, *task, *attempt_epoch), *value);
                        *commits_per_stage.entry(*stage).or_insert(0) += 1;
                    }
                }
            }
            JournalRecord::StageComplete(cp) => {
                if completed.insert(cp.stage, (i, cp.tasks.len())).is_some() {
                    findings.push(format!("record {i}: stage {} completed twice", cp.stage));
                }
            }
            JournalRecord::Replan { record, .. } => {
                if record.decision_seq <= last_seq {
                    findings.push(format!(
                        "record {i}: replan decision_seq {} not above {last_seq}",
                        record.decision_seq
                    ));
                }
                last_seq = last_seq.max(record.decision_seq);
            }
            JournalRecord::Failover { decision_seq, .. } => {
                if *decision_seq <= last_seq {
                    findings.push(format!(
                        "record {i}: failover decision_seq {decision_seq} not above {last_seq}"
                    ));
                }
                last_seq = last_seq.max(*decision_seq);
            }
            JournalRecord::JobComplete { .. } => {
                if complete_at.is_some() {
                    findings.push(format!("record {i}: duplicate job-complete"));
                }
                complete_at = Some(i);
            }
            JournalRecord::TaskAttempt { .. } | JournalRecord::Snapshot(_) => {}
        }
    }
    if admits > 1 {
        findings.push(format!("{admits} job-admit records (expected 1)"));
    }
    if schedule_commits > 1 {
        findings.push(format!("{schedule_commits} schedule commits (expected 1)"));
    }
    if let Some(at) = complete_at {
        if at != flat.len() - 1 {
            findings.push(format!(
                "job-complete at record {at} is not the last record"
            ));
        }
    }
    for (stage, (_, tasks)) in &completed {
        let got = commits_per_stage.get(stage).copied().unwrap_or(0);
        if got as usize != *tasks {
            findings.push(format!(
                "stage {stage}: {got} object commits for {tasks} tasks"
            ));
        }
    }
    findings
}

/// Cross-check a journal against the recovered run's trace: every
/// journaled object commit of a completed stage must have a matching
/// `hb.write` at the committed instant, and the journal's decision
/// sequence must align with the `sched.replan` / `sched.failover` events
/// in emission order. Returns findings (empty = consistent).
pub fn cross_check(records: &[JournalRecord], trace: &TraceData) -> Vec<String> {
    let mut findings = Vec::new();
    let flat = flatten(records);
    let completed: std::collections::BTreeSet<u32> = flat
        .iter()
        .filter_map(|r| match r {
            JournalRecord::StageComplete(cp) => Some(cp.stage),
            _ => None,
        })
        .collect();
    for (i, rec) in flat.iter().enumerate() {
        if let JournalRecord::ObjectCommit {
            stage,
            task,
            value,
            ..
        } = rec
        {
            if !completed.contains(stage) {
                continue; // runner-style commit without sim checkpoint
            }
            let committed = f64::from_bits(*value);
            let hit = trace.events.iter().any(|e| {
                e.name == "hb.write"
                    && event_u64(e, "stage") == Some(*stage as u64)
                    && event_u64(e, "task") == Some(*task as u64)
                    && instants_match(e.ts, committed)
            });
            if !hit {
                findings.push(format!(
                    "record {i}: committed object s{stage}.t{task} has no hb.write at its committed instant"
                ));
            }
        }
    }
    let journal_replans: Vec<u64> = flat
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Replan { record, .. } => Some(record.decision_seq),
            _ => None,
        })
        .collect();
    let trace_replans: Vec<Option<u64>> = trace
        .events
        .iter()
        .filter(|e| e.name == "sched.replan")
        .map(|e| match e.attr("decision_seq") {
            Some(ditto_obs::AttrValue::U64(v)) => Some(*v),
            _ => None,
        })
        .collect();
    align_seqs(&mut findings, "sched.replan", &journal_replans, &trace_replans);
    let journal_failovers: Vec<u64> = flat
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Failover { decision_seq, .. } => Some(*decision_seq),
            _ => None,
        })
        .collect();
    let trace_failovers: Vec<Option<u64>> = trace
        .events
        .iter()
        .filter(|e| e.name == "sched.failover")
        .map(|e| match e.attr("decision_seq") {
            Some(ditto_obs::AttrValue::U64(v)) => Some(*v),
            _ => None,
        })
        .collect();
    align_seqs(
        &mut findings,
        "sched.failover",
        &journal_failovers,
        &trace_failovers,
    );
    findings
}

/// Exact bit equality on a live trace; on a trace re-imported from a
/// Chrome artifact — recognizable because its timestamps are exactly
/// integral microseconds — equality at that quantization. A tampered
/// commit value in a full-precision trace still misses by ulps, so the
/// relaxation never weakens the in-memory cross-check.
fn instants_match(trace_ts: f64, committed: f64) -> bool {
    if trace_ts.to_bits() == committed.to_bits() {
        return true;
    }
    let micros = (trace_ts * 1e6).round();
    (micros / 1e6).to_bits() == trace_ts.to_bits() && micros == (committed * 1e6).round()
}

fn event_u64(e: &ditto_obs::EventRecord, key: &str) -> Option<u64> {
    match e.attr(key) {
        Some(ditto_obs::AttrValue::U64(v)) => Some(*v),
        _ => None,
    }
}

fn align_seqs(findings: &mut Vec<String>, what: &str, journal: &[u64], trace: &[Option<u64>]) {
    if journal.len() != trace.len() {
        findings.push(format!(
            "{what}: journal has {} decisions, trace has {} events",
            journal.len(),
            trace.len()
        ));
        return;
    }
    for (i, (j, t)) in journal.iter().zip(trace).enumerate() {
        match t {
            None => findings.push(format!("{what} event {i}: missing decision_seq attr")),
            Some(t) if t != j => findings.push(format!(
                "{what} event {i}: decision_seq {t} but journal says {j}"
            )),
            _ => {}
        }
    }
}

/// Compact a journal: fold everything up to (and including) the last
/// `StageComplete` into one `Snapshot` record and keep the tail verbatim,
/// bounding replay work without losing any decision. Recovery from the
/// compacted journal is byte-for-byte equivalent to recovery from the
/// full one (`snapshot_tail_recovery_equals_full` pins it). Errors on a
/// torn journal — compact only after clean decode.
pub fn compact_journal(bytes: &[u8]) -> Result<Vec<u8>, ExecError> {
    let decoded = decode_journal(bytes)?;
    if let Some(t) = decoded.torn {
        return Err(ExecError::Journal(format!(
            "cannot compact a torn journal ({} at record {})",
            t.reason.label(),
            t.at_record
        )));
    }
    let flat = flatten(&decoded.records);
    let Some(last_cp) = flat
        .iter()
        .rposition(|r| matches!(r, JournalRecord::StageComplete(_)))
    else {
        return Ok(bytes.to_vec());
    };
    let mut out = Vec::with_capacity(bytes.len());
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.push(JOURNAL_VERSION);
    let snapshot = JournalRecord::Snapshot(flat[..=last_cp].to_vec());
    frame_into(&mut out, &encode_record(&snapshot));
    for rec in &flat[last_cp + 1..] {
        frame_into(&mut out, &encode_record(rec));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Batched crash-armed writer
// ---------------------------------------------------------------------

/// The single batched journal writer both engines append through.
///
/// In-memory durable buffer standing in for an fsync'd file (the crate
/// has no I/O); `crash_at` arms a seeded coordinator crash that kills the
/// append of record `n` half-way through its frame — the torn tail
/// [`decode_journal`] must detect and truncate.
#[derive(Debug)]
pub struct JournalWriter {
    buf: Vec<u8>,
    records_written: u64,
    crash_at: Option<u64>,
}

impl JournalWriter {
    /// Fresh journal (header only), optionally armed to crash at the
    /// `crash_at`-th appended record (0-based).
    pub fn new(crash_at: Option<u64>) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&JOURNAL_MAGIC);
        buf.push(JOURNAL_VERSION);
        JournalWriter {
            buf,
            records_written: 0,
            crash_at,
        }
    }

    /// Resume appending to a durable prefix of `records` intact records.
    /// Deliberately *not* re-armed: a recovered coordinator crashing at
    /// the same record forever would never finish.
    pub fn from_durable(bytes: Vec<u8>, records: u64) -> Self {
        JournalWriter {
            buf: bytes,
            records_written: records,
            crash_at: None,
        }
    }

    /// Append one record. If the armed crash point is this record, half
    /// of its frame is written (a torn tail) and the append fails with
    /// [`ExecError::CoordinatorCrash`].
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), ExecError> {
        let payload = encode_record(rec);
        if self.crash_at == Some(self.records_written) {
            let mut frame = Vec::with_capacity(12 + payload.len());
            frame_into(&mut frame, &payload);
            self.buf.extend_from_slice(&frame[..frame.len() / 2]);
            return Err(ExecError::CoordinatorCrash {
                at_record: self.records_written,
            });
        }
        frame_into(&mut self.buf, &payload);
        self.records_written += 1;
        Ok(())
    }

    /// The journal bytes, including any torn tail after a crash.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Records successfully appended (a `Snapshot` counts as one).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Arm (or re-arm) a crash at appended-record index `at`.
    pub fn arm_crash(&mut self, at: u64) {
        self.crash_at = Some(at);
    }
}

// ---------------------------------------------------------------------
// Journal session: write-ahead on the way out, replay on the way back
// ---------------------------------------------------------------------

/// One job's journal session: wraps the [`JournalWriter`] with the replay
/// state decoded from a durable prefix. A fresh session journals every
/// decision as it happens; a resumed session restores checkpointed
/// stages, deduplicates re-delivered object commits through the
/// [`CommitLedger`], and substitutes journaled replan/failover decisions
/// for the optimizer calls they gate.
#[derive(Debug)]
pub struct JournalSession {
    writer: JournalWriter,
    resumed: bool,
    admit: Option<(u32, u32, EngineKind, String)>,
    schedule_fp: Option<u64>,
    checkpoints: BTreeMap<u32, StageCheckpoint>,
    replans: VecDeque<(ReplanRecord, Vec<bool>, Option<Schedule>)>,
    failover: Option<(u64, u32, f64, Vec<bool>, Schedule)>,
    completed: Option<JobMetrics>,
    ledger: CommitLedger,
    torn: Option<TornTail>,
    deduped: u64,
    restored_stages: u32,
    replayed_commits: u64,
    replay_total: usize,
}

impl JournalSession {
    /// Fresh session (empty journal), optionally armed to crash at
    /// appended-record index `crash_at`.
    pub fn fresh(crash_at: Option<u64>) -> Self {
        JournalSession {
            writer: JournalWriter::new(crash_at),
            resumed: false,
            admit: None,
            schedule_fp: None,
            checkpoints: BTreeMap::new(),
            replans: VecDeque::new(),
            failover: None,
            completed: None,
            ledger: CommitLedger::new(),
            torn: None,
            deduped: 0,
            restored_stages: 0,
            replayed_commits: 0,
            replay_total: 0,
        }
    }

    /// Fresh session armed from the fault plan's seeded
    /// `CoordinatorCrash`, if any.
    pub fn fresh_from_plan(plan: &FaultPlan) -> Self {
        Self::fresh(plan.coordinator_crash())
    }

    /// Resume from journal bytes: decode the durable prefix (truncating
    /// any torn tail), replay object commits into the ledger, and stage
    /// checkpoints / replans / failover for replay. The crash arming is
    /// deliberately *not* restored.
    pub fn resume(bytes: &[u8]) -> Result<Self, ExecError> {
        let decoded = decode_journal(bytes)?;
        let flat = flatten(&decoded.records);
        let mut session = JournalSession {
            writer: JournalWriter::from_durable(
                bytes[..decoded.durable_len].to_vec(),
                decoded.records.len() as u64,
            ),
            resumed: true,
            admit: None,
            schedule_fp: None,
            checkpoints: BTreeMap::new(),
            replans: VecDeque::new(),
            failover: None,
            completed: None,
            ledger: CommitLedger::new(),
            torn: decoded.torn,
            deduped: 0,
            restored_stages: 0,
            replayed_commits: 0,
            replay_total: 0,
        };
        for rec in flat {
            match rec {
                JournalRecord::JobAdmit {
                    stages,
                    edges,
                    engine,
                    scheduler,
                } => session.admit = Some((stages, edges, engine, scheduler)),
                JournalRecord::ScheduleCommit { schedule_fp, .. } => {
                    session.schedule_fp = Some(schedule_fp)
                }
                JournalRecord::ObjectCommit {
                    stage,
                    task,
                    attempt_epoch,
                    value,
                } => {
                    let key = format!("s{stage}.t{task}");
                    match session.ledger.commit(&key, attempt_epoch, value) {
                        CommitOutcome::Committed => session.replayed_commits += 1,
                        CommitOutcome::Duplicate => {}
                        CommitOutcome::Conflict { expected, actual } => {
                            return Err(ExecError::Journal(format!(
                                "journal commits {key}@{attempt_epoch} twice with different values ({expected:#x} vs {actual:#x})"
                            )));
                        }
                    }
                }
                JournalRecord::StageComplete(cp) => {
                    session.checkpoints.insert(cp.stage, *cp);
                }
                JournalRecord::Replan {
                    record,
                    suffix,
                    schedule,
                } => session.replans.push_back((record, suffix, schedule)),
                JournalRecord::Failover {
                    decision_seq,
                    failed_server,
                    at_time,
                    suffix,
                    schedule,
                } => {
                    session.failover =
                        Some((decision_seq, failed_server, at_time, suffix, schedule))
                }
                JournalRecord::JobComplete { metrics } => session.completed = Some(metrics),
                JournalRecord::TaskAttempt { .. } | JournalRecord::Snapshot(_) => {}
            }
        }
        session.replay_total = session.replans.len();
        Ok(session)
    }

    /// The journal bytes as durable so far (torn tail included on a fresh
    /// crashed session; truncated to the durable prefix on resume).
    pub fn durable_bytes(&self) -> &[u8] {
        self.writer.bytes()
    }

    /// Records successfully appended to the journal.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Re-delivered object commits deduplicated during re-execution.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Stages restored from checkpoints instead of re-simulated.
    pub fn restored_stages(&self) -> u32 {
        self.restored_stages
    }

    /// Torn-tail provenance of the resumed journal, if any.
    pub fn torn(&self) -> Option<TornTail> {
        self.torn
    }

    /// Object commits replayed from the durable prefix on resume.
    pub fn replayed_commits(&self) -> u64 {
        self.replayed_commits
    }

    /// Arm a coordinator crash at appended-record index `at` (tests use
    /// this to exercise double crashes on a resumed session).
    pub fn arm_crash(&mut self, at: u64) {
        self.writer.arm_crash(at);
    }

    /// Open (or verify) the job: journals `JobAdmit` + `ScheduleCommit`
    /// on a fresh session, verifies DAG shape / engine / schedule
    /// fingerprint against the journal on a resumed one, and announces
    /// the resume on the scheduler track. Call once per run, before any
    /// stage executes.
    pub fn begin(
        &mut self,
        stages: u32,
        edges: u32,
        engine: EngineKind,
        schedule: &Schedule,
        obs: &Recorder,
    ) -> Result<(), ExecError> {
        match &self.admit {
            Some((s0, e0, k0, name)) => {
                if *s0 != stages || *e0 != edges || *k0 != engine || name != &schedule.scheduler {
                    return Err(ExecError::Journal(format!(
                        "journal admitted a different job: {} stages / {} edges / {} engine / scheduler {:?}, resume offered {} / {} / {} / {:?}",
                        s0, e0, k0.label(), name, stages, edges, engine.label(), schedule.scheduler
                    )));
                }
            }
            None => {
                self.writer.append(&JournalRecord::JobAdmit {
                    stages,
                    edges,
                    engine,
                    scheduler: schedule.scheduler.clone(),
                })?;
                self.admit = Some((stages, edges, engine, schedule.scheduler.clone()));
            }
        }
        let fp = schedule_fingerprint(schedule);
        match self.schedule_fp {
            Some(stored) if stored != fp => {
                return Err(ExecError::Journal(format!(
                    "schedule fingerprint mismatch: journal committed {stored:#018x}, resume offered {fp:#018x}"
                )));
            }
            Some(_) => {}
            None => {
                self.writer.append(&JournalRecord::ScheduleCommit {
                    decision_seq: 0,
                    schedule_fp: fp,
                })?;
                self.schedule_fp = Some(fp);
            }
        }
        if self.resumed && obs.is_enabled() {
            obs.event(
                "recovery.resume",
                Track::scheduler(0),
                0.0,
                vec![
                    ("resumed_stages", (self.checkpoints.len() as u64).into()),
                    ("replayed_commits", self.replayed_commits.into()),
                    ("replayed_replans", (self.replay_total as u64).into()),
                    ("torn", (self.torn.is_some() as u64).into()),
                    ("torn_at", self.torn.map_or(0, |t| t.at_record).into()),
                ],
            );
        }
        Ok(())
    }

    /// If stage `s` has a journaled checkpoint, restore it into `state`
    /// wholesale (timeline gates, fault buckets, edge media, heal map,
    /// trace rows), re-emit its telemetry, and return `true`; otherwise
    /// return `false` and the caller re-simulates.
    pub(crate) fn try_restore(
        &mut self,
        s: StageId,
        state: &mut SimState,
        dag: &JobDag,
        obs: &Recorder,
    ) -> bool {
        let Some(cp) = self.checkpoints.remove(&s.0) else {
            return false;
        };
        let i = s.index();
        state.stage_end[i] = cp.end;
        state.stage_write_start[i] = cp.write_start;
        state.stage_read_end[i] = cp.read_end;
        state.stage_launch[i] = cp.launch;
        state.stage_observed[i] = cp.observed;
        state.stage_clean[i] = cp.clean;
        state.task_clean_time[i] = cp.task_clean.clone();
        state.edge_medium = cp
            .edge_medium
            .iter()
            .map(|&c| medium_from_code(c).unwrap_or(None))
            .collect();
        state.heal_end = cp.heal_end.iter().map(|&(a, b, h)| ((a, b), h)).collect();
        state.stage_stats = cp.buckets.clone();
        state.lineage_log.extend(cp.lineage.iter().copied());
        self.emit_restored_stage(obs, dag, s, &cp);
        state.trace.tasks.extend(cp.tasks.iter().cloned());
        state.trace.attempts.extend(cp.attempts.iter().cloned());
        self.restored_stages += 1;
        true
    }

    /// Re-emit a restored stage's telemetry in the exact shape and order
    /// `sim_stage` produces, so a recovered run's trace passes the same
    /// schema and race certification as a live one.
    fn emit_restored_stage(&self, obs: &Recorder, dag: &JobDag, s: StageId, cp: &StageCheckpoint) {
        if !obs.is_enabled() {
            return;
        }
        for h in &cp.lineage {
            let name = if h.corrupt {
                "fault.object_corrupt"
            } else {
                "fault.object_lost"
            };
            obs.event(
                name,
                Track::storage(),
                h.detect_at,
                vec![
                    ("stage", h.src_stage.into()),
                    ("task", h.src_task.into()),
                    ("reader_stage", h.reader_stage.into()),
                ],
            );
            obs.event(
                "recovery.lineage_reexec",
                Track::storage(),
                h.detect_at + h.reexec_s,
                vec![
                    ("stage", h.src_stage.into()),
                    ("task", h.src_task.into()),
                    ("reexec_s", h.reexec_s.into()),
                ],
            );
        }
        let d_f = (cp.tasks.len().max(1)) as f64;
        let task_read_bytes: f64 = dag.in_edges(s).map(|e| e.bytes as f64).sum::<f64>() / d_f;
        let task_write_bytes: f64 = dag.out_edges(s).map(|e| e.bytes as f64).sum::<f64>() / d_f;
        for tt in &cp.tasks {
            let records: Vec<&AttemptRecord> =
                cp.attempts.iter().filter(|a| a.task == tt.task).collect();
            let attempts = if records.is_empty() {
                1
            } else {
                records.len() as u32
            };
            let srv = tt.server.index() as u32;
            obs.name_track(Track::SERVER_BASE + srv, &format!("server {srv}"));
            let lane = tt.stage * 10_000 + tt.task;
            obs.span(
                "task",
                Track::server(srv, lane),
                tt.launch,
                tt.end,
                vec![
                    ("stage", tt.stage.into()),
                    ("task", tt.task.into()),
                    ("attempts", attempts.into()),
                    ("read_start", tt.read_start.into()),
                    ("compute_start", tt.compute_start.into()),
                    ("write_start", tt.write_start.into()),
                    ("memory_gb", tt.memory_gb.into()),
                    ("bytes_read", task_read_bytes.into()),
                    ("bytes_written", task_write_bytes.into()),
                ],
            );
            obs.observe("task.duration", "all", tt.end - tt.launch);
            for r in &records {
                let (name, fault) = match r.outcome {
                    AttemptOutcome::Crashed => ("fault.crashed", true),
                    AttemptOutcome::ServerLost => ("fault.server_lost", true),
                    AttemptOutcome::Superseded => ("fault.superseded", true),
                    AttemptOutcome::Completed => ("", false),
                };
                obs.span(
                    "attempt",
                    Track::server(r.server.index() as u32, lane),
                    r.start,
                    r.end,
                    vec![
                        ("stage", r.stage.into()),
                        ("task", r.task.into()),
                        ("attempt", r.attempt.into()),
                        ("outcome", outcome_label(r.outcome).into()),
                        ("wasted_gb_s", r.wasted_gb_s.into()),
                    ],
                );
                if fault {
                    obs.event(
                        name,
                        Track::server(r.server.index() as u32, lane),
                        r.end,
                        vec![
                            ("stage", r.stage.into()),
                            ("task", r.task.into()),
                            ("attempt", r.attempt.into()),
                        ],
                    );
                }
            }
            obs.event(
                "hb.write",
                Track::server(srv, lane),
                tt.end,
                vec![
                    ("stage", tt.stage.into()),
                    ("task", tt.task.into()),
                    ("server", srv.into()),
                    ("write_start", tt.write_start.into()),
                ],
            );
            for e in dag.in_edges(s) {
                let medium = medium_from_code(cp.edge_medium[e.id.index()])
                    .ok()
                    .flatten();
                obs.event(
                    "hb.read",
                    Track::server(srv, lane),
                    tt.read_start,
                    vec![
                        ("stage", tt.stage.into()),
                        ("task", tt.task.into()),
                        ("server", srv.into()),
                        ("edge", (e.id.index() as u64).into()),
                        ("src_stage", e.src.0.into()),
                        ("pipelined", (e.pipelined as u64).into()),
                        ("medium", medium.map_or("none", medium_label).into()),
                        ("compute_start", tt.compute_start.into()),
                    ],
                );
            }
            if records.is_empty() {
                slot_pair(obs, srv, lane, tt.stage, tt.task, tt.launch, tt.end, false);
            } else {
                for r in &records {
                    slot_pair(
                        obs,
                        r.server.index() as u32,
                        lane,
                        r.stage,
                        r.task,
                        r.start,
                        r.end,
                        r.speculative,
                    );
                }
            }
        }
        let read_medium = dag
            .in_edges(s)
            .filter_map(|e| medium_from_code(cp.edge_medium[e.id.index()]).ok().flatten())
            .max_by_key(|m| match m {
                Medium::SharedMemory => 0,
                Medium::Redis => 1,
                Medium::S3 => 2,
            })
            .map_or("none", medium_label);
        obs.span(
            "stage",
            Track::job(s.0),
            cp.launch,
            cp.end,
            vec![
                ("stage", s.0.into()),
                ("dop", (cp.tasks.len() as u64).into()),
                ("read_medium", read_medium.into()),
            ],
        );
        obs.event(
            "predictor.sample",
            Track::job(s.0),
            cp.end,
            vec![
                ("stage", s.0.into()),
                ("pred_setup", cp.clean.setup.into()),
                ("pred_read", cp.clean.read.into()),
                ("pred_compute", cp.clean.compute.into()),
                ("pred_write", cp.clean.write.into()),
                ("obs_setup", cp.observed.setup.into()),
                ("obs_read", cp.observed.read.into()),
                ("obs_compute", cp.observed.compute.into()),
                ("obs_write", cp.observed.write.into()),
            ],
        );
    }

    /// Journal a just-simulated stage: one exactly-once `ObjectCommit`
    /// per task (re-deliveries against the ledger are deduplicated, value
    /// conflicts are hard errors) followed by its `StageComplete`
    /// checkpoint. Write-ahead: appends happen before the engine
    /// proceeds, so a crash can tear at any decision boundary.
    pub(crate) fn record_stage(
        &mut self,
        s: StageId,
        state: &SimState,
        _dag: &JobDag,
    ) -> Result<(), ExecError> {
        let tasks: Vec<TaskTrace> = state
            .trace
            .tasks
            .iter()
            .filter(|t| t.stage == s.0)
            .cloned()
            .collect();
        let attempts: Vec<AttemptRecord> = state
            .trace
            .attempts
            .iter()
            .filter(|a| a.stage == s.0)
            .copied()
            .collect();
        for tt in &tasks {
            let epoch = attempts
                .iter()
                .filter(|a| a.task == tt.task && a.outcome == AttemptOutcome::Completed)
                .map(|a| a.attempt)
                .next_back()
                .unwrap_or(0);
            let value = tt.end.to_bits();
            let key = format!("s{}.t{}", s.0, tt.task);
            match self.ledger.commit(&key, epoch, value) {
                CommitOutcome::Committed => {
                    self.writer.append(&JournalRecord::ObjectCommit {
                        stage: s.0,
                        task: tt.task,
                        attempt_epoch: epoch,
                        value,
                    })?;
                }
                CommitOutcome::Duplicate => self.deduped += 1,
                CommitOutcome::Conflict { expected, actual } => {
                    return Err(ExecError::Journal(format!(
                        "re-executed {key}@{epoch} produced {actual:#x}, journal committed {expected:#x}"
                    )));
                }
            }
        }
        let i = s.index();
        let cp = StageCheckpoint {
            stage: s.0,
            end: state.stage_end[i],
            write_start: state.stage_write_start[i],
            read_end: state.stage_read_end[i],
            launch: state.stage_launch[i],
            observed: state.stage_observed[i],
            clean: state.stage_clean[i],
            task_clean: state.task_clean_time[i].clone(),
            edge_medium: state.edge_medium.iter().map(|&m| medium_code(m)).collect(),
            heal_end: state
                .heal_end
                .iter()
                .map(|(&(a, b), &h)| (a, b, h))
                .collect(),
            buckets: state.stage_stats.clone(),
            lineage: state
                .lineage_log
                .iter()
                .filter(|h| h.reader_stage == s.0)
                .copied()
                .collect(),
            tasks,
            attempts,
        };
        self.writer
            .append(&JournalRecord::StageComplete(Box::new(cp)))
    }

    /// Journal one *physical* task's outcome (the runner engine): its
    /// faulted-attempt history plus the object commit of its output
    /// checksum, deduplicated through the ledger. Returns whether the
    /// commit was fresh — `false` means the durable journal already holds
    /// this task's output (re-execution after a crash) and nothing was
    /// appended. A same-epoch commit with a different checksum is a hard
    /// exactly-once violation.
    pub fn record_physical_task(
        &mut self,
        stage: u32,
        task: u32,
        attempt_epoch: u32,
        value: u64,
        attempts: &[AttemptRecord],
    ) -> Result<bool, ExecError> {
        let key = format!("s{stage}.t{task}");
        match self.ledger.commit(&key, attempt_epoch, value) {
            CommitOutcome::Duplicate => {
                self.deduped += 1;
                return Ok(false);
            }
            CommitOutcome::Conflict { expected, actual } => {
                return Err(ExecError::Journal(format!(
                    "re-executed {key}@{attempt_epoch} produced {actual:#x}, journal committed {expected:#x}"
                )));
            }
            CommitOutcome::Committed => {}
        }
        for a in attempts.iter().filter(|a| a.stage == stage && a.task == task) {
            self.writer.append(&JournalRecord::TaskAttempt {
                stage,
                task,
                attempt: a.attempt,
                outcome: outcome_code(a.outcome),
                start: a.start,
                end: a.end,
            })?;
        }
        self.writer.append(&JournalRecord::ObjectCommit {
            stage,
            task,
            attempt_epoch,
            value,
        })?;
        Ok(true)
    }

    /// If the front of the replay queue is a replan decided at exactly
    /// this `(stage, bit-exact sim time)` decision point, pop and return
    /// it for substitution.
    pub(crate) fn next_replan_for(
        &mut self,
        at_stage: u32,
        now: f64,
    ) -> Option<(ReplanRecord, Vec<bool>, Option<Schedule>)> {
        let front = self.replans.front()?;
        if front.0.at_stage == at_stage && front.0.sim_time.to_bits() == now.to_bits() {
            self.replans.pop_front()
        } else {
            None
        }
    }

    /// Journal a live replan decision. Erroring while journaled replans
    /// remain unreplayed means the resumed run diverged from the journal.
    pub(crate) fn append_replan(
        &mut self,
        record: &ReplanRecord,
        suffix: &[bool],
        schedule: Option<&Schedule>,
    ) -> Result<(), ExecError> {
        if !self.replans.is_empty() {
            return Err(ExecError::Journal(format!(
                "resumed run diverged: new replan at stage {} while {} journaled replans remain unreplayed",
                record.at_stage,
                self.replans.len()
            )));
        }
        self.writer.append(&JournalRecord::Replan {
            record: *record,
            suffix: suffix.to_vec(),
            schedule: schedule.cloned(),
        })
    }

    /// Take the journaled failover decision for replay, if any.
    pub(crate) fn take_failover(&mut self) -> Option<(u64, u32, f64, Vec<bool>, Schedule)> {
        self.failover.take()
    }

    /// Journal a live failover decision (frozen engine).
    pub(crate) fn append_failover(
        &mut self,
        decision_seq: u64,
        failed_server: u32,
        at_time: f64,
        suffix: Vec<bool>,
        schedule: Schedule,
    ) -> Result<(), ExecError> {
        if self.failover.is_some() {
            return Err(ExecError::Journal(
                "resumed run diverged: live failover while a journaled one is unreplayed".into(),
            ));
        }
        self.writer.append(&JournalRecord::Failover {
            decision_seq,
            failed_server,
            at_time,
            suffix,
            schedule,
        })
    }

    /// Close the job: journals `JobComplete` on a fresh run; on a resumed
    /// run that already completed, verifies the recomputed metrics equal
    /// the journaled ones bit for bit.
    pub fn finish(&mut self, metrics: &JobMetrics) -> Result<(), ExecError> {
        if let Some(done) = self.completed {
            if done != *metrics {
                return Err(ExecError::Journal(
                    "recovered final metrics differ from the journaled job-complete record".into(),
                ));
            }
            return Ok(());
        }
        self.writer
            .append(&JournalRecord::JobComplete { metrics: *metrics })?;
        self.completed = Some(*metrics);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Recovery surface
// ---------------------------------------------------------------------

/// What [`recover`] rebuilt from a journal: resume the job by handing
/// `session` back to the matching journaled engine entry point.
#[derive(Debug)]
pub struct ResumedJob {
    /// Engine that wrote the journal (resume with the same one).
    pub engine: EngineKind,
    /// DAG stage count recorded at admission.
    pub stages: u32,
    /// Stages with durable checkpoints (restored, not re-simulated).
    pub completed_stages: Vec<u32>,
    /// Journaled replan decisions staged for replay.
    pub replans_recorded: u64,
    /// Whether a journaled failover decision is staged for replay.
    pub has_failover: bool,
    /// Whether the job already completed (recovery is then a no-op
    /// verification run).
    pub finished: bool,
    /// Torn-tail provenance, if the journal ended mid-frame.
    pub torn: Option<TornTail>,
    /// The resumed session to drive the journaled engine with.
    pub session: JournalSession,
}

/// Rebuild engine state from journal bytes. Fails on a journal without a
/// durable job-admit record (nothing to resume).
pub fn recover(journal: &[u8]) -> Result<ResumedJob, ExecError> {
    let session = JournalSession::resume(journal)?;
    let Some((stages, _, engine, _)) = session.admit.clone() else {
        return Err(ExecError::Journal(
            "journal has no durable job-admit record".into(),
        ));
    };
    Ok(ResumedJob {
        engine,
        stages,
        completed_stages: session.checkpoints.keys().copied().collect(),
        replans_recorded: session.replay_total as u64,
        has_failover: session.failover.is_some(),
        finished: session.completed.is_some(),
        torn: session.torn(),
        session,
    })
}

// ---------------------------------------------------------------------
// Journaled engine entry points
// ---------------------------------------------------------------------

/// One simulation sweep under a fixed schedule with journaling: each
/// stage is either restored from its checkpoint or simulated and then
/// journaled (commits + checkpoint) before the next stage unblocks.
fn journaled_pass(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    obs: &Recorder,
    session: &mut JournalSession,
) -> Result<SimPass, ExecError> {
    let mut state = SimState::new(dag, plan, schedule);
    state.announce(obs);
    let mut tie = TieBreak::canonical();
    let mut queue = ReadyQueue::new(dag);
    let mut popped = 0usize;
    while let Some((_, s)) = queue.pop(&mut tie) {
        popped += 1;
        if !session.try_restore(s, &mut state, dag, obs) {
            sim_stage(&mut state, dag, schedule, gt, plan, policy, obs, s)?;
            session.record_stage(s, &state, dag)?;
        }
        queue.complete(dag, s, |c| ready_time(&state, dag, c));
    }
    if popped != dag.num_stages() {
        return Err(ExecError::CyclicDag);
    }
    Ok(finish_pass(state, dag, schedule, gt, obs))
}

/// [`try_simulate_with_faults_traced`](crate::faults::try_simulate_with_faults_traced)
/// with a write-ahead journal: admission, schedule commit, per-stage
/// object commits and checkpoints, and the failover decision all journal
/// through `session` before taking effect. A session armed with a
/// coordinator crash fails with [`ExecError::CoordinatorCrash`] at the
/// armed record, leaving a torn journal tail behind
/// ([`JournalSession::durable_bytes`]); resume the run by passing
/// [`JournalSession::resume`]'s session back in with identical inputs.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_with_faults_journaled(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    resched: Option<&ReschedulingContext<'_>>,
    obs: &Recorder,
    session: &mut JournalSession,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    schedule.validate(dag).map_err(ExecError::InvalidSchedule)?;
    session.begin(
        dag.num_stages() as u32,
        dag.num_edges() as u32,
        EngineKind::Frozen,
        schedule,
        obs,
    )?;
    if let Some((seq, failed_idx, at_time_j, suffix, stored)) = session.take_failover() {
        // Replay: the failover was decided and journaled before the
        // crash. Verify the plan still injects that exact failure, then
        // run the journaled hybrid directly — no re-optimization.
        let Some((failed, at_time)) = plan.first_server_failure() else {
            return Err(ExecError::Journal(
                "journaled failover but the fault plan has no server failure".into(),
            ));
        };
        if failed.index() as u32 != failed_idx || at_time.to_bits() != at_time_j.to_bits() {
            return Err(ExecError::Journal(format!(
                "journaled failover (server {failed_idx} at {at_time_j}) does not match the fault plan (server {} at {at_time})",
                failed.index()
            )));
        }
        let n_suffix = suffix.iter().filter(|&&b| b).count() as u32;
        if obs.is_enabled() {
            obs.event(
                "sched.failover",
                Track::scheduler(0),
                obs.wall_now(),
                vec![
                    ("failed_server", (failed.index() as u64).into()),
                    ("at_time", at_time.into()),
                    ("suffix_stages", (n_suffix as u64).into()),
                    ("decision_seq", seq.into()),
                ],
            );
        }
        let mut pass = journaled_pass(dag, &stored, gt, plan, policy, obs, session)?;
        pass.metrics.faults.rescheduled_stages = n_suffix;
        session.finish(&pass.metrics)?;
        return Ok((pass.trace, pass.metrics));
    }
    match (
        plan.first_server_failure(),
        resched,
        policy.reschedule_on_server_failure,
    ) {
        (Some((failed, at_time)), Some(ctx), true) => {
            // Live failover path: a muted, *unjournaled* probe pass finds
            // the not-yet-launched suffix (it is discarded; journaling it
            // would commit state the final timeline never reaches).
            let muted = Recorder::disabled();
            let pass1 = crate::faults::sim_pass_with(
                dag,
                schedule,
                gt,
                plan,
                policy,
                &muted,
                &mut TieBreak::canonical(),
            )?;
            let suffix: Vec<bool> = pass1.stage_launch.iter().map(|&l| l >= at_time).collect();
            let n_suffix = suffix.iter().filter(|&&b| b).count() as u32;
            if n_suffix == 0 {
                let pass = journaled_pass(dag, schedule, gt, plan, policy, obs, session)?;
                session.finish(&pass.metrics)?;
                return Ok((pass.trace, pass.metrics));
            }
            let mut rm = ctx.resources.clone();
            rm.fail_server(failed.index());
            let needed = dag.num_stages() as u32;
            if rm.total_free() < needed {
                return Err(ExecError::InsufficientCapacity {
                    needed,
                    available: rm.total_free(),
                });
            }
            let replanned =
                joint_optimize_traced(dag, ctx.model, &rm, ctx.objective, &ctx.options, obs);
            let hybrid = schedule.splice(dag, &replanned, &suffix);
            #[cfg(debug_assertions)]
            {
                let report = ditto_audit::audit_splice(dag, &rm, &hybrid, &suffix);
                if !report.is_clean() {
                    return Err(ExecError::InvalidSchedule(report.render()));
                }
            }
            // Write-ahead: the decision journals before its event fires.
            session.append_failover(
                1,
                failed.index() as u32,
                at_time,
                suffix.clone(),
                hybrid.clone(),
            )?;
            if obs.is_enabled() {
                obs.event(
                    "sched.failover",
                    Track::scheduler(0),
                    obs.wall_now(),
                    vec![
                        ("failed_server", (failed.index() as u64).into()),
                        ("at_time", at_time.into()),
                        ("suffix_stages", (n_suffix as u64).into()),
                        ("decision_seq", 1u64.into()),
                    ],
                );
            }
            let mut pass2 = journaled_pass(dag, &hybrid, gt, plan, policy, obs, session)?;
            pass2.metrics.faults.rescheduled_stages = n_suffix;
            session.finish(&pass2.metrics)?;
            Ok((pass2.trace, pass2.metrics))
        }
        _ => {
            let pass = journaled_pass(dag, schedule, gt, plan, policy, obs, session)?;
            session.finish(&pass.metrics)?;
            Ok((pass.trace, pass.metrics))
        }
    }
}

/// [`try_simulate_adaptive_traced`](crate::adaptive::try_simulate_adaptive_traced)
/// with a write-ahead journal: stage checkpoints and object commits
/// journal as in the frozen engine, and every gate-passing replan
/// decision journals (record + suffix + spliced schedule) before its
/// event fires. On resume, completed stages restore from checkpoints,
/// the drift gates re-run deterministically over the restored state, and
/// journaled decisions substitute for the optimizer calls they gate —
/// recovery never re-optimizes, which is what bounds its overhead.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_adaptive_journaled(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    ctx: &ReschedulingContext<'_>,
    cfg: &crate::adaptive::AdaptiveConfig,
    obs: &Recorder,
    session: &mut JournalSession,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    session.begin(
        dag.num_stages() as u32,
        dag.num_edges() as u32,
        EngineKind::Adaptive,
        schedule,
        obs,
    )?;
    let out = crate::adaptive::try_simulate_adaptive_tie(
        dag,
        schedule,
        gt,
        plan,
        policy,
        ctx,
        cfg,
        obs,
        &mut TieBreak::canonical(),
        Some(session),
    )?;
    session.finish(&out.1)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::ExecConfig;
    use ditto_cluster::ResourceManager;
    use ditto_core::{DittoScheduler, JointOptions, Objective, Scheduler, SchedulingContext};
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn fixture(
        free: &[u32],
    ) -> (
        JobDag,
        JobTimeModel,
        ResourceManager,
        Schedule,
        GroundTruth,
    ) {
        let dag = ditto_dag::generators::q95_shape();
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        (dag, model, rm, schedule, GroundTruth::new(ExecConfig::default()))
    }

    fn ctx<'a>(model: &'a JobTimeModel, rm: &'a ResourceManager) -> ReschedulingContext<'a> {
        ReschedulingContext {
            model,
            resources: rm,
            objective: Objective::Jct,
            options: JointOptions::default(),
        }
    }

    fn sample_checkpoint() -> StageCheckpoint {
        StageCheckpoint {
            stage: 3,
            end: 12.5,
            write_start: 10.0,
            read_end: 4.5,
            launch: 1.25,
            observed: StepTimings {
                setup: 0.5,
                read: 1.0,
                compute: 2.0,
                write: 0.75,
            },
            clean: StepTimings {
                setup: 0.5,
                read: 0.9,
                compute: 1.8,
                write: 0.7,
            },
            task_clean: vec![3.0, 3.5],
            edge_medium: vec![0, 2, 255],
            heal_end: vec![(1, 0, 9.5)],
            buckets: vec![FaultStats::default(); 4],
            lineage: vec![LineageHit {
                reader_stage: 3,
                src_stage: 1,
                src_task: 0,
                corrupt: true,
                detect_at: 4.0,
                reexec_s: 1.5,
            }],
            tasks: vec![TaskTrace {
                stage: 3,
                task: 0,
                server: ServerId(1),
                launch: 1.25,
                read_start: 1.5,
                compute_start: 2.5,
                write_start: 10.0,
                end: 12.5,
                memory_gb: 2.0,
            }],
            attempts: vec![AttemptRecord {
                stage: 3,
                task: 0,
                attempt: 1,
                server: ServerId(1),
                start: 1.25,
                end: 12.5,
                outcome: AttemptOutcome::Completed,
                wasted_gb_s: 0.25,
                speculative: false,
            }],
        }
    }

    fn sample_records(schedule: &Schedule) -> Vec<JournalRecord> {
        vec![
            JournalRecord::JobAdmit {
                stages: 8,
                edges: 7,
                engine: EngineKind::Adaptive,
                scheduler: "ditto".into(),
            },
            JournalRecord::ScheduleCommit {
                decision_seq: 0,
                schedule_fp: schedule_fingerprint(schedule),
            },
            JournalRecord::ObjectCommit {
                stage: 0,
                task: 1,
                attempt_epoch: 2,
                value: 0xDEAD_BEEF,
            },
            JournalRecord::StageComplete(Box::new(sample_checkpoint())),
            JournalRecord::Replan {
                record: ReplanRecord {
                    trigger: ReplanTrigger::Drift,
                    at_stage: 2,
                    sim_time: 7.5,
                    factor: 1.8,
                    corrections: StepCorrections {
                        read: 1.0,
                        compute: 1.9,
                        write: 1.1,
                    },
                    suffix_stages: 3,
                    old_predicted_jct: 20.0,
                    new_predicted_jct: 15.0,
                    risk_penalty: 0.4,
                    audit_clean: true,
                    applied: true,
                    decision_seq: 1,
                },
                suffix: vec![false, false, true, true],
                schedule: Some(schedule.clone()),
            },
            JournalRecord::Failover {
                decision_seq: 2,
                failed_server: 1,
                at_time: 3.25,
                suffix: vec![false, true],
                schedule: schedule.clone(),
            },
            JournalRecord::TaskAttempt {
                stage: 1,
                task: 0,
                attempt: 0,
                outcome: outcome_code(AttemptOutcome::Crashed),
                start: 0.5,
                end: 1.5,
            },
            JournalRecord::JobComplete {
                metrics: JobMetrics {
                    jct: 42.0,
                    compute_cost: 1.5,
                    storage_cost: 0.25,
                    faults: FaultStats::default(),
                },
            },
        ]
    }

    // -- codec ---------------------------------------------------------

    #[test]
    fn record_codec_roundtrips_every_variant() {
        let (_, _, _, schedule, _) = fixture(&[12, 10]);
        let mut records = sample_records(&schedule);
        // A snapshot wrapping everything exercises the nested codec too.
        let snap = JournalRecord::Snapshot(records.clone());
        records.push(snap);
        for rec in &records {
            let bytes = encode_record(rec);
            let back = decode_record(&bytes).expect("roundtrip decode");
            assert_eq!(
                bytes,
                encode_record(&back),
                "re-encode must be byte-identical for {rec:?}"
            );
        }
    }

    #[test]
    fn decoder_rejects_trailing_garbage_and_bad_bool() {
        let rec = JournalRecord::ObjectCommit {
            stage: 0,
            task: 0,
            attempt_epoch: 0,
            value: 1,
        };
        let mut bytes = encode_record(&rec);
        bytes.push(0xAB);
        assert!(
            decode_record(&bytes).is_err(),
            "trailing garbage must be a hard decode error"
        );
        // A bool byte outside {0, 1} is rejected, not coerced.
        let rep = JournalRecord::Replan {
            record: ReplanRecord {
                trigger: ReplanTrigger::Drift,
                at_stage: 0,
                sim_time: 0.0,
                factor: 1.0,
                corrections: StepCorrections {
                    read: 1.0,
                    compute: 1.0,
                    write: 1.0,
                },
                suffix_stages: 1,
                old_predicted_jct: 1.0,
                new_predicted_jct: 1.0,
                risk_penalty: 0.0,
                audit_clean: true,
                applied: false,
                decision_seq: 1,
            },
            suffix: vec![true],
            schedule: None,
        };
        let good = encode_record(&rep);
        for (i, b) in good.iter().enumerate() {
            if *b == 1u8 {
                let mut bad = good.clone();
                bad[i] = 7;
                // Either a decode error or a re-encode difference: a
                // flipped byte can never round-trip silently.
                if let Ok(back) = decode_record(&bad) {
                    assert_ne!(encode_record(&back), good);
                }
            }
        }
    }

    // -- torn-tail classification -------------------------------------

    fn journal_with(records: &[JournalRecord]) -> Vec<u8> {
        let mut w = JournalWriter::new(None);
        for r in records {
            w.append(r).unwrap();
        }
        w.bytes().to_vec()
    }

    #[test]
    fn torn_tail_truncation_classified_with_provenance() {
        let (_, _, _, schedule, _) = fixture(&[12, 10]);
        let records = sample_records(&schedule);
        let full = journal_with(&records);
        let durable = journal_with(&records[..2]);
        // Cut inside the third frame: header-only and mid-payload cuts.
        for cut in [durable.len() + 6, durable.len() + 14] {
            let decoded = decode_journal(&full[..cut]).unwrap();
            assert_eq!(decoded.records.len(), 2);
            let torn = decoded.torn.expect("cut mid-frame is torn");
            assert_eq!(torn.at_record, 2, "provenance is the record index");
            assert_eq!(torn.byte_offset, durable.len(), "durable prefix length");
            assert_eq!(torn.reason, TornReason::Truncated);
            assert_eq!(decoded.durable_len, durable.len());
        }
    }

    #[test]
    fn torn_tail_checksum_mismatch_classified() {
        let (_, _, _, schedule, _) = fixture(&[12, 10]);
        let records = sample_records(&schedule);
        let durable = journal_with(&records[..3]);
        let mut bytes = journal_with(&records[..4]);
        // Flip one byte of the last frame's stored CRC.
        bytes[durable.len() + 4] ^= 0xFF;
        let decoded = decode_journal(&bytes).unwrap();
        assert_eq!(decoded.records.len(), 3);
        let torn = decoded.torn.unwrap();
        assert_eq!(torn.at_record, 3);
        assert_eq!(torn.byte_offset, durable.len());
        assert_eq!(torn.reason, TornReason::ChecksumMismatch);
    }

    #[test]
    fn torn_tail_bad_length_classified() {
        let (_, _, _, schedule, _) = fixture(&[12, 10]);
        let records = sample_records(&schedule);
        let durable = journal_with(&records[..2]);
        for bad_len in [0u32, (MAX_FRAME as u32) + 1] {
            let mut bytes = durable.clone();
            bytes.extend_from_slice(&bad_len.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]);
            let decoded = decode_journal(&bytes).unwrap();
            assert_eq!(decoded.records.len(), 2);
            let torn = decoded.torn.unwrap();
            assert_eq!(torn.at_record, 2);
            assert_eq!(torn.byte_offset, durable.len());
            assert_eq!(torn.reason, TornReason::BadLength);
        }
    }

    #[test]
    fn bad_header_is_a_hard_error() {
        assert!(decode_journal(b"NOTAWAL!x").is_err());
        let mut bytes = journal_with(&[]);
        bytes[8] = 99; // unknown version
        assert!(decode_journal(&bytes).is_err());
        assert!(decode_journal(&bytes[..4]).is_err(), "short header");
    }

    #[test]
    fn valid_frame_with_malformed_payload_is_a_hard_error() {
        // CRC-valid garbage payload: the checksum passes, decode must not.
        let mut bytes = journal_with(&[]);
        frame_into(&mut bytes, &[0xFFu8; 5]);
        assert!(matches!(
            decode_journal(&bytes),
            Err(ExecError::Journal(_))
        ));
    }

    // -- validate: duplicated frame -----------------------------------

    #[test]
    fn validate_flags_a_duplicated_commit_frame() {
        let (_, _, _, schedule, _) = fixture(&[12, 10]);
        let mut records = sample_records(&schedule)[..3].to_vec();
        records.push(records[2].clone()); // replayed frame: same commit twice
        let bytes = journal_with(&records);
        let decoded = decode_journal(&bytes).unwrap();
        assert!(decoded.torn.is_none(), "a duplicated frame is CRC-valid");
        let findings = validate_journal(&decoded.records);
        assert!(
            findings.iter().any(|f| f.contains("duplicated object-commit")),
            "findings: {findings:?}"
        );
    }

    // -- frozen engine: crash / resume bit-identity -------------------

    fn run_frozen(
        dag: &JobDag,
        schedule: &Schedule,
        gt: &GroundTruth,
        plan: &FaultPlan,
        resched: Option<&ReschedulingContext<'_>>,
        session: &mut JournalSession,
    ) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
        try_simulate_with_faults_journaled(
            dag,
            schedule,
            gt,
            plan,
            &RecoveryPolicy::default(),
            resched,
            &Recorder::disabled(),
            session,
        )
    }

    #[test]
    fn frozen_crash_resume_is_bit_identical_at_every_record() {
        let (dag, model, rm, schedule, gt) = fixture(&[48; 4]);
        let (_, base) = crate::sim::simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::none()
            .and_object_loss(StageId(0), 1)
            .and_server_failure(ServerId(0), base.jct * 0.3);
        let ctx = ctx(&model, &rm);
        let mut clean = JournalSession::fresh(None);
        let (bt, bm) = run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut clean).unwrap();
        let total = clean.records_written();
        assert!(total > 4, "journal must hold admission + stages + failover");
        let v = validate_journal(&decode_journal(clean.durable_bytes()).unwrap().records);
        assert!(v.is_empty(), "crash-free journal validates clean: {v:?}");
        // Crash at every journal record index; resume must reproduce the
        // crash-free run bit for bit.
        for k in 0..total {
            let mut armed = JournalSession::fresh(Some(k));
            let err = run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut armed)
                .expect_err("armed crash must kill the run");
            assert!(
                matches!(err, ExecError::CoordinatorCrash { at_record } if at_record == k),
                "crash point {k}: {err}"
            );
            let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
            assert_eq!(resumed.torn().map(|t| t.at_record), Some(k));
            let (rt, rm2) =
                run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut resumed).unwrap();
            assert_eq!(rm2, bm, "crash at record {k}: metrics must be bit-identical");
            assert_eq!(rt.tasks, bt.tasks, "crash at record {k}");
            assert_eq!(rt.attempts, bt.attempts, "crash at record {k}");
            let decoded = decode_journal(resumed.durable_bytes()).unwrap();
            assert!(decoded.torn.is_none(), "resumed journal has no torn tail");
            let v = validate_journal(&decoded.records);
            assert!(v.is_empty(), "crash at record {k}: {v:?}");
        }
    }

    #[test]
    fn resume_deduplicates_torn_commit_batches() {
        let (dag, _, _, schedule, gt) = fixture(&[48; 4]);
        let plan = FaultPlan::none();
        let mut clean = JournalSession::fresh(None);
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut clean).unwrap();
        // Find a crash point *inside* a stage's commit batch: right
        // before its StageComplete record.
        let records = decode_journal(clean.durable_bytes()).unwrap().records;
        let cp_at = records
            .iter()
            .position(|r| matches!(r, JournalRecord::StageComplete(_)))
            .expect("a stage checkpoint exists") as u64;
        assert!(cp_at > 2, "commits precede the checkpoint");
        let mut armed = JournalSession::fresh(Some(cp_at));
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut armed).unwrap_err();
        let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
        assert!(resumed.replayed_commits() > 0, "durable commits replayed");
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut resumed).unwrap();
        assert!(
            resumed.deduped() > 0,
            "re-simulating the torn stage re-delivers its durable commits"
        );
        let decoded = decode_journal(resumed.durable_bytes()).unwrap();
        let v = validate_journal(&decoded.records);
        assert!(v.is_empty(), "dedup keeps the journal clean: {v:?}");
    }

    #[test]
    fn double_crash_then_resume_still_bit_identical() {
        let (dag, _, _, schedule, gt) = fixture(&[48; 4]);
        let plan = FaultPlan::none().and_object_loss(StageId(1), 0);
        let mut clean = JournalSession::fresh(None);
        let (_, bm) = run_frozen(&dag, &schedule, &gt, &plan, None, &mut clean).unwrap();
        let total = clean.records_written();
        let mut armed = JournalSession::fresh(Some(2));
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut armed).unwrap_err();
        let mut second = JournalSession::resume(armed.durable_bytes()).unwrap();
        second.arm_crash(total - 2);
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut second).unwrap_err();
        let mut third = JournalSession::resume(second.durable_bytes()).unwrap();
        let (_, m) = run_frozen(&dag, &schedule, &gt, &plan, None, &mut third).unwrap();
        assert_eq!(m, bm, "two crashes deep, still bit-identical");
    }

    #[test]
    fn recover_reports_the_resumable_surface() {
        let (dag, _, _, schedule, gt) = fixture(&[48; 4]);
        let plan = FaultPlan::none();
        let mut clean = JournalSession::fresh(None);
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut clean).unwrap();
        let total = clean.records_written();
        let mut armed = JournalSession::fresh(Some(total - 1));
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut armed).unwrap_err();
        let job = recover(armed.durable_bytes()).unwrap();
        assert_eq!(job.engine, EngineKind::Frozen);
        assert_eq!(job.stages, dag.num_stages() as u32);
        assert!(!job.finished);
        assert_eq!(job.torn.map(|t| t.at_record), Some(total - 1));
        assert!(!job.completed_stages.is_empty());
        // An empty journal is not resumable.
        assert!(recover(&journal_with(&[])).is_err());
    }

    #[test]
    fn resume_rejects_a_different_schedule() {
        let (dag, model, rm, schedule, gt) = fixture(&[48; 4]);
        let plan = FaultPlan::none();
        let mut armed = JournalSession::fresh(Some(3));
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut armed).unwrap_err();
        let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
        // Re-plan under different capacity: different schedule, different
        // fingerprint — resume must refuse, not silently mix timelines.
        let rm2 = ResourceManager::from_free_slots(vec![6, 6, 6]);
        let other = DittoScheduler::new().schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm2,
            objective: Objective::Jct,
        });
        assert_ne!(
            schedule_fingerprint(&schedule),
            schedule_fingerprint(&other),
            "fixture sanity: the schedules differ"
        );
        let err = run_frozen(&dag, &other, &gt, &plan, None, &mut resumed).unwrap_err();
        assert!(matches!(err, ExecError::Journal(_)), "{err}");
        let _ = rm;
    }

    // -- compaction ----------------------------------------------------

    #[test]
    fn snapshot_plus_tail_recovery_equals_full_journal_recovery() {
        let (dag, model, rm, schedule, gt) = fixture(&[48; 4]);
        let (_, base) = crate::sim::simulate(&dag, &schedule, &gt);
        let plan = FaultPlan::none()
            .and_object_loss(StageId(0), 0)
            .and_server_failure(ServerId(1), base.jct * 0.4);
        let ctx = ctx(&model, &rm);
        let mut clean = JournalSession::fresh(None);
        let (_, bm) = run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut clean).unwrap();
        let total = clean.records_written();
        for k in 2..total {
            let mut armed = JournalSession::fresh(Some(k));
            run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut armed).unwrap_err();
            let compacted = compact_journal(
                &armed.durable_bytes()[..decode_journal(armed.durable_bytes())
                    .unwrap()
                    .durable_len],
            )
            .unwrap();
            let mut from_full = JournalSession::resume(armed.durable_bytes()).unwrap();
            let mut from_snap = JournalSession::resume(&compacted).unwrap();
            assert_eq!(
                from_full.replayed_commits(),
                from_snap.replayed_commits(),
                "crash {k}: the snapshot preserves the commit ledger"
            );
            let (ft, fm) =
                run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut from_full).unwrap();
            let (st, sm) =
                run_frozen(&dag, &schedule, &gt, &plan, Some(&ctx), &mut from_snap).unwrap();
            assert_eq!(fm, bm, "crash {k}: full-journal recovery");
            assert_eq!(sm, bm, "crash {k}: snapshot+tail recovery");
            assert_eq!(ft.tasks, st.tasks, "crash {k}");
            assert_eq!(ft.attempts, st.attempts, "crash {k}");
        }
        // Compacting a checkpoint-free journal is the identity.
        let head = journal_with(&decode_journal(clean.durable_bytes()).unwrap().records[..2]);
        assert_eq!(compact_journal(&head).unwrap(), head);
    }

    #[test]
    fn compaction_folds_the_prefix_into_one_snapshot() {
        let (dag, _, _, schedule, gt) = fixture(&[48; 4]);
        let plan = FaultPlan::none();
        let mut clean = JournalSession::fresh(None);
        run_frozen(&dag, &schedule, &gt, &plan, None, &mut clean).unwrap();
        let compacted = compact_journal(clean.durable_bytes()).unwrap();
        let decoded = decode_journal(&compacted).unwrap();
        assert!(decoded.torn.is_none());
        assert!(
            matches!(&decoded.records[0], JournalRecord::Snapshot(inner)
                if matches!(inner.first(), Some(JournalRecord::JobAdmit { .. }))),
            "first record is the snapshot, starting at admission"
        );
        // Flattened content is byte-identical to the original records.
        let flat = flatten(&decoded.records);
        let orig = decode_journal(clean.durable_bytes()).unwrap().records;
        assert_eq!(flat.len(), orig.len());
        for (a, b) in flat.iter().zip(orig.iter()) {
            assert_eq!(encode_record(a), encode_record(b));
        }
        let v = validate_journal(&decoded.records);
        assert!(v.is_empty(), "compacted journal validates clean: {v:?}");
        // Compacting a torn journal is refused.
        let mut torn = clean.durable_bytes().to_vec();
        torn.extend_from_slice(&[9, 9, 9]);
        assert!(compact_journal(&torn).is_err());
    }

    // -- adaptive engine: crash / resume ------------------------------

    fn run_adaptive(
        dag: &JobDag,
        schedule: &Schedule,
        gt: &GroundTruth,
        plan: &FaultPlan,
        ctx: &ReschedulingContext<'_>,
        session: &mut JournalSession,
    ) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
        try_simulate_adaptive_journaled(
            dag,
            schedule,
            gt,
            plan,
            &RecoveryPolicy::default(),
            ctx,
            &crate::adaptive::AdaptiveConfig::default(),
            &Recorder::disabled(),
            session,
        )
    }

    #[test]
    fn adaptive_crash_resume_replays_replans_bit_identically() {
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(2.0).and_object_loss(StageId(2), 0);
        let ctx = ctx(&model, &rm);
        let mut clean = JournalSession::fresh(None);
        let (bt, bm) = run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut clean).unwrap();
        assert!(!bt.replans.is_empty(), "2x drift must fire a replan");
        let total = clean.records_written();
        let v = validate_journal(&decode_journal(clean.durable_bytes()).unwrap().records);
        assert!(v.is_empty(), "{v:?}");
        // Replan decision sequence numbers are monotonic from 1.
        for (i, r) in bt.replans.iter().enumerate() {
            assert_eq!(r.decision_seq, i as u64 + 1);
        }
        for k in (0..total).step_by(3) {
            let mut armed = JournalSession::fresh(Some(k));
            let err = run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut armed)
                .expect_err("armed crash must kill the run");
            assert!(matches!(err, ExecError::CoordinatorCrash { at_record } if at_record == k));
            let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
            let (rt, rm2) = run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut resumed).unwrap();
            assert_eq!(rm2, bm, "crash at record {k}");
            assert_eq!(rt.tasks, bt.tasks, "crash at record {k}");
            assert_eq!(rt.attempts, bt.attempts, "crash at record {k}");
            assert_eq!(rt.replans, bt.replans, "crash at record {k}: replayed splices");
            let v = validate_journal(&decode_journal(resumed.durable_bytes()).unwrap().records);
            assert!(v.is_empty(), "crash at record {k}: {v:?}");
        }
    }

    #[test]
    fn adaptive_resume_bounds_recovery_work() {
        // Recovery must restore checkpointed stages instead of
        // re-simulating them: crash late, resume, and count.
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(2.0);
        let ctx = ctx(&model, &rm);
        let mut clean = JournalSession::fresh(None);
        run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut clean).unwrap();
        let total = clean.records_written();
        let mut armed = JournalSession::fresh(Some(total - 1));
        run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut armed).unwrap_err();
        let mut resumed = JournalSession::resume(armed.durable_bytes()).unwrap();
        run_adaptive(&dag, &schedule, &gt, &plan, &ctx, &mut resumed).unwrap();
        assert!(
            resumed.restored_stages() as usize >= dag.num_stages() - 2,
            "a last-record crash restores nearly every stage: {} of {}",
            resumed.restored_stages(),
            dag.num_stages()
        );
    }

    // -- cross-check: journal vs trace --------------------------------

    #[test]
    fn cross_check_certifies_a_recorded_run_and_catches_tampering() {
        let (dag, model, rm, schedule, gt) = fixture(&[24, 16]);
        let plan = FaultPlan::none().with_drift(2.0);
        let ctx = ctx(&model, &rm);
        let obs = Recorder::new();
        let mut session = JournalSession::fresh(None);
        try_simulate_adaptive_journaled(
            &dag,
            &schedule,
            &gt,
            &plan,
            &RecoveryPolicy::default(),
            &ctx,
            &crate::adaptive::AdaptiveConfig::default(),
            &obs,
            &mut session,
        )
        .unwrap();
        let trace = obs.finish();
        let records = decode_journal(session.durable_bytes()).unwrap().records;
        let findings = cross_check(&records, &trace);
        assert!(findings.is_empty(), "journal and trace agree: {findings:?}");
        // Tamper: shift one journaled commit value; the hb.write event it
        // maps to no longer matches.
        let mut tampered = records.clone();
        let pos = tampered
            .iter()
            .position(|r| matches!(r, JournalRecord::ObjectCommit { .. }))
            .unwrap();
        if let JournalRecord::ObjectCommit { value, .. } = &mut tampered[pos] {
            *value ^= 1;
        }
        assert!(!cross_check(&tampered, &trace).is_empty());
    }
}
