#![warn(missing_docs)]

//! # ditto-obs — the unified telemetry layer
//!
//! One observability vocabulary shared by every layer of the stack:
//!
//! * [`span`] — structured tracing: a thread-safe [`Recorder`] collecting
//!   [`SpanRecord`]s and [`EventRecord`]s on named tracks, with sim-clock
//!   *and* wall-clock timestamps. A disabled recorder costs one branch per
//!   call — no locks, no allocation — so instrumented hot paths stay hot.
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges and
//!   log-scale histograms (p50/p95/p99), keyed by static name + label.
//! * [`chrome`] — export a finished trace as Chrome `trace_event` JSON,
//!   loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//!   a Gantt of stages, tasks and attempts per server track, scheduler
//!   decisions on their own track, per-medium byte counters below.
//! * [`jsonl`] — the same stream as flat JSONL (one event per line) plus a
//!   human-readable end-of-run summary table.
//! * [`mod@critical_path`] — walk a finished trace backwards from the last
//!   task end and attribute every second of JCT to a (stage, step) pair or
//!   to scheduling gaps — the paper's Fig. 14 breakdown regenerated from
//!   the event stream instead of bespoke code.
//! * [`schema`] — a pure-Rust structural validator for the emitted Chrome
//!   trace (no network, no external schema engine) used by CI; knows the
//!   required attributes of the stack's own event kinds (`sched.replan`,
//!   `fault.*`, `recovery.lineage_reexec`, `drift.detected`, …).
//! * [`timings`] — the shared [`StepTimings`] (setup/read/compute/write)
//!   shape used by execution traces and the cluster runtime monitor.
//! * [`diff`] — cross-run differential analysis: align two traces of the
//!   same DAG and attribute the JCT delta to (stage, step, medium)
//!   buckets, classified as shared-path slowdown / path shift /
//!   structural (replans, faults, lineage recovery).
//! * [`folded`] — inferno-compatible collapsed-stack export, one
//!   `flamegraph.pl` invocation away from an SVG of where the run went.
//! * [`scorecard`] — a standing Fig.-11-style predictor-accuracy report
//!   (error CDF, per-step bias, drift annotations) built from
//!   `predictor.sample` and `drift.detected` events.
//!
//! Span names are namespaced by layer: `sched.*` (scheduler decisions),
//! `exec.*`/`task`/`attempt`/`stage` (executor), `storage.*` (data plane).

pub mod chrome;
pub mod critical_path;
pub mod diff;
pub mod folded;
pub mod import;
pub mod jsonl;
pub mod metrics;
pub mod schema;
pub mod scorecard;
pub mod span;
pub mod timings;

pub use chrome::to_chrome_trace;
pub use critical_path::{critical_path, CriticalPathReport, StageAttribution};
pub use diff::{diff_traces, DeltaKind, StageDelta, StructuralSummary, TraceDiff};
pub use folded::to_folded;
pub use import::{events_from_chrome, events_from_jsonl, ImportStats};
pub use jsonl::{summary_table, to_jsonl};
pub use scorecard::{DriftMark, PredictorSample, PredictorScorecard};
pub use metrics::{LogHistogram, MetricKind, MetricSnapshot, MetricsRegistry};
pub use schema::{validate_chrome_trace, ChromeTraceStats};
pub use span::{
    AttrValue, CounterSample, EventRecord, Recorder, SpanId, SpanRecord, TraceData, Track,
};
pub use timings::StepTimings;
