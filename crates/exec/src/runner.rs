//! The local runtime: physically execute a query plan under a schedule.
//!
//! This is the "execution engine atop SPRIGHT" of the paper's §5, scaled
//! to one machine: every task runs on its own worker thread, intermediate
//! tables are encoded with the `ditto-sql` codec and move through the
//! `ditto-storage` [`DataPlane`] — the zero-copy shared-memory bus when
//! the schedule co-locates producer and consumer, the external object
//! store otherwise. Stages run in topological order with a barrier in
//! between (launch-time overlap is a *timing* concern handled by the
//! simulator; the runtime's job is correctness and byte accounting).
//!
//! Communication patterns per edge kind:
//!
//! * **Shuffle** — each producer task hash-partitions its output by the
//!   stage's `output_key` into `d_dst` buckets and sends bucket `j` to
//!   consumer task `j` (keys co-partitioned across producers);
//! * **Gather** — each producer task forwards its whole output to one
//!   consumer (`producer % d_dst`), other consumers receive empty markers
//!   so schemas always propagate;
//! * **AllGather** — every consumer task receives a full copy.

use crate::error::ExecError;
use crate::faults::{AttemptOutcome, AttemptRecord, FaultPlan, FaultStats, RecoveryPolicy};
use ditto_cluster::{RuntimeMonitor, TaskRecord};
use ditto_core::Schedule;
use ditto_dag::{EdgeKind, StageId};
use ditto_sql::{Database, QueryPlan, StageOp, Table};
use ditto_storage::{DataPlane, TransferLedger};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Result of a local run.
#[derive(Debug)]
pub struct RunOutput {
    /// The job answer (final-stage partials combined).
    pub result: Table,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Data-plane accounting (bytes per medium, persistence cost).
    pub ledger: TransferLedger,
    /// Per-task runtime records.
    pub monitor: Arc<RuntimeMonitor>,
    /// Task attempts that crashed and were retried (fault injection).
    pub retries: u64,
    /// Attempt-level history of every faulted task (failed attempts plus
    /// their final completed one); empty for fault-free runs.
    pub attempts: Vec<AttemptRecord>,
    /// Aggregated fault and recovery accounting.
    pub fault_stats: FaultStats,
}

/// The multi-threaded local executor.
///
/// Fault injection follows the shared [`FaultPlan`] vocabulary. An
/// injected crash happens after the task's evaluation but *before it
/// publishes any output*, so the retry is idempotent and downstream
/// consumers only ever see one copy — the all-or-nothing output contract
/// real serverless shuffle layers rely on. Injected stragglers slow a
/// task down; with [`RecoveryPolicy::speculation`] enabled the runtime
/// launches a clean backup copy whose output supersedes the straggler.
/// Whole-server failures are a simulation-only concern (threads on one
/// machine don't lose servers) and are ignored here.
#[derive(Debug, Clone, Default)]
pub struct LocalRuntime {
    /// Receive timeout per partition (generous default: 30 s).
    pub recv_timeout: Option<Duration>,
    /// Fault injection plan (empty = no faults).
    pub faults: FaultPlan,
    /// Reaction to injected faults. Backoff waits are capped at 5 ms of
    /// wall time so fault tests stay fast.
    pub recovery: RecoveryPolicy,
}

impl LocalRuntime {
    /// A runtime with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    fn timeout(&self) -> Duration {
        self.recv_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Execute `plan` under `schedule`, moving intermediates through
    /// `dataplane`.
    ///
    /// # Panics
    /// Panics on any [`ExecError`] — thin wrapper over [`Self::try_run`]
    /// for callers that treat these conditions as bugs.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
    ) -> RunOutput {
        self.try_run(plan, db, schedule, dataplane)
            .unwrap_or_else(|err| panic!("{}: {err}", plan.name))
    }

    /// Fallible execution: every failure mode — invalid schedule, missing
    /// input, exhausted retries, worker panic — surfaces as a typed
    /// [`ExecError`] instead of a panic.
    pub fn try_run(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
    ) -> Result<RunOutput, ExecError> {
        let dag = &plan.dag;
        schedule.validate(dag).map_err(ExecError::InvalidSchedule)?;
        let monitor = Arc::new(RuntimeMonitor::new());
        let retries = AtomicU64::new(0);
        let attempts: Mutex<Vec<AttemptRecord>> = Mutex::new(Vec::new());
        let stats: Mutex<FaultStats> = Mutex::new(FaultStats::default());
        let started = Instant::now();
        let mut final_partials: Vec<Table> = Vec::new();
        let timeout = self.timeout();

        let order = dag.topo_order().map_err(|_| ExecError::CyclicDag)?;
        for s in order {
            let d = schedule.dop[s.index()];
            let is_final = dag.out_degree(s) == 0;
            let scan_slices: Option<Vec<Table>> = match &plan.stages[s.index()].op {
                StageOp::Scan { table, .. } => Some(db.table(table).split(d as usize)),
                _ => None,
            };

            let retries_ref = &retries;
            let attempts_ref = &attempts;
            let stats_ref = &stats;
            let results: Vec<Result<Option<Table>, ExecError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..d)
                        .map(|t| {
                            let scan_slice = scan_slices.as_ref().map(|v| v[t as usize].clone());
                            let monitor = monitor.clone();
                            scope.spawn(move || {
                                self.run_task(
                                    plan, db, schedule, dataplane, s, t, scan_slice, is_final,
                                    timeout, started, &monitor, retries_ref, attempts_ref,
                                    stats_ref,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .unwrap_or(Err(ExecError::TaskPanicked { stage: s.0 }))
                        })
                        .collect()
                });
            let mut partials = Vec::new();
            for r in results {
                if let Some(table) = r? {
                    partials.push(table);
                }
            }
            if is_final {
                final_partials = partials;
            }
        }

        let mut attempts = attempts.into_inner().unwrap_or_else(|p| p.into_inner());
        attempts.sort_by_key(|a| (a.stage, a.task, a.attempt));
        Ok(RunOutput {
            result: plan.combine_final(&final_partials),
            wall_seconds: started.elapsed().as_secs_f64(),
            ledger: dataplane.ledger(),
            monitor,
            retries: retries.load(Ordering::Relaxed),
            attempts,
            fault_stats: stats.into_inner().unwrap_or_else(|p| p.into_inner()),
        })
    }

    /// One task: gather inputs, evaluate the stage operator (under fault
    /// injection and recovery), scatter outputs. Returns the output table
    /// for final-stage tasks.
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        &self,
        plan: &QueryPlan,
        db: &Database,
        schedule: &Schedule,
        dataplane: &DataPlane,
        s: StageId,
        t: u32,
        scan_slice: Option<Table>,
        is_final: bool,
        timeout: Duration,
        job_start: Instant,
        monitor: &RuntimeMonitor,
        retries: &AtomicU64,
        attempts_log: &Mutex<Vec<AttemptRecord>>,
        stats: &Mutex<FaultStats>,
    ) -> Result<Option<Table>, ExecError> {
        let dag = &plan.dag;
        let launch = job_start.elapsed().as_secs_f64();
        let my_server = schedule.placement[s.index()].server_of_task(t).index();
        let server = ditto_cluster::ServerId(my_server as u32);
        let push_attempt = |rec: AttemptRecord| {
            attempts_log
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(rec);
        };

        // ---- gather inputs ----
        let read_t0 = Instant::now();
        let mut inputs: BTreeMap<String, Table> = BTreeMap::new();
        let mut bytes_read = 0u64;
        for e in dag.in_edges(s) {
            let du = schedule.dop[e.src.index()];
            let mut parts = Vec::new();
            for ut in 0..du {
                let src_server = schedule.placement[e.src.index()].server_of_task(ut).index();
                let data = dataplane
                    .recv_partition(e.id.0, ut, t, src_server, my_server, timeout)
                    .map_err(|err| ExecError::MissingInput {
                        stage: s.0,
                        task: t,
                        detail: format!("{}: edge {}: {err}", plan.name, e.id),
                    })?;
                bytes_read += data.len() as u64;
                parts.push(Table::decode(data));
            }
            let merged = Table::concat(&parts).ok_or_else(|| ExecError::MissingInput {
                stage: s.0,
                task: t,
                detail: format!("{}: edge {} has no upstream tasks", plan.name, e.id),
            })?;
            inputs.insert(dag.stage(e.src).name.clone(), merged);
        }
        let read_secs = read_t0.elapsed().as_secs_f64();

        // Nominal function footprint for wasted-work billing, mirroring
        // the ground-truth memory model (base footprint + bytes handled).
        let mem_gb = 0.125 + bytes_read as f64 * 2.0e-9;

        // ---- evaluate (crash-and-retry fault injection) ----
        let compute_t0 = Instant::now();
        let mut attempt = 0u32;
        let mut attempt_start;
        let mut faulted = false;
        let mut out = loop {
            attempt_start = job_start.elapsed().as_secs_f64();
            let attempt_out = plan.execute_stage(s, db, &inputs, scan_slice.as_ref());
            if self.faults.crash_point(s, t, attempt).is_some() {
                // The attempt crashed before publishing: discard its
                // output, back off, re-execute.
                drop(attempt_out);
                let now = job_start.elapsed().as_secs_f64();
                let wasted = mem_gb * (now - attempt_start);
                push_attempt(AttemptRecord {
                    stage: s.0,
                    task: t,
                    attempt,
                    server,
                    start: attempt_start,
                    end: now,
                    outcome: AttemptOutcome::Crashed,
                    wasted_gb_s: wasted,
                });
                retries.fetch_add(1, Ordering::Relaxed);
                if attempt >= self.recovery.max_retries {
                    return Err(ExecError::RetriesExhausted {
                        stage: s.0,
                        task: t,
                        attempts: attempt + 1,
                    });
                }
                // Cap the physical wait so fault tests stay fast; the
                // modeled backoff lives in the simulator.
                let backoff = self.recovery.backoff(attempt).min(0.005);
                {
                    let mut st = stats.lock().unwrap_or_else(|p| p.into_inner());
                    st.extra_attempts += 1;
                    st.wasted_gb_s += wasted;
                    st.recovery_delay_s += (now - attempt_start) + backoff;
                }
                std::thread::sleep(Duration::from_secs_f64(backoff));
                attempt += 1;
                faulted = true;
                continue;
            }
            break attempt_out;
        };

        // ---- injected straggler + speculative re-execution ----
        let slow = self.faults.slowdown(s, t);
        if slow > 1.0 {
            // Stall the attempt observably (bounded wall time).
            std::thread::sleep(Duration::from_secs_f64(((slow - 1.0) * 1e-3).min(0.01)));
            if self.recovery.speculation {
                // A clean backup copy supersedes the stalled original —
                // identical output (evaluation is deterministic), so the
                // handoff is transparent to downstream consumers.
                let now = job_start.elapsed().as_secs_f64();
                let wasted = mem_gb * (now - attempt_start);
                push_attempt(AttemptRecord {
                    stage: s.0,
                    task: t,
                    attempt,
                    server,
                    start: attempt_start,
                    end: now,
                    outcome: AttemptOutcome::Superseded,
                    wasted_gb_s: wasted,
                });
                {
                    let mut st = stats.lock().unwrap_or_else(|p| p.into_inner());
                    st.extra_attempts += 1;
                    st.wasted_gb_s += wasted;
                    st.recovery_delay_s += now - attempt_start;
                    st.speculative_copies += 1;
                }
                attempt += 1;
                attempt_start = job_start.elapsed().as_secs_f64();
                out = plan.execute_stage(s, db, &inputs, scan_slice.as_ref());
                faulted = true;
            }
        }
        let compute_secs = compute_t0.elapsed().as_secs_f64();

        // ---- scatter outputs ----
        let write_t0 = Instant::now();
        let mut bytes_written = 0u64;
        for e in dag.out_edges(s) {
            let dv = schedule.dop[e.dst.index()];
            let buckets: Vec<Table> = match e.kind {
                EdgeKind::Shuffle => {
                    let key = plan.stages[s.index()]
                        .output_key
                        .as_deref()
                        .ok_or(ExecError::MissingOutputKey { stage: s.0 })?;
                    out.hash_partition(key, dv as usize)
                }
                EdgeKind::Gather => {
                    // Full output to consumer (t % dv); empty markers keep
                    // schemas flowing to the rest.
                    let target = t % dv;
                    (0..dv)
                        .map(|vt| {
                            if vt == target {
                                out.clone()
                            } else {
                                Table::empty(out.schema.clone())
                            }
                        })
                        .collect()
                }
                EdgeKind::AllGather => (0..dv).map(|_| out.clone()).collect(),
            };
            for (vt, bucket) in buckets.into_iter().enumerate() {
                let dst_server = schedule.placement[e.dst.index()]
                    .server_of_task(vt as u32)
                    .index();
                let data = bucket.encode();
                bytes_written += data.len() as u64;
                dataplane
                    .send_partition(e.id.0, t, vt as u32, my_server, dst_server, data)
                    .map_err(|err| {
                        ExecError::DataPlane(format!("{}: stage {s} task {t}: {err}", plan.name))
                    })?;
            }
        }
        let write_secs = write_t0.elapsed().as_secs_f64();

        let end = job_start.elapsed().as_secs_f64();
        monitor.record(TaskRecord {
            stage: s.0,
            task: t,
            server,
            start: launch,
            end,
            steps: ditto_obs::StepTimings::new(0.0, read_secs, compute_secs, write_secs),
            bytes_read,
            bytes_written,
        });
        if faulted {
            // Close the attempt sequence with the winning execution.
            push_attempt(AttemptRecord {
                stage: s.0,
                task: t,
                attempt,
                server,
                start: attempt_start,
                end,
                outcome: AttemptOutcome::Completed,
                wasted_gb_s: 0.0,
            });
        }

        Ok(is_final.then_some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_cluster::ResourceManager;
    use ditto_core::baselines::{EvenSplitScheduler, NimbleScheduler};
    use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
    use ditto_sql::queries::{q1, q95, Query};
    use ditto_sql::ScaleConfig;
    use ditto_storage::Medium;
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn run_query(
        q: Query,
        scheduler: &dyn Scheduler,
        free: &[u32],
        external: Medium,
    ) -> (RunOutput, QueryPlan, Database) {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = q.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(external, free.len());
        let out = LocalRuntime::new().execute(&plan, &db, &schedule, &dataplane);
        (out, plan, db)
    }

    #[test]
    fn q95_distributed_matches_reference() {
        let (out, _, db) = run_query(
            Query::Q95,
            &EvenSplitScheduler,
            &[8, 8, 8, 8],
            Medium::S3,
        );
        let (n, cost, profit) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - cost).abs() < 1e-6 * cost.abs().max(1.0));
        assert!((gp - profit).abs() < 1e-6 * profit.abs().max(1.0));
        assert!(out.wall_seconds > 0.0);
        // One record per task across all 9 stages.
        let recs = out.monitor.records();
        let stages_seen: std::collections::HashSet<u32> = recs.iter().map(|r| r.stage).collect();
        assert_eq!(stages_seen.len(), 9, "all 9 stages executed");
        assert!(recs.len() >= 9);
    }

    #[test]
    fn q1_distributed_matches_reference_under_ditto_schedule() {
        let (out, _, db) = run_query(Query::Q1, &DittoScheduler::new(), &[16, 8, 8], Medium::S3);
        let expected = q1::reference(&db);
        let mut got = q1::result_customers(&out.result);
        got.sort_unstable();
        let mut exp = expected;
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn nimble_schedule_gives_same_answer_as_ditto() {
        let (a, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[24, 12, 8], Medium::S3);
        let (b, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[24, 12, 8],
            Medium::S3,
        );
        // Equal up to float summation order (tasks sum partials in
        // different groupings under different schedules).
        let (an, ac, ap) = q95::result_triple(&a.result);
        let (bn, bc, bp) = q95::result_triple(&b.result);
        assert_eq!(an, bn, "answers are schedule-independent");
        assert!((ac - bc).abs() < 1e-6 * ac.abs().max(1.0));
        assert!((ap - bp).abs() < 1e-6 * ap.abs().max(1.0));
    }

    #[test]
    fn colocated_schedule_uses_shared_memory() {
        // Ditto on a roomy cluster groups stages → shared-memory traffic.
        let (out, _, _) = run_query(Query::Q95, &DittoScheduler::new(), &[96, 96], Medium::S3);
        assert!(
            out.ledger.shared_memory.transfers > 0,
            "expected zero-copy transfers, ledger: {:?}",
            out.ledger
        );
    }

    #[test]
    fn nimble_never_uses_shared_memory_deliberately() {
        let (out, _, _) = run_query(
            Query::Q95,
            &NimbleScheduler::default(),
            &[96, 96],
            Medium::S3,
        );
        // Random placement may co-locate individual task pairs, but the
        // schedule declares no colocation, so the data plane only routes
        // via shared memory when src/dst servers coincide by chance. With
        // 2 servers roughly half the traffic lands local; what matters is
        // external traffic exists at all (Ditto above can make it ~zero).
        assert!(out.ledger.s3.transfers > 0);
    }

    #[test]
    fn fault_injection_retries_and_stays_correct() {
        let db = Database::generate(ScaleConfig::with_sf(0.3));
        let plan = Query::Q95.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let dataplane = DataPlane::new(Medium::S3, free.len());
        let runtime = LocalRuntime {
            faults: FaultPlan::with_random_crashes(0.3, 3),
            recovery: RecoveryPolicy {
                max_retries: 8,
                ..RecoveryPolicy::retry_only()
            },
            ..Default::default()
        };
        let out = runtime.execute(&plan, &db, &schedule, &dataplane);
        assert!(out.retries > 0, "30% failure rate must trigger retries");
        // Attempt records mirror the retry counter and bill wasted work.
        let crashed = out
            .attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::Crashed)
            .count() as u64;
        assert_eq!(crashed, out.retries);
        assert!(out.fault_stats.wasted_gb_s > 0.0);
        assert_eq!(out.fault_stats.extra_attempts as u64, out.retries);
        // The answer is unaffected by crashes.
        let (n, c, p) = q95::reference(&db);
        let (gn, gc, gp) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!((gc - c).abs() < 1e-6 * c.abs().max(1.0));
        assert!((gp - p).abs() < 1e-6 * p.abs().max(1.0));
    }

    #[test]
    fn fault_injection_deterministic_per_seed() {
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let run = |seed: u64| {
            let dataplane = DataPlane::new(Medium::S3, free.len());
            LocalRuntime {
                faults: FaultPlan::with_random_crashes(0.5, seed),
                recovery: RecoveryPolicy {
                    max_retries: 32,
                    ..RecoveryPolicy::retry_only()
                },
                ..Default::default()
            }
            .execute(&plan, &db, &schedule, &dataplane)
            .retries
        };
        assert_eq!(run(3), run(3), "same seed, same crash pattern");
    }

    #[test]
    fn explicit_faults_leave_answer_byte_identical() {
        use crate::faults::FaultEvent;
        let db = Database::generate(ScaleConfig::with_sf(0.2));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let free = vec![8u32, 8];
        let rm = ResourceManager::from_free_slots(free.clone());
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let clean = LocalRuntime::new()
            .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, free.len()))
            .unwrap();
        assert!(clean.attempts.is_empty(), "fault-free run records no attempts");
        // One crash + one straggler, recovered under the default policy.
        let out = LocalRuntime {
            faults: FaultPlan::from_events(vec![
                FaultEvent::TaskCrash {
                    stage: StageId(0),
                    task: 0,
                    attempt: 0,
                    at_fraction: 0.5,
                },
                FaultEvent::Straggler {
                    stage: StageId(1),
                    task: 0,
                    slowdown: 5.0,
                },
            ]),
            recovery: RecoveryPolicy::default(),
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, free.len()))
        .unwrap();
        assert_eq!(
            out.result.encode(),
            clean.result.encode(),
            "recovered run must produce the exact same final table"
        );
        let extra = out
            .attempts
            .iter()
            .filter(|a| a.outcome != AttemptOutcome::Completed)
            .count();
        assert!(extra >= 2, "crash + superseded straggler, got {extra}");
        assert!(out.attempts.iter().any(|a| a.outcome == AttemptOutcome::Crashed));
        assert!(out
            .attempts
            .iter()
            .any(|a| a.outcome == AttemptOutcome::Superseded));
        assert!(out.fault_stats.wasted_gb_s > 0.0, "wasted work is billed");
        assert_eq!(out.fault_stats.speculative_copies, 1);
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        use crate::faults::FaultEvent;
        let db = Database::generate(ScaleConfig::with_sf(0.1));
        let plan = Query::Q1.prepared_plan(&db);
        let model = JobTimeModel::from_rates(&plan.dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![8]);
        let schedule = EvenSplitScheduler.schedule(&SchedulingContext {
            dag: &plan.dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let events = (0..3)
            .map(|a| FaultEvent::TaskCrash {
                stage: StageId(0),
                task: 0,
                attempt: a,
                at_fraction: 0.5,
            })
            .collect();
        let err = LocalRuntime {
            faults: FaultPlan::from_events(events),
            recovery: RecoveryPolicy {
                max_retries: 2,
                ..RecoveryPolicy::retry_only()
            },
            ..Default::default()
        }
        .try_run(&plan, &db, &schedule, &DataPlane::new(Medium::S3, 1))
        .unwrap_err();
        assert_eq!(
            err,
            crate::error::ExecError::RetriesExhausted {
                stage: 0,
                task: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn redis_backend_works_too() {
        let (out, _, db) = run_query(Query::Q95, &EvenSplitScheduler, &[8, 8], Medium::Redis);
        let (n, _, _) = q95::reference(&db);
        let (gn, _, _) = q95::result_triple(&out.result);
        assert_eq!(gn, n);
        assert!(out.ledger.redis.transfers > 0);
    }
}
