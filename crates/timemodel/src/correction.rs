//! Online correction of a fitted model from observed step timings.
//!
//! The paper fits its execution-time model offline (§4.2) and reuses it;
//! when the deployment drifts — slower functions, congested storage — the
//! frozen α/β under-predict and every downstream DoP decision is wrong.
//! The drift detector (in `ditto-cluster`) learns per-step multiplicative
//! ratios of observed over predicted time; this module applies them to a
//! [`JobTimeModel`], producing the *corrected* model that suffix
//! re-optimization feeds back into `joint_optimize`.
//!
//! Corrections are per-step (read / compute / write), not a single scalar
//! per stage: a uniform inflation of `α` and `β` leaves the optimal DoP
//! ratios of Eq. 3/4 unchanged, so only differential step drift (e.g.
//! compute slowing while I/O holds) makes re-planning change the schedule.

use crate::model::JobTimeModel;
use crate::step::{Step, StepKind};
use ditto_dag::{JobDag, StageId};

/// Multiplicative per-step correction factors (observed / predicted).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StepCorrections {
    /// Factor on read steps (external input + shuffle reads).
    pub read: f64,
    /// Factor on the compute step.
    pub compute: f64,
    /// Factor on write steps (external output + shuffle writes).
    pub write: f64,
}

impl Default for StepCorrections {
    fn default() -> Self {
        Self::identity()
    }
}

impl StepCorrections {
    /// Neutral corrections: the model is believed as fitted.
    pub fn identity() -> Self {
        StepCorrections {
            read: 1.0,
            compute: 1.0,
            write: 1.0,
        }
    }

    /// Uniform factor on all three steps.
    pub fn uniform(factor: f64) -> Self {
        StepCorrections {
            read: factor,
            compute: factor,
            write: factor,
        }
    }

    /// Largest factor across the three steps — the headline drift number
    /// recorded on replan records.
    pub fn max_factor(&self) -> f64 {
        self.read.max(self.compute).max(self.write)
    }

    /// Factors clamped into `[lo, hi]` — defensive bound so one wild
    /// observation cannot push the corrected model into nonsense.
    pub fn clamped(&self, lo: f64, hi: f64) -> Self {
        StepCorrections {
            read: self.read.clamp(lo, hi),
            compute: self.compute.clamp(lo, hi),
            write: self.write.clamp(lo, hi),
        }
    }
}

/// Per-stage corrections for a whole job, with a global fallback for
/// stages that have not produced observations yet (exactly the suffix
/// stages a replan re-optimizes).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModelCorrections {
    /// Per-stage factors; `None` means no direct observations for that
    /// stage and the global factors apply.
    pub per_stage: Vec<Option<StepCorrections>>,
    /// Job-wide factors learned across all completed tasks.
    pub global: StepCorrections,
}

impl ModelCorrections {
    /// Identity corrections for an `n`-stage job.
    pub fn identity(n: usize) -> Self {
        ModelCorrections {
            per_stage: vec![None; n],
            global: StepCorrections::identity(),
        }
    }

    /// The factors that apply to stage `s`: its own if observed, else the
    /// global fallback.
    pub fn for_stage(&self, s: StageId) -> StepCorrections {
        self.per_stage
            .get(s.index())
            .and_then(|c| *c)
            .unwrap_or(self.global)
    }

    /// `true` when every applicable factor is within `tol` of 1.0 — the
    /// corrected model would equal the fitted one and a replan is moot.
    pub fn is_identity(&self, tol: f64) -> bool {
        let near = |c: &StepCorrections| {
            (c.read - 1.0).abs() <= tol
                && (c.compute - 1.0).abs() <= tol
                && (c.write - 1.0).abs() <= tol
        };
        near(&self.global) && self.per_stage.iter().flatten().all(near)
    }
}

/// Bounds applied to every correction factor before it touches the model.
pub const CORRECTION_CLAMP: (f64, f64) = (0.2, 10.0);

impl JobTimeModel {
    /// A copy of this model with the corrections applied: each stage's
    /// compute step is scaled by its compute factor, external reads/writes
    /// by its read/write factors, and each edge's I/O by the reading
    /// (downstream) and writing (upstream) stage's factors respectively.
    /// Both α and β scale — drift hits fixed overheads and throughput
    /// alike — so corrected predictions stay `α'/d + β'`.
    pub fn corrected(&self, dag: &JobDag, corrections: &ModelCorrections) -> JobTimeModel {
        let (lo, hi) = CORRECTION_CLAMP;
        let mut m = self.clone();
        for s in dag.stages() {
            let c = corrections.for_stage(s.id).clamped(lo, hi);
            let steps = m.stage_steps_mut(s.id);
            steps.compute.alpha *= c.compute;
            steps.compute.beta *= c.compute;
            steps.external_read.alpha *= c.read;
            steps.external_read.beta *= c.read;
            steps.external_write.alpha *= c.write;
            steps.external_write.beta *= c.write;
        }
        for e in dag.edges() {
            let cw = corrections.for_stage(e.src).clamped(lo, hi).write;
            let cr = corrections.for_stage(e.dst).clamped(lo, hi).read;
            let io = m.edge_io_mut(e.id);
            io.write.alpha *= cw;
            io.write.beta *= cw;
            io.read.alpha *= cr;
            io.read.beta *= cr;
        }
        m
    }

    /// A copy of this model with completed stages' costs zeroed — the
    /// sunk-cost mask a mid-flight replan optimizes against.
    ///
    /// `joint_optimize` plans the whole DAG, but once a stage has finished
    /// its time is sunk: a drift-corrected model that still charges it
    /// makes the optimizer spend slots shortening work that cannot shrink,
    /// starving the suffix the replan is actually for. Masking zeroes a
    /// completed stage's compute and external I/O, the write side of its
    /// outgoing edges (the data is already in the object store), and the
    /// read side of edges *into* other completed stages. Reads across the
    /// prefix/suffix seam stay at full cost — the running suffix still
    /// pays them. With every `done[i]` false this is an exact clone.
    pub fn masked_completed(&self, dag: &JobDag, done: &[bool]) -> JobTimeModel {
        assert_eq!(done.len(), dag.num_stages(), "mask length must match DAG");
        let mut m = self.clone();
        for s in dag.stages() {
            if done[s.id.index()] {
                let steps = m.stage_steps_mut(s.id);
                steps.compute = Step::zero(StepKind::Compute);
                steps.external_read = Step::zero(StepKind::Read);
                steps.external_write = Step::zero(StepKind::Write);
            }
        }
        for e in dag.edges() {
            let io = m.edge_io_mut(e.id);
            if done[e.src.index()] {
                io.write = Step::zero(StepKind::Write);
            }
            if done[e.dst.index()] {
                io.read = Step::zero(StepKind::Read);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RateConfig;
    use ditto_dag::generators;

    #[test]
    fn identity_corrections_change_nothing() {
        let dag = generators::fig1_join();
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let c = ModelCorrections::identity(dag.num_stages());
        assert!(c.is_identity(0.0));
        let m2 = m.corrected(&dag, &c);
        let none = m.no_colocation();
        for s in dag.stages() {
            assert_eq!(
                m.exec_time(&dag, s.id, 8.0, &none),
                m2.exec_time(&dag, s.id, 8.0, &none)
            );
        }
    }

    #[test]
    fn uniform_drift_scales_exec_time_linearly() {
        let dag = generators::fig1_join();
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let mut c = ModelCorrections::identity(dag.num_stages());
        c.global = StepCorrections::uniform(2.0);
        assert!(!c.is_identity(1e-6));
        let m2 = m.corrected(&dag, &c);
        let none = m.no_colocation();
        for s in dag.stages() {
            let t = m.exec_time(&dag, s.id, 4.0, &none);
            let t2 = m2.exec_time(&dag, s.id, 4.0, &none);
            assert!((t2 - 2.0 * t).abs() < 1e-9, "stage {}: {t2} vs 2*{t}", s.name);
        }
    }

    #[test]
    fn compute_only_drift_changes_alpha_balance() {
        // Differential drift (compute 3x, I/O flat) must change the
        // relative alphas — the property that makes re-planning move DoPs.
        let dag = generators::fig1_join();
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let mut c = ModelCorrections::identity(dag.num_stages());
        c.per_stage[0] = Some(StepCorrections {
            read: 1.0,
            compute: 3.0,
            write: 1.0,
        });
        let m2 = m.corrected(&dag, &c);
        let none = m.no_colocation();
        let a0 = m.stage_alpha(&dag, StageId(0), &none);
        let a0c = m2.stage_alpha(&dag, StageId(0), &none);
        let a1 = m.stage_alpha(&dag, StageId(1), &none);
        let a1c = m2.stage_alpha(&dag, StageId(1), &none);
        assert!(a0c > a0, "corrected stage-0 alpha should grow");
        assert_eq!(a1, a1c, "untouched stage keeps global identity");
        assert!((a0c / a1c) > (a0 / a1), "alpha ratio must shift");
    }

    #[test]
    fn masked_completed_zeroes_prefix_but_keeps_seam_reads() {
        let dag = generators::fig1_join();
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let none = m.no_colocation();
        // Nothing done: exact clone.
        let all_false = vec![false; dag.num_stages()];
        let m0 = m.masked_completed(&dag, &all_false);
        for s in dag.stages() {
            assert_eq!(
                m.exec_time(&dag, s.id, 8.0, &none),
                m0.exec_time(&dag, s.id, 8.0, &none)
            );
        }
        // Stage 0 done: its own steps and its outgoing writes are sunk,
        // but downstream stages still pay the read across the seam.
        let mut done = all_false;
        done[0] = true;
        let m1 = m.masked_completed(&dag, &done);
        assert!(m1.stage_steps(StageId(0)).compute.is_zero());
        let consumer = dag
            .edges()
            .iter()
            .find(|e| e.src == StageId(0))
            .expect("stage 0 has a consumer");
        assert!(m1.edge_io(consumer.id).write.is_zero(), "producer write sunk");
        assert!(!m1.edge_io(consumer.id).read.is_zero(), "seam read still paid");
        assert!(
            m1.exec_time(&dag, consumer.dst, 8.0, &none)
                <= m.exec_time(&dag, consumer.dst, 8.0, &none)
        );
    }

    #[test]
    fn per_stage_overrides_global_and_clamps() {
        let dag = generators::fig1_join();
        let mut c = ModelCorrections::identity(dag.num_stages());
        c.global = StepCorrections::uniform(2.0);
        c.per_stage[1] = Some(StepCorrections::uniform(100.0));
        assert_eq!(c.for_stage(StageId(0)).compute, 2.0);
        assert_eq!(c.for_stage(StageId(1)).compute, 100.0);
        let m = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let m2 = m.corrected(&dag, &c);
        // 100x clamps to CORRECTION_CLAMP.1.
        let ratio = m2.stage_steps(StageId(1)).compute.alpha / m.stage_steps(StageId(1)).compute.alpha;
        assert!((ratio - CORRECTION_CLAMP.1).abs() < 1e-9, "ratio {ratio}");
    }
}
