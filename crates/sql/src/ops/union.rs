//! Union: concatenate relations, optionally deduplicating (`UNION` vs
//! `UNION ALL`).

use crate::ops::sort::distinct;
use crate::table::Table;

/// `UNION ALL`: concatenate tables with identical schemas. Returns `None`
/// for an empty input list.
pub fn union_all(tables: &[Table]) -> Option<Table> {
    Table::concat(tables)
}

/// `UNION`: concatenate then keep distinct rows (over all columns), in
/// first-appearance order.
pub fn union(tables: &[Table]) -> Option<Table> {
    let all = Table::concat(tables)?;
    let cols: Vec<&str> = all.schema.fields.iter().map(|f| f.name.as_str()).collect();
    Some(distinct(&all, &cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DataType};
    use crate::table::Schema;

    fn t(keys: &[i64]) -> Table {
        Table::new(
            Schema::new(&[("k", DataType::I64)]),
            vec![Column::I64(keys.to_vec())],
        )
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let u = union_all(&[t(&[1, 2]), t(&[2, 3])]).unwrap();
        assert_eq!(u.column_req("k").as_i64(), &[1, 2, 2, 3]);
    }

    #[test]
    fn union_dedupes() {
        let u = union(&[t(&[1, 2]), t(&[2, 3, 1])]).unwrap();
        assert_eq!(u.column_req("k").as_i64(), &[1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        assert!(union_all(&[]).is_none());
        assert!(union(&[]).is_none());
    }

    #[test]
    fn single_input_identity() {
        let u = union_all(&[t(&[5, 5])]).unwrap();
        assert_eq!(u.num_rows(), 2);
        let u = union(&[t(&[5, 5])]).unwrap();
        assert_eq!(u.num_rows(), 1);
    }
}
