//! Quickstart: schedule the paper's motivating join DAG (Fig. 1).
//!
//! Builds the three-stage join job, fits an execution-time model from
//! simulated profiles, schedules it with Ditto and with the NIMBLE
//! baseline on a 20-slot cluster, and simulates both.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ditto::cluster::ResourceManager;
use ditto::core::baselines::NimbleScheduler;
use ditto::core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto::exec::{profile_job, simulate, ExecConfig, GroundTruth};

fn main() {
    // The Fig. 1 job: two map stages scanning tables A (8 GB) and B
    // (2 GB), feeding a join.
    let dag = ditto::dag::generators::fig1_join();
    println!("{}", dag.describe());

    // Recurring jobs are profiled; the scheduler sees the fitted α/d + β
    // model, never the ground truth.
    let gt = GroundTruth::new(ExecConfig::default());
    let profile = profile_job(&dag, &gt, &[2, 4, 8, 16, 20]);
    let (model, build_time) = profile.build_model(&dag);
    println!("model fitted in {build_time:?}\n");

    // 2 servers × 10 free slots.
    let rm = ResourceManager::from_free_slots(vec![10, 10]);

    for scheduler in [
        &DittoScheduler::new() as &dyn Scheduler,
        &NimbleScheduler::default(),
    ] {
        let schedule = scheduler.schedule(&SchedulingContext {
            dag: &dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        let (_, metrics) = simulate(&dag, &schedule, &gt);
        println!("{}", schedule.describe(&dag));
        println!(
            "  simulated JCT = {:.2}s, cost = {:.1} GB·s\n",
            metrics.jct,
            metrics.total_cost()
        );
    }
}
