//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p ditto-bench --bin figures -- all
//! cargo run --release -p ditto-bench --bin figures -- fig8a fig12 table1
//! cargo run --release -p ditto-bench --bin figures -- --json fig8a
//! cargo run --release -p ditto-bench --bin figures -- faults --trace-out trace.json
//! cargo run --release -p ditto-bench --bin figures -- sched        # writes BENCH_sched.json
//! ```
//!
//! `sched` (and its CI subset `sched-smoke`) is not part of `all`: the
//! full sweep times the from-scratch reference optimizer up to 1024
//! stages, which is exactly the slow path the incremental rewrite
//! retired.
//!
//! `--trace-out <path>` additionally runs the fixed-seed traced fault
//! experiment and writes its full telemetry stream as a Chrome
//! trace_event file (load in <https://ui.perfetto.dev>), printing the
//! critical-path JCT attribution alongside.

use ditto_bench::{render_rows, write_json};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--trace-out needs a path argument");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    };
    let json = args.iter().any(|a| a == "--json");
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let all = [
        "fig1", "fig2", "fig4", "fig5", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1", "table2", "ablations",
        "multi", "deadline", "faults", "telemetry", "audit", "export",
    ];
    let targets: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        all.to_vec()
    } else {
        wanted
    };

    // `sched` consumes --trace-out itself (the bench.sched spans); don't
    // overwrite its file with the fault exemplar afterwards.
    let mut sched_traced = false;

    for t in targets {
        println!("==================== {t} ====================");
        match t {
            "fig1" => emit(&ditto_bench::fig1(), json),
            "fig2" => emit(&ditto_bench::fig2(), json),
            "fig4" => emit(&ditto_bench::fig4(), json),
            "fig5" => emit(&ditto_bench::fig5(), json),
            "fig8a" => emit(&ditto_bench::fig8a(), json),
            "fig8b" => emit(&ditto_bench::fig8b(), json),
            "fig8c" => emit(&ditto_bench::fig8c(), json),
            "fig9a" => emit(&ditto_bench::fig9a(), json),
            "fig9b" => emit(&ditto_bench::fig9b(), json),
            "fig9c" => emit(&ditto_bench::fig9c(), json),
            "fig10" => {
                let (jct, cost) = ditto_bench::fig10();
                println!("--- JCT ---");
                emit(&jct, json);
                println!("--- cost ---");
                emit(&cost, json);
            }
            "fig11" => emit(&ditto_bench::fig11(), json),
            "fig12" => {
                let (jct, cost) = ditto_bench::fig12();
                println!("--- JCT ---");
                emit(&jct, json);
                println!("--- cost ---");
                emit(&cost, json);
            }
            "fig13" => {
                // The Q95 DAG structure is data, not a measurement.
                let plan = ditto_sql::queries::Query::Q95.plan();
                println!("{}", plan.dag.describe());
            }
            "fig14" => emit(&ditto_bench::fig14(), json),
            "fig15" => {
                let out = ditto_bench::fig15();
                println!(
                    "fixed JCT = {:.1}s (dop {:?})",
                    out.fixed_jct, out.fixed_dop
                );
                println!("{}", out.fixed_gantt);
                println!(
                    "elastic JCT = {:.1}s (dop {:?})",
                    out.elastic_jct, out.elastic_dop
                );
                println!("{}", out.elastic_gantt);
            }
            "table1" => emit(&ditto_bench::table1(9), json),
            "table2" => emit(&ditto_bench::table2(), json),
            "ablations" => emit(&ditto_bench::all_ablations(), json),
            "multi" => emit(&ditto_bench::multi_job(), json),
            "deadline" => emit(&ditto_bench::deadline_sweep(), json),
            "faults" => emit(&ditto_bench::fault_sweep(), json),
            // Scheduler throughput: incremental joint_optimize vs the
            // from-scratch reference. `sched` runs the full 16→1024-stage
            // sweep; `sched-smoke` the CI subset (16/64/256). Both write
            // BENCH_sched.json to the cwd; with `--trace-out` the
            // bench.sched spans land in the Chrome trace.
            "sched" | "sched-smoke" => {
                let obs = if trace_out.is_some() {
                    ditto_obs::Recorder::new()
                } else {
                    ditto_obs::Recorder::disabled()
                };
                let sizes = if t == "sched" {
                    ditto_bench::sched_bench::SCHED_BENCH_SIZES
                } else {
                    ditto_bench::sched_bench::SCHED_SMOKE_SIZES
                };
                let rows = ditto_bench::sched_bench_sizes(sizes, &obs);
                emit(&rows, json);
                std::fs::write("BENCH_sched.json", write_json(&rows)).expect("write BENCH_sched.json");
                println!("wrote BENCH_sched.json ({} rows)", rows.len());
                if let Some(path) = &trace_out {
                    let data = obs.finish();
                    let chrome = ditto_obs::to_chrome_trace(&data);
                    std::fs::write(path, &chrome).expect("write trace file");
                    println!("wrote {path} ({} spans)", data.spans.len());
                    sched_traced = true;
                }
            }
            // Adaptive-execution sweep: drift × loss × recovery policy,
            // frozen vs adaptive engine. `adapt` runs the full grid;
            // `adapt-smoke` the CI extremes. Both write BENCH_adapt.json
            // (deterministic: same seed → byte-identical artifact).
            "adapt" | "adapt-smoke" => {
                let rows = if t == "adapt" {
                    ditto_bench::adapt_sweep()
                } else {
                    ditto_bench::adapt_sweep_smoke()
                };
                emit(&rows, json);
                std::fs::write("BENCH_adapt.json", write_json(&rows)).expect("write BENCH_adapt.json");
                println!("wrote BENCH_adapt.json ({} rows)", rows.len());
                if rows.iter().any(|r| !r.audit_clean) {
                    eprintln!("adaptive sweep: a replan failed its feasibility certificate");
                    std::process::exit(1);
                }
            }
            "telemetry" => emit(&ditto_bench::telemetry_overhead(), json),
            // Certificate sweep: audit every scheduler's output on 32
            // seeded random DAGs × both objectives. Exits nonzero if any
            // schedule fails its certificate, so CI can gate on it.
            "audit" => {
                let rows = ditto_bench::audit_sweep(ditto_bench::AUDIT_SWEEP_SEEDS);
                emit(&rows, json);
                let errors: usize = rows.iter().map(|r| r.errors).sum();
                println!(
                    "audit sweep: {} schedules certified, {} error findings",
                    rows.len(),
                    errors
                );
                if !ditto_bench::sweep_is_clean(&rows) {
                    std::process::exit(1);
                }
            }
            "export" => {
                // Artifacts: the Ditto-scheduled Q95 DAG as Graphviz DOT
                // (groups colored) and its simulated trace as a Chrome
                // Trace Event file, written next to the binary's cwd.
                use ditto_core::{DittoScheduler, Objective};
                let p = ditto_bench::prepare(
                    ditto_sql::queries::Query::Q95,
                    ditto_storage::Medium::S3,
                );
                let rm = ditto_bench::setup::default_testbed();
                let schedule = p.schedule(&DittoScheduler::new(), &rm, Objective::Jct);
                let dot =
                    ditto_dag::export::to_dot_grouped(&p.plan.dag, &schedule.group_of, &schedule.dop);
                std::fs::write("q95_schedule.dot", &dot).expect("write dot");
                let (trace, m) = ditto_exec::simulate(&p.plan.dag, &schedule, &p.gt);
                std::fs::write("q95_trace.json", trace.to_chrome_trace()).expect("write trace");
                println!(
                    "wrote q95_schedule.dot ({} bytes) and q95_trace.json ({} events, JCT {:.1}s)",
                    dot.len(),
                    trace.tasks.len() * 4,
                    m.jct
                );
                println!("render: dot -Tsvg q95_schedule.dot -o q95.svg");
                println!("view trace: load q95_trace.json in https://ui.perfetto.dev");
            }
            other => eprintln!(
                "unknown target {other:?}; known: {all:?} (+ \"sched\", \"sched-smoke\", \"adapt\", \"adapt-smoke\" — not in `all`)"
            ),
        }
    }

    if let Some(path) = trace_out.filter(|_| !sched_traced) {
        println!("==================== trace-out ====================");
        let run = ditto_bench::traced_fault_run();
        let chrome = ditto_obs::to_chrome_trace(&run.data);
        std::fs::write(&path, &chrome).expect("write trace file");
        println!(
            "wrote {path} ({} bytes, {} spans, {} events) — load in https://ui.perfetto.dev",
            chrome.len(),
            run.data.spans.len(),
            run.data.events.len(),
        );
        println!("{}", ditto_obs::summary_table(&run.data));
        println!("{}", run.critical_path.render());
    }
}

fn emit<T: serde::Serialize>(rows: &[T], json: bool) {
    if json {
        println!("{}", write_json(rows));
    } else {
        print!("{}", render_rows(rows));
    }
}
