//! Figure-8-flavour end-to-end benches plus scheduler scaling.
//!
//! * `fig8_sim`: schedule + simulate Q95 with Ditto vs NIMBLE under
//!   Zipf-0.9 (the simulated-JCT numbers themselves come from the
//!   `figures` binary; this measures the harness cost).
//! * `scheduler_scaling`: Ditto's scheduling time over random DAGs of
//!   growing size — the §4.4 complexity claim (pseudo-polynomial in the
//!   DAG, independent of slot counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ditto_bench::setup::{default_testbed, prepare};
use ditto_cluster::ResourceManager;
use ditto_core::baselines::NimbleScheduler;
use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
use ditto_dag::generators::{random_dag, RandomDagConfig};
use ditto_exec::simulate;
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use ditto_timemodel::model::RateConfig;
use ditto_timemodel::JobTimeModel;
use std::hint::black_box;

fn fig8_sim(c: &mut Criterion) {
    let p = prepare(Query::Q95, Medium::S3);
    let rm = default_testbed();
    let mut group = c.benchmark_group("fig8_q95_schedule_and_simulate");
    let schedulers: [(&str, &dyn Scheduler); 2] = [
        ("ditto", &DittoScheduler::new()),
        ("nimble", &NimbleScheduler::default()),
    ];
    for (name, s) in schedulers {
        group.bench_function(name, |b| {
            b.iter(|| {
                let schedule = p.schedule(s, &rm, Objective::Jct);
                black_box(simulate(&p.plan.dag, &schedule, &p.gt))
            })
        });
    }
    group.finish();
}

fn scheduler_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_scaling_random_dags");
    for stages in [8usize, 16, 32, 64] {
        let cfg = RandomDagConfig {
            stages,
            layers: (stages / 4).max(2),
            ..Default::default()
        };
        let dag = random_dag(42, &cfg);
        let model = JobTimeModel::from_rates(&dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(vec![96; 8]);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &dag, |b, dag| {
            b.iter(|| {
                black_box(DittoScheduler::new().schedule(&SchedulingContext {
                    dag,
                    model: &model,
                    resources: &rm,
                    objective: Objective::Jct,
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_sim, scheduler_scaling);
criterion_main!(benches);
