//! Linear resource-usage model `M(s, d) = ρ + σ·d` (paper Eq. 5) and cost.

/// Resource usage of a stage as a function of its degree of parallelism:
/// `M(s, d) = ρ + σ·d` (paper Eq. 5).
///
/// * `ρ` (rho): resource usage tied to the data the stage processes,
///   independent of how many functions process it (e.g. total GB of memory
///   the working set occupies).
/// * `σ` (sigma): per-function launch/runtime overhead (GB per function).
///
/// The cost of a stage is `M(s, d) × T(s, d, P)` in GB·seconds, matching
/// the paper's billing definition (Σ memory·time per task).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceModel {
    /// Data-processing resource usage (GB), independent of DoP.
    pub rho: f64,
    /// Per-function overhead (GB per function).
    pub sigma: f64,
}

impl ResourceModel {
    /// Construct; both parameters must be non-negative.
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!(rho >= 0.0 && sigma >= 0.0, "resource parameters must be non-negative");
        ResourceModel { rho, sigma }
    }

    /// `M(s, d)`: resource usage (GB) at DoP `d`.
    pub fn usage(&self, d: f64) -> f64 {
        assert!(d > 0.0);
        self.rho + self.sigma * d
    }

    /// Stage cost in GB·s: `M(s, d) × t` where `t` is the stage time.
    pub fn cost(&self, d: f64, exec_time: f64) -> f64 {
        self.usage(d) * exec_time
    }
}

impl Default for ResourceModel {
    /// One GB of working set and negligible per-function overhead — the
    /// regime the paper's cost analysis assumes (`σ·d` ignorable, §4.2).
    fn default() -> Self {
        ResourceModel { rho: 1.0, sigma: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_linear_in_d() {
        let m = ResourceModel::new(10.0, 0.5);
        assert!((m.usage(1.0) - 10.5).abs() < 1e-12);
        assert!((m.usage(20.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_usage_times_time() {
        let m = ResourceModel::new(4.0, 0.0);
        assert!((m.cost(8.0, 2.5) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_unit_rho() {
        let m = ResourceModel::default();
        assert_eq!(m.rho, 1.0);
        assert_eq!(m.sigma, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        ResourceModel::new(-1.0, 0.0);
    }
}
