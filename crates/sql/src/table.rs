//! Tables: named, typed column collections with partitioning and a codec.

use crate::column::{Column, DataType};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields, in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from `(name, dtype)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Self {
        Schema {
            fields: fields
                .iter()
                .map(|&(n, t)| Field {
                    name: n.to_string(),
                    dtype: t,
                })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A columnar table. All columns have identical length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Column names and types.
    pub schema: Schema,
    /// The column data, aligned with `schema.fields`.
    pub columns: Vec<Column>,
}

impl Table {
    /// Build a table; validates column count and lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        if let Some(first) = columns.first() {
            for (f, c) in schema.fields.iter().zip(&columns) {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} length differs",
                    f.name
                );
                assert_eq!(c.dtype(), f.dtype, "column {} type differs", f.name);
            }
        }
        Table { schema, columns }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| match f.dtype {
                DataType::I64 => Column::I64(Vec::new()),
                DataType::F64 => Column::F64(Vec::new()),
                DataType::Str => Column::Str(Vec::new()),
            })
            .collect();
        Table { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// A column by name, panicking with a useful message when missing.
    pub fn column_req(&self, name: &str) -> &Column {
        self.column(name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema {:?}", self.schema))
    }

    /// Keep only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Table {
        let mut fields = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let i = self
                .schema
                .index_of(n)
                .unwrap_or_else(|| panic!("no column {n:?} to project"));
            fields.push(self.schema.fields[i].clone());
            cols.push(self.columns[i].clone());
        }
        Table::new(Schema { fields }, cols)
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Gather the given rows.
    pub fn take(&self, idx: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
        }
    }

    /// Append another table with an identical schema.
    pub fn extend(&mut self, other: &Table) {
        assert_eq!(self.schema, other.schema, "schema mismatch in extend");
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend(b);
        }
    }

    /// Concatenate tables with identical schemas (empty input → `None`).
    pub fn concat(tables: &[Table]) -> Option<Table> {
        let mut iter = tables.iter();
        let mut out = iter.next()?.clone();
        for t in iter {
            out.extend(t);
        }
        Some(out)
    }

    /// Split into `n` contiguous row chunks of near-equal size (for scan
    /// parallelism). Later chunks may be one row smaller.
    pub fn split(&self, n: usize) -> Vec<Table> {
        assert!(n > 0);
        let rows = self.num_rows();
        let base = rows / n;
        let rem = rows % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            let len = base + usize::from(i < rem);
            let idx: Vec<usize> = (start..start + len).collect();
            out.push(self.take(&idx));
            start += len;
        }
        out
    }

    /// Hash-partition rows into `n` buckets by the named key column —
    /// the shuffle partitioner: rows with equal keys land in the same
    /// bucket regardless of which task partitioned them.
    pub fn hash_partition(&self, key: &str, n: usize) -> Vec<Table> {
        assert!(n > 0);
        let col = self.column_req(key);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
        for row in 0..self.num_rows() {
            let b = (col.hash_row(row) % n as u64) as usize;
            buckets[b].push(row);
        }
        buckets.into_iter().map(|idx| self.take(&idx)).collect()
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    // ------------------------------------------------------------------
    // Binary codec: how intermediate tables travel through the data plane.
    // Format: [ncols:u32] then per column: [name_len:u32][name][tag:u8]
    // [nrows:u64][data...]; i64/f64 as LE words, strings length-prefixed.
    // ------------------------------------------------------------------

    /// Serialize to the compact binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.byte_size() as usize + 64);
        buf.put_u32_le(self.num_columns() as u32);
        for (f, c) in self.schema.fields.iter().zip(&self.columns) {
            buf.put_u32_le(f.name.len() as u32);
            buf.put_slice(f.name.as_bytes());
            match c {
                Column::I64(v) => {
                    buf.put_u8(0);
                    buf.put_u64_le(v.len() as u64);
                    for x in v {
                        buf.put_i64_le(*x);
                    }
                }
                Column::F64(v) => {
                    buf.put_u8(1);
                    buf.put_u64_le(v.len() as u64);
                    for x in v {
                        buf.put_f64_le(*x);
                    }
                }
                Column::Str(v) => {
                    buf.put_u8(2);
                    buf.put_u64_le(v.len() as u64);
                    for s in v {
                        buf.put_u32_le(s.len() as u32);
                        buf.put_slice(s.as_bytes());
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Deserialize from the wire format, validating framing first.
    /// Returns a descriptive error for truncated or corrupt buffers.
    pub fn try_decode(data: Bytes) -> Result<Table, String> {
        // Pre-validate the framing with a non-consuming cursor walk so the
        // panicking fast path below can never be reached on bad input.
        let buf = &data[..];
        let mut pos = 0usize;
        let need = |pos: usize, n: usize, what: &str| -> Result<(), String> {
            if pos + n > buf.len() {
                Err(format!("truncated table buffer while reading {what}"))
            } else {
                Ok(())
            }
        };
        need(pos, 4, "column count")?;
        let ncols = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if ncols > 4096 {
            return Err(format!("implausible column count {ncols}"));
        }
        for _ in 0..ncols {
            need(pos, 4, "name length")?;
            let name_len =
                u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            need(pos, name_len, "column name")?;
            std::str::from_utf8(&buf[pos..pos + name_len])
                .map_err(|_| "column name is not UTF-8".to_string())?;
            pos += name_len;
            need(pos, 9, "column header")?;
            let tag = buf[pos];
            pos += 1;
            let nrows =
                u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            match tag {
                0 | 1 => {
                    need(pos, nrows.checked_mul(8).ok_or("row count overflow")?, "numeric data")?;
                    pos += nrows * 8;
                }
                2 => {
                    for _ in 0..nrows {
                        need(pos, 4, "string length")?;
                        let len =
                            u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                        pos += 4;
                        need(pos, len, "string data")?;
                        std::str::from_utf8(&buf[pos..pos + len])
                            .map_err(|_| "string cell is not UTF-8".to_string())?;
                        pos += len;
                    }
                }
                t => return Err(format!("unknown column tag {t}")),
            }
        }
        if pos != buf.len() {
            return Err(format!("{} trailing bytes after table", buf.len() - pos));
        }
        Ok(Self::decode(data))
    }

    /// Deserialize from the wire format.
    ///
    /// # Panics
    /// Panics on malformed input; the runtime only decodes its own encoded
    /// buffers. Use [`Table::try_decode`] for untrusted data.
    pub fn decode(mut data: Bytes) -> Table {
        let ncols = data.get_u32_le() as usize;
        let mut fields = Vec::with_capacity(ncols);
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name_len = data.get_u32_le() as usize;
            let name = String::from_utf8(data.split_to(name_len).to_vec()).expect("utf8 name");
            let tag = data.get_u8();
            let nrows = data.get_u64_le() as usize;
            let (dtype, col) = match tag {
                0 => {
                    let mut v = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        v.push(data.get_i64_le());
                    }
                    (DataType::I64, Column::I64(v))
                }
                1 => {
                    let mut v = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        v.push(data.get_f64_le());
                    }
                    (DataType::F64, Column::F64(v))
                }
                2 => {
                    let mut v = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        let len = data.get_u32_le() as usize;
                        v.push(String::from_utf8(data.split_to(len).to_vec()).expect("utf8"));
                    }
                    (DataType::Str, Column::Str(v))
                }
                t => panic!("unknown column tag {t}"),
            };
            fields.push(Field { name, dtype });
            columns.push(col);
        }
        Table::new(Schema { fields }, columns)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.fields.iter().map(|x| x.name.as_str()).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for row in 0..self.num_rows().min(20) {
            let vals: Vec<String> = self
                .columns
                .iter()
                .map(|c| match c.value(row) {
                    crate::column::Value::I64(x) => x.to_string(),
                    crate::column::Value::F64(x) => format!("{x:.2}"),
                    crate::column::Value::Str(x) => x,
                })
                .collect();
            writeln!(f, "{}", vals.join(" | "))?;
        }
        if self.num_rows() > 20 {
            writeln!(f, "... ({} rows total)", self.num_rows())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            Schema::new(&[("id", DataType::I64), ("amt", DataType::F64), ("st", DataType::Str)]),
            vec![
                Column::I64(vec![1, 2, 3, 4]),
                Column::F64(vec![10.0, 20.0, 30.0, 40.0]),
                Column::Str(vec!["a".into(), "b".into(), "a".into(), "c".into()]),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.column("amt").unwrap().as_f64()[1], 20.0);
        assert!(t.column("zzz").is_none());
        assert!(t.byte_size() > 0);
    }

    #[test]
    #[should_panic(expected = "length differs")]
    fn ragged_columns_rejected() {
        Table::new(
            Schema::new(&[("a", DataType::I64), ("b", DataType::I64)]),
            vec![Column::I64(vec![1]), Column::I64(vec![1, 2])],
        );
    }

    #[test]
    #[should_panic(expected = "type differs")]
    fn wrong_type_rejected() {
        Table::new(
            Schema::new(&[("a", DataType::I64)]),
            vec![Column::F64(vec![1.0])],
        );
    }

    #[test]
    fn project_and_filter() {
        let t = sample();
        let p = t.project(&["st", "id"]);
        assert_eq!(p.schema.fields[0].name, "st");
        assert_eq!(p.schema.fields[1].name, "id");
        let f = t.filter(&[true, false, true, false]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column_req("id").as_i64(), &[1, 3]);
    }

    #[test]
    fn split_even() {
        let t = sample();
        let parts = t.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.num_rows()).collect::<Vec<_>>(),
            vec![2, 1, 1]
        );
        let back = Table::concat(&parts).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn hash_partition_consistent() {
        let t = sample();
        let parts = t.hash_partition("st", 3);
        assert_eq!(parts.iter().map(|p| p.num_rows()).sum::<usize>(), 4);
        // Rows with st="a" (ids 1 and 3) land in the same bucket.
        let bucket_of = |id: i64| {
            parts
                .iter()
                .position(|p| p.column_req("id").as_i64().contains(&id))
                .unwrap()
        };
        assert_eq!(bucket_of(1), bucket_of(3));
    }

    #[test]
    fn codec_roundtrip() {
        let t = sample();
        let bytes = t.encode();
        let back = Table::decode(bytes);
        assert_eq!(back, t);
    }

    #[test]
    fn try_decode_accepts_valid_rejects_malformed() {
        let t = sample();
        let good = t.encode();
        assert_eq!(Table::try_decode(good.clone()).unwrap(), t);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..good.len().min(64) {
            let sliced = good.slice(0..cut);
            if cut == good.len() {
                continue;
            }
            assert!(Table::try_decode(sliced).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut extended = good.to_vec();
        extended.push(0xFF);
        assert!(Table::try_decode(Bytes::from(extended)).is_err());
        // Corrupt tag is rejected.
        let mut corrupt = good.to_vec();
        // first column: 4 (ncols) + 4 (len) + 2 ("id") = offset 10 is tag
        corrupt[10] = 9;
        assert!(Table::try_decode(Bytes::from(corrupt)).is_err());
    }

    #[test]
    fn codec_empty_table() {
        let t = Table::empty(Schema::new(&[("x", DataType::Str)]));
        let back = Table::decode(t.encode());
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema, t.schema);
    }

    #[test]
    fn extend_and_concat() {
        let t = sample();
        let mut a = t.clone();
        a.extend(&t);
        assert_eq!(a.num_rows(), 8);
        assert!(Table::concat(&[]).is_none());
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("id | amt | st"));
        assert!(s.contains("30.00"));
    }
}
