//! Stage identifiers and metadata.

use std::fmt;

/// Identifier of a stage within a [`crate::JobDag`].
///
/// Stage ids are dense indices assigned in insertion order; they double as
/// indices into the DAG's internal stage vector, so lookups are O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

impl StageId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The operator class a stage primarily performs.
///
/// The scheduler itself is operator-agnostic (it consumes only the fitted
/// time model), but the kind is carried for trace readability and for the
/// SQL lowering in `ditto-sql`, and it determines reasonable defaults for
/// the ground-truth performance model in `ditto-exec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Input scan + per-row transformation (projection / filter).
    Map,
    /// Hash/merge join of two upstream stages.
    Join,
    /// Group-by aggregation.
    GroupBy,
    /// Generic reduction (final aggregation, sort-limit, output write).
    Reduce,
    /// Anything else; treated like `Map` where a default is needed.
    Custom,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageKind::Map => "map",
            StageKind::Join => "join",
            StageKind::GroupBy => "groupby",
            StageKind::Reduce => "reduce",
            StageKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A stage: one node of the job DAG, executed as `DoP` parallel tasks.
///
/// The stage records *static* workload characteristics — estimated input and
/// output volume — which the NIMBLE baseline uses directly (DoP proportional
/// to input size) and which seed the ground-truth performance model. The
/// *fitted* execution-time model (α/d + β per step) lives in
/// `ditto-timemodel` and is keyed by [`StageId`].
#[derive(Debug, Clone)]
pub struct Stage {
    /// Dense identifier within the owning DAG.
    pub id: StageId,
    /// Human-readable name (e.g. `"map1"`, `"join2"`), unique per DAG.
    pub name: String,
    /// Primary operator class.
    pub kind: StageKind,
    /// Estimated bytes read from job input (external tables), excluding
    /// intermediate data received from upstream stages.
    pub input_bytes: u64,
    /// Estimated bytes produced for downstream stages (or as job output).
    pub output_bytes: u64,
}

impl Stage {
    /// Create a stage with the given name and kind and zero I/O estimates.
    pub fn new(id: StageId, name: impl Into<String>, kind: StageKind) -> Self {
        Stage {
            id,
            name: name.into(),
            kind,
            input_bytes: 0,
            output_bytes: 0,
        }
    }

    /// Total bytes this stage ingests: external input only. Intermediate
    /// input volume is a property of the incoming edges, not the stage.
    pub fn external_input_bytes(&self) -> u64 {
        self.input_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_id_display_and_index() {
        let id = StageId(7);
        assert_eq!(id.to_string(), "s7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn stage_kind_display() {
        assert_eq!(StageKind::Map.to_string(), "map");
        assert_eq!(StageKind::Join.to_string(), "join");
        assert_eq!(StageKind::GroupBy.to_string(), "groupby");
        assert_eq!(StageKind::Reduce.to_string(), "reduce");
        assert_eq!(StageKind::Custom.to_string(), "custom");
    }

    #[test]
    fn stage_new_defaults() {
        let s = Stage::new(StageId(0), "map1", StageKind::Map);
        assert_eq!(s.input_bytes, 0);
        assert_eq!(s.output_bytes, 0);
        assert_eq!(s.name, "map1");
        assert_eq!(s.external_input_bytes(), 0);
    }

    #[test]
    fn stage_id_ordering_follows_index() {
        assert!(StageId(1) < StageId(2));
        assert_eq!(StageId(3), StageId(3));
    }
}
