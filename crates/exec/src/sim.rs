//! Discrete-event simulation of a scheduled job.
//!
//! Dependencies are stage-granular: a stage's tasks may start once every
//! upstream stage finished writing (intra-stage pipelining is modeled at
//! the time-model level via pipelining annotations, §4.5, not replayed
//! here). Task launch follows the NIMBLE just-in-time policy the paper
//! adopts for both systems (§5 "Task launch time"): containers start
//! `setup` seconds before their inputs are ready, so setup overlaps the
//! upstream tail and idle waiting is avoided — which is exactly what makes
//! late launching cost-neutral.

use crate::error::ExecError;
use crate::faults::{FaultPlan, RecoveryPolicy};
#[cfg(not(debug_assertions))]
use crate::faults::try_simulate_with_faults;
use crate::groundtruth::GroundTruth;
use crate::metrics::JobMetrics;
use crate::trace::ExecutionTrace;
use ditto_core::Schedule;
use ditto_dag::JobDag;

/// Simulate `schedule` on `dag` under the ground truth. Returns the full
/// trace plus job metrics.
///
/// ```
/// use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
/// use ditto_exec::{profile_job, simulate, ExecConfig, GroundTruth};
///
/// let dag = ditto_dag::generators::fig1_join();
/// let gt = GroundTruth::new(ExecConfig::default());
/// // Profile at a few DoPs, fit the model the scheduler will consume.
/// let (model, _) = profile_job(&dag, &gt, &[2, 4, 8]).build_model(&dag);
/// let rm = ditto_cluster::ResourceManager::from_free_slots(vec![10, 10]);
/// let schedule = DittoScheduler::new().schedule(&SchedulingContext {
///     dag: &dag, model: &model, resources: &rm, objective: Objective::Jct,
/// });
/// let (trace, metrics) = simulate(&dag, &schedule, &gt);
/// assert!(metrics.jct > 0.0);
/// assert_eq!(metrics.jct, trace.jct());
/// ```
pub fn simulate(dag: &JobDag, schedule: &Schedule, gt: &GroundTruth) -> (ExecutionTrace, JobMetrics) {
    try_simulate(dag, schedule, gt).expect("schedule must be valid for its DAG")
}

/// Fallible variant of [`simulate`]: returns [`ExecError`] instead of
/// panicking on an invalid schedule or cyclic DAG.
///
/// Both are thin wrappers over the fault-aware engine
/// ([`crate::try_simulate_with_faults`]) with an empty [`FaultPlan`] — the
/// fault-free path reproduces the historical simulator bit-for-bit.
pub fn try_simulate(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
) -> Result<(ExecutionTrace, JobMetrics), ExecError> {
    // Certificate gate: refuse structurally unsound schedules up front with
    // the auditor's stage/edge-attributed findings instead of a mid-run
    // panic deep inside the event loop.
    let report = ditto_audit::audit_structure(dag, schedule);
    if !report.is_clean() {
        return Err(ExecError::InvalidSchedule(report.render()));
    }
    // Debug builds run traced (telemetry is <5% overhead and metrics are
    // bit-identical either way — the telemetry tests pin both) and gate
    // the recorded event stream through the race checker, so any ordering
    // hazard a refactor introduces fails loudly in every debug test run.
    #[cfg(debug_assertions)]
    {
        let obs = ditto_obs::Recorder::new();
        let out = crate::faults::try_simulate_with_faults_traced(
            dag,
            schedule,
            gt,
            &FaultPlan::none(),
            &RecoveryPolicy::none(),
            None,
            &obs,
        )?;
        let race = ditto_audit::check_trace(&obs.finish(), &ditto_audit::RaceOptions::default());
        debug_assert!(
            race.is_clean(),
            "race checker rejected try_simulate's own trace:\n{}",
            race.render()
        );
        Ok(out)
    }
    #[cfg(not(debug_assertions))]
    try_simulate_with_faults(
        dag,
        schedule,
        gt,
        &FaultPlan::none(),
        &RecoveryPolicy::none(),
        None,
    )
}

/// [`simulate`] with telemetry: every task, stage and storage transfer of
/// the fault-free run lands on `obs` as spans/counters (sim-clock
/// timestamps). With a disabled recorder this is exactly [`simulate`].
pub fn simulate_traced(
    dag: &JobDag,
    schedule: &Schedule,
    gt: &GroundTruth,
    obs: &ditto_obs::Recorder,
) -> (ExecutionTrace, JobMetrics) {
    crate::faults::try_simulate_with_faults_traced(
        dag,
        schedule,
        gt,
        &FaultPlan::none(),
        &RecoveryPolicy::none(),
        None,
        obs,
    )
    .expect("schedule must be valid for its DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::ExecConfig;
    use ditto_cluster::ResourceManager;
    use ditto_core::baselines::{EvenSplitScheduler, NimbleScheduler};
    use ditto_core::{DittoScheduler, Objective, Scheduler, SchedulingContext};
    use ditto_storage::Medium;
    use ditto_timemodel::model::RateConfig;
    use ditto_timemodel::JobTimeModel;

    fn run(
        dag: &JobDag,
        scheduler: &dyn Scheduler,
        free: &[u32],
        cfg: ExecConfig,
    ) -> (ExecutionTrace, JobMetrics) {
        let model = JobTimeModel::from_rates(dag, &RateConfig::default());
        let rm = ResourceManager::from_free_slots(free.to_vec());
        let schedule = scheduler.schedule(&SchedulingContext {
            dag,
            model: &model,
            resources: &rm,
            objective: Objective::Jct,
        });
        simulate(dag, &schedule, &GroundTruth::new(cfg))
    }

    #[test]
    fn dependencies_are_respected() {
        let dag = ditto_dag::generators::q95_shape();
        let (trace, m) = run(
            &dag,
            &EvenSplitScheduler,
            &[96; 8],
            ExecConfig::default(),
        );
        assert!(m.jct > 0.0);
        // Every task of a downstream stage starts reading after all its
        // (non-pipelined) upstream stages' ends.
        for e in dag.edges().iter().filter(|e| !e.pipelined) {
            let src_end = trace.stage_end(e.src.0);
            for t in trace.tasks.iter().filter(|t| t.stage == e.dst.0) {
                assert!(
                    t.read_start >= src_end - 1e-9,
                    "task of stage {} reads at {} before upstream {} ends at {}",
                    e.dst,
                    t.read_start,
                    e.src,
                    src_end
                );
            }
        }
    }

    #[test]
    fn setup_overlaps_wait() {
        let dag = ditto_dag::generators::chain(2, 1 << 30, 0.5);
        let (trace, _) = run(&dag, &EvenSplitScheduler, &[32], ExecConfig::default());
        // Downstream tasks launch before their read_start by exactly setup.
        let down: Vec<_> = trace.tasks.iter().filter(|t| t.stage == 1).collect();
        for t in down {
            assert!(t.launch < t.read_start);
            assert!(t.read_start - t.launch <= ExecConfig::default().task_overhead + 1e-9);
        }
    }

    #[test]
    fn ditto_beats_nimble_on_q95_sim() {
        let dag = ditto_dag::generators::q95_shape();
        let free = [96, 48, 24, 18, 12, 10, 8, 6];
        let cfg = ExecConfig::default();
        let (_, nimble) = run(&dag, &NimbleScheduler::default(), &free, cfg.clone());
        let (_, ditto) = run(&dag, &DittoScheduler::new(), &free, cfg);
        let (speedup, _) = ditto.vs(&nimble);
        assert!(
            speedup > 1.0,
            "ditto JCT {} should beat nimble {}",
            ditto.jct,
            nimble.jct
        );
    }

    #[test]
    fn redis_faster_than_s3() {
        let dag = ditto_dag::generators::q95_shape();
        let (_, s3) = run(
            &dag,
            &EvenSplitScheduler,
            &[96; 8],
            ExecConfig {
                external: Medium::S3,
                ..Default::default()
            },
        );
        let (_, redis) = run(
            &dag,
            &EvenSplitScheduler,
            &[96; 8],
            ExecConfig {
                external: Medium::Redis,
                ..Default::default()
            },
        );
        assert!(redis.jct < s3.jct);
        // But Redis persistence is priced while S3's is not.
        assert!(redis.storage_cost > s3.storage_cost);
    }

    #[test]
    fn metrics_consistent_with_trace() {
        let dag = ditto_dag::generators::fig1_join();
        let (trace, m) = run(&dag, &EvenSplitScheduler, &[30, 30], ExecConfig::default());
        assert!((m.jct - trace.jct()).abs() < 1e-12);
        assert!((m.compute_cost - trace.compute_cost()).abs() < 1e-12);
        assert!(m.total_cost() >= m.compute_cost);
    }

    #[test]
    fn pipelining_overlaps_and_never_hurts() {
        let mut dag = ditto_dag::generators::chain(3, 8 << 30, 0.8);
        let cfg = ExecConfig {
            skew: 0.0,
            straggler_prob: 0.0,
            jitter: 0.0,
            ..Default::default()
        };
        let (_, plain) = run(&dag, &EvenSplitScheduler, &[48], cfg.clone());
        dag.set_pipelined(ditto_dag::EdgeId(0), true);
        dag.set_pipelined(ditto_dag::EdgeId(1), true);
        let (trace, piped) = run(&dag, &EvenSplitScheduler, &[48], cfg);
        assert!(
            piped.jct < plain.jct,
            "pipelining should shorten the chain: {} vs {}",
            piped.jct,
            plain.jct
        );
        // Consumers may start early, but cannot finish reading before the
        // producer finishes writing.
        for e in dag.edges() {
            let src_end = trace.stage_end(e.src.0);
            for t in trace.tasks.iter().filter(|t| t.stage == e.dst.0) {
                assert!(t.read_start < src_end, "reads overlap the producer");
                assert!(t.compute_start >= src_end - 1e-9, "but cannot outrun it");
            }
        }
    }

    #[test]
    fn placement_capacity_never_exceeded() {
        // No server hosts more concurrent tasks than it had free slots —
        // for any scheduler, at any point in simulated time.
        let free = [96u32, 48, 24, 18, 12, 10, 8, 6];
        let dag = ditto_dag::generators::q95_shape();
        for scheduler in [
            &DittoScheduler::new() as &dyn Scheduler,
            &NimbleScheduler::default(),
            &EvenSplitScheduler,
        ] {
            let (trace, _) = run(&dag, scheduler, &free, ExecConfig::default());
            for (server, peak) in trace.peak_server_occupancy() {
                assert!(
                    peak <= free[server as usize],
                    "{}: server {server} peaked at {peak} > {} free slots",
                    scheduler.name(),
                    free[server as usize]
                );
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let dag = ditto_dag::generators::q95_shape();
        let a = run(&dag, &DittoScheduler::new(), &[96; 8], ExecConfig::default());
        let b = run(&dag, &DittoScheduler::new(), &[96; 8], ExecConfig::default());
        assert_eq!(a.1, b.1);
    }
}
