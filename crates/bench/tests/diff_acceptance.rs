//! Acceptance gates for cross-run observability (ISSUE pr7):
//!
//! * two runs of the *same* fixed-seed experiment diff to zero — the
//!   differential analyzer invents no phantom deltas;
//! * frozen vs adaptive under 2× compute drift attributes ≥ 90% of the
//!   JCT delta to `(stage, step)` buckets — the diff explains where the
//!   adaptive engine won, not just that it won;
//! * the adaptive exemplar's telemetry validates against the Chrome
//!   trace schema with all the new event kinds present.

use ditto_obs::{diff_traces, to_chrome_trace, validate_chrome_trace, PredictorScorecard};

#[test]
fn identical_fixed_seed_runs_diff_to_zero() {
    let a = ditto_bench::traced_fault_run();
    let b = ditto_bench::traced_fault_run();
    let d = diff_traces(&a.data, &b.data);
    assert!(
        d.is_zero(1e-9),
        "identical fixed-seed runs must diff to zero:\n{}",
        d.render()
    );
}

#[test]
fn adapt_pair_diff_attributes_ninety_percent_to_steps() {
    let (frozen, adaptive) = ditto_bench::traced_adapt_pair();
    let d = diff_traces(&frozen, &adaptive);
    let delta = d.delta();
    assert!(
        delta.abs() > 1e-6,
        "frozen and adaptive runs under 2x drift must differ in JCT"
    );
    // Everything attributed sums to the delta by construction...
    assert!(
        (d.attributed() - delta).abs() <= 1e-6,
        "attributed {} vs delta {}:\n{}",
        d.attributed(),
        delta,
        d.render()
    );
    // ...and at least 90% of the magnitude lands on (stage, step)
    // buckets rather than waits (acceptance: the diff names the work
    // that moved, not just scheduling gaps).
    let step_share = d.step_attributed() / delta;
    assert!(
        step_share >= 0.9,
        "only {:.1}% of the JCT delta lands on step buckets:\n{}",
        100.0 * step_share,
        d.render()
    );
    // The structural story is visible: the adaptive run replanned.
    assert!(
        d.structural_b.replans > d.structural_a.replans,
        "adaptive trace must record replans (a={:?}, b={:?})",
        d.structural_a,
        d.structural_b
    );
}

#[test]
fn adaptive_trace_exports_schema_valid_with_new_event_kinds() {
    let (_, adaptive) = ditto_bench::traced_adapt_pair();
    let chrome = to_chrome_trace(&adaptive);
    let stats = validate_chrome_trace(&chrome).expect("schema-valid adaptive trace");
    assert!(stats.durations > 0);
    assert!(
        stats.names.contains_key("sched.replan"),
        "replan events missing from export: {:?}",
        stats.names.keys().collect::<Vec<_>>()
    );
    assert!(
        stats.names.contains_key("predictor.sample"),
        "predictor samples missing from export"
    );
    // The scorecard reads those samples back out of the same trace.
    let card = PredictorScorecard::from_trace(&adaptive);
    assert!(
        !card.samples.is_empty(),
        "scorecard must find predictor samples in the adaptive trace"
    );
    assert!(card.render().contains("predictor scorecard"));
}
