//! Function-slot availability distributions (paper §6.1).
//!
//! The evaluation restricts the number of available slots per server to
//! model realistic runtime conditions:
//!
//! * **slot usage** — every server exposes the same fraction of its
//!   capacity (100 %, 75 %, 50 %, 25 %);
//! * **Norm-1.0 / Norm-0.8** — per-server ratios are eight symmetric
//!   samples (fixed step) of the standard normal pdf `N(0,1)` or `N(0,0.8)`,
//!   normalized so the largest ratio is 1;
//! * **Zipf-0.9 / Zipf-0.99** — ratios follow a Zipf pmf with the given
//!   exponent, normalized so the first (largest) ratio is 1.

/// How available function slots are distributed across servers.
///
/// ```
/// use ditto_cluster::{Cluster, SlotDistribution};
/// // The paper's default: 8 x 96-slot servers under Zipf-0.9 skew.
/// let cluster = Cluster::paper_testbed(&SlotDistribution::zipf_09());
/// let free = cluster.free_slots();
/// assert_eq!(free[0], 96);            // head server fully available
/// assert!(free[7] < free[0] / 3);     // tail heavily restricted
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlotDistribution {
    /// Every server exposes `usage` of its capacity (0 < usage ≤ 1).
    Uniform {
        /// Fraction of capacity available on each server.
        usage: f64,
    },
    /// Ratios from symmetric samples of a centred normal pdf with the given
    /// standard deviation, normalized to max 1.
    Normal {
        /// Standard deviation (1.0 and 0.8 in the paper).
        sigma: f64,
    },
    /// Ratios from a Zipf pmf with the given exponent, normalized to max 1.
    Zipf {
        /// Zipf exponent θ (0.9 and 0.99 in the paper).
        theta: f64,
    },
}

impl SlotDistribution {
    /// The paper's default setting for the headline experiments.
    pub fn zipf_09() -> Self {
        SlotDistribution::Zipf { theta: 0.9 }
    }

    /// Per-server availability ratios in `(0, 1]`, one per server.
    /// Deterministic — the paper samples pdf values at fixed points rather
    /// than drawing randomly, so reruns see identical clusters.
    pub fn ratios(&self, n_servers: usize) -> Vec<f64> {
        assert!(n_servers > 0);
        match *self {
            SlotDistribution::Uniform { usage } => {
                assert!(usage > 0.0 && usage <= 1.0, "usage must be in (0, 1]");
                vec![usage; n_servers]
            }
            SlotDistribution::Normal { sigma } => {
                assert!(sigma > 0.0);
                // Symmetric sample points with a fixed step covering ±1.75σ̂
                // of N(0,1) (8 points for the paper's 8 servers); ratios are
                // pdf values normalized by the maximum sampled pdf.
                let step = 3.5 / n_servers as f64;
                let pdf = |x: f64| (-x * x / (2.0 * sigma * sigma)).exp();
                let points: Vec<f64> = (0..n_servers)
                    .map(|k| -1.75 + step * (k as f64 + 0.5))
                    .collect();
                let vals: Vec<f64> = points.iter().map(|&x| pdf(x)).collect();
                let max = vals.iter().cloned().fold(f64::MIN, f64::max);
                vals.into_iter().map(|v| v / max).collect()
            }
            SlotDistribution::Zipf { theta } => {
                assert!(theta > 0.0);
                // p_k ∝ 1/k^θ, normalized so the first server gets ratio 1.
                (1..=n_servers)
                    .map(|k| 1.0 / (k as f64).powf(theta))
                    .collect()
            }
        }
    }

    /// Available slots per server given each server's hardware capacity.
    /// Ratios are applied per server and rounded half-up, with at least one
    /// slot so no server is completely unusable.
    pub fn apply(&self, capacities: &[u32]) -> Vec<u32> {
        let ratios = self.ratios(capacities.len());
        capacities
            .iter()
            .zip(ratios)
            .map(|(&cap, r)| (((cap as f64) * r).round() as u32).clamp(1, cap))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ratios() {
        let d = SlotDistribution::Uniform { usage: 0.5 };
        assert_eq!(d.ratios(4), vec![0.5; 4]);
        assert_eq!(d.apply(&[96; 4]), vec![48; 4]);
    }

    #[test]
    fn normal_is_symmetric_and_peaked() {
        let d = SlotDistribution::Normal { sigma: 1.0 };
        let r = d.ratios(8);
        assert_eq!(r.len(), 8);
        // Symmetric around the middle.
        for k in 0..4 {
            assert!((r[k] - r[7 - k]).abs() < 1e-12, "{r:?}");
        }
        // Peak in the middle, max 1.
        let max = r.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(r[0] < r[3]);
    }

    #[test]
    fn narrower_normal_is_more_skewed() {
        let wide = SlotDistribution::Normal { sigma: 1.0 }.ratios(8);
        let narrow = SlotDistribution::Normal { sigma: 0.8 }.ratios(8);
        // Edge servers get relatively fewer slots under the narrower pdf.
        assert!(narrow[0] < wide[0]);
    }

    #[test]
    fn zipf_monotone_decreasing() {
        let r = SlotDistribution::Zipf { theta: 0.9 }.ratios(8);
        assert!((r[0] - 1.0).abs() < 1e-12);
        for k in 1..8 {
            assert!(r[k] < r[k - 1]);
        }
        // Higher exponent decays faster.
        let r99 = SlotDistribution::Zipf { theta: 0.99 }.ratios(8);
        assert!(r99[7] < r[7]);
    }

    #[test]
    fn apply_keeps_at_least_one_slot() {
        let d = SlotDistribution::Zipf { theta: 3.0 };
        let slots = d.apply(&[96; 16]);
        assert!(slots.iter().all(|&s| s >= 1));
        assert_eq!(slots[0], 96);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_bad_usage() {
        SlotDistribution::Uniform { usage: 1.5 }.ratios(2);
    }
}
