//! Canonical and synthetic DAG shapes.
//!
//! These generators provide the structural skeletons used across the test
//! suite and the motivation figures. The *full* TPC-DS-like query lowerings
//! (with realistic byte volumes derived from generated data) live in
//! `ditto-sql`; the shapes here carry representative constants.

use crate::graph::{EdgeKind, JobDag};
use crate::stage::StageKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// The three-stage join DAG of the paper's Fig. 1: two map stages scanning
/// tables A and B, feeding a join. Stage 1 processes ~4× the data of
/// stage 2, which is what makes the data-size-proportional DoP suboptimal.
pub fn fig1_join() -> JobDag {
    let mut g = JobDag::new("fig1-join");
    let s1 = g.add_stage("map1", StageKind::Map);
    let s2 = g.add_stage("map2", StageKind::Map);
    let s3 = g.add_stage("join", StageKind::Join);
    {
        let s = g.stage_mut(s1);
        s.input_bytes = 8 * GB;
        s.output_bytes = 800 * MB;
    }
    {
        let s = g.stage_mut(s2);
        s.input_bytes = 2 * GB;
        s.output_bytes = 200 * MB;
    }
    {
        let s = g.stage_mut(s3);
        s.output_bytes = 100 * MB;
    }
    g.add_edge(s1, s3, EdgeKind::Shuffle, 800 * MB).unwrap();
    g.add_edge(s2, s3, EdgeKind::Shuffle, 200 * MB).unwrap();
    g
}

/// The 9-stage Q95 DAG of the paper's Fig. 13 (shape only; byte volumes are
/// representative). Stage indices match the figure:
///
/// ```text
///   1 map1 ──shuffle──▶ 2 groupby ──shuffle──▶ 4 join1 ◀──all-gather── 3 map2
///   4 join1 ──shuffle──▶ 6 join2 ◀──all-gather── 5 map3
///   6 join2 ──shuffle──▶ 8 reduce2 ◀── ...
/// ```
///
/// The exact wiring below reproduces the figure: two broadcast (all-gather)
/// joins fed by map stages, a groupby chain, and a final reduce.
pub fn q95_shape() -> JobDag {
    let mut g = JobDag::new("q95");
    // Figure 13 lists stage indices 1..=9 bottom-up. We create them in
    // topological order and name them after the figure's labels.
    let map1 = g.add_stage("map1", StageKind::Map); // stage 1
    let groupby = g.add_stage("groupby", StageKind::GroupBy); // stage 2
    let map2 = g.add_stage("map2", StageKind::Map); // stage 3
    let reduce1 = g.add_stage("reduce1", StageKind::Reduce); // stage 4
    let map3 = g.add_stage("map3", StageKind::Map); // stage 5
    let join1 = g.add_stage("join1", StageKind::Join); // stage 6
    let map4 = g.add_stage("map4", StageKind::Map); // stage 7
    let join2 = g.add_stage("join2", StageKind::Join); // stage 8
    let reduce2 = g.add_stage("reduce2", StageKind::Reduce); // stage 9

    // Volumes: web_sales self-join dominates (map1/groupby), dimension maps
    // are small; constants chosen to preserve the paper's relative weights.
    for (s, inb, outb) in [
        (map1, 30 * GB, 6 * GB),
        (groupby, 0, 2 * GB),
        (map2, 30 * GB, 3 * GB),
        (reduce1, 0, GB),
        (map3, 512 * MB, 64 * MB),
        (join1, 0, GB),
        (map4, 256 * MB, 32 * MB),
        (join2, 0, 512 * MB),
        (reduce2, 0, 16 * MB),
    ] {
        let st = g.stage_mut(s);
        st.input_bytes = inb;
        st.output_bytes = outb;
    }

    // The first three exchanges need key co-partitioning (shuffles); the
    // rest follow §4.5's shuffle→gather replacement, making those stage
    // groups decomposable into task groups at placement time.
    g.add_edge(map1, groupby, EdgeKind::Shuffle, 6 * GB).unwrap();
    g.add_edge(groupby, reduce1, EdgeKind::Shuffle, 2 * GB).unwrap();
    g.add_edge(map2, reduce1, EdgeKind::Shuffle, 3 * GB).unwrap();
    g.add_edge(reduce1, join1, EdgeKind::Gather, GB).unwrap();
    g.add_edge(map3, join1, EdgeKind::AllGather, 64 * MB).unwrap();
    g.add_edge(join1, join2, EdgeKind::Gather, GB).unwrap();
    g.add_edge(map4, join2, EdgeKind::AllGather, 32 * MB).unwrap();
    g.add_edge(join2, reduce2, EdgeKind::Gather, 512 * MB).unwrap();
    g
}

/// A linear chain of `n ≥ 1` stages `s0 -> s1 -> … -> s(n-1)`, each stage
/// shrinking the data by `shrink` (e.g. 0.1 for aggressive filters).
pub fn chain(n: usize, input_bytes: u64, shrink: f64) -> JobDag {
    assert!(n >= 1, "chain needs at least one stage");
    assert!((0.0..=1.0).contains(&shrink));
    let mut g = JobDag::new(format!("chain-{n}"));
    let mut prev = None;
    let mut bytes = input_bytes as f64;
    for i in 0..n {
        let kind = if i == 0 {
            StageKind::Map
        } else if i == n - 1 {
            StageKind::Reduce
        } else {
            StageKind::Custom
        };
        let id = g.add_stage(format!("s{i}"), kind);
        let out = bytes * shrink;
        {
            let st = g.stage_mut(id);
            st.input_bytes = if i == 0 { input_bytes } else { 0 };
            st.output_bytes = out as u64;
        }
        if let Some(p) = prev {
            g.add_edge(p, id, EdgeKind::Shuffle, bytes as u64).unwrap();
        }
        prev = Some(id);
        bytes = out;
    }
    g
}

/// A fan-in tree: `leaves` map stages all feeding one reduce stage. Leaf `i`
/// scans `input_bytes[i]` and emits a `sel` fraction of it.
pub fn fan_in(input_bytes: &[u64], sel: f64) -> JobDag {
    assert!(!input_bytes.is_empty());
    let mut g = JobDag::new(format!("fanin-{}", input_bytes.len()));
    let sink = g.add_stage("sink", StageKind::Reduce);
    for (i, &b) in input_bytes.iter().enumerate() {
        let leaf = g.add_stage(format!("leaf{i}"), StageKind::Map);
        let out = (b as f64 * sel) as u64;
        {
            let st = g.stage_mut(leaf);
            st.input_bytes = b;
            st.output_bytes = out;
        }
        g.add_edge(leaf, sink, EdgeKind::Shuffle, out).unwrap();
    }
    g
}

/// A diamond: `src -> (mid1, mid2) -> sink`. The simplest non-tree DAG
/// (src has two consumers), used to exercise the general-DAG extension.
pub fn diamond(input_bytes: u64) -> JobDag {
    let mut g = JobDag::new("diamond");
    let src = g.add_stage("src", StageKind::Map);
    let m1 = g.add_stage("mid1", StageKind::Map);
    let m2 = g.add_stage("mid2", StageKind::Map);
    let sink = g.add_stage("sink", StageKind::Join);
    let half = input_bytes / 2;
    g.stage_mut(src).input_bytes = input_bytes;
    g.stage_mut(src).output_bytes = input_bytes;
    g.stage_mut(m1).output_bytes = half;
    g.stage_mut(m2).output_bytes = half;
    g.add_edge(src, m1, EdgeKind::Shuffle, half).unwrap();
    g.add_edge(src, m2, EdgeKind::Shuffle, half).unwrap();
    g.add_edge(m1, sink, EdgeKind::Shuffle, half / 2).unwrap();
    g.add_edge(m2, sink, EdgeKind::Shuffle, half / 2).unwrap();
    g
}

/// Configuration for [`random_dag`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of stages (≥ 1).
    pub stages: usize,
    /// Probability of an edge between two stages in adjacent layers.
    pub edge_prob: f64,
    /// Number of layers the stages are spread over.
    pub layers: usize,
    /// Input bytes for initial stages, sampled log-uniform up to this bound.
    pub max_input_bytes: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            stages: 8,
            edge_prob: 0.5,
            layers: 4,
            max_input_bytes: 4 * GB,
        }
    }
}

impl RandomDagConfig {
    /// A configuration scaled for scheduler benchmarks: `stages` stages
    /// spread over `stages / 8` layers (clamped to [2, 64]) with a sparser
    /// edge probability, so edge count grows roughly linearly (~2×) with
    /// stage count instead of quadratically with layer width.
    pub fn sized(stages: usize) -> Self {
        RandomDagConfig {
            stages,
            edge_prob: 0.1,
            layers: (stages / 8).clamp(2, 64),
            max_input_bytes: 4 * GB,
        }
    }
}

/// Seeded random layered DAG generator for property tests. Guarantees a
/// connected, valid DAG: every non-first-layer stage gets at least one
/// parent from the previous layer, and every stage with no consumer in a
/// later layer is linked to the final sink layer.
pub fn random_dag(seed: u64, cfg: &RandomDagConfig) -> JobDag {
    assert!(cfg.stages >= 1 && cfg.layers >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = JobDag::new(format!("random-{seed}"));
    // Assign stages to layers as evenly as possible, at least 1 per layer.
    let layers = cfg.layers.min(cfg.stages);
    let mut layer_of = Vec::with_capacity(cfg.stages);
    for i in 0..cfg.stages {
        layer_of.push(i * layers / cfg.stages);
    }
    let ids: Vec<_> = (0..cfg.stages)
        .map(|i| {
            let kind = match layer_of[i] {
                0 => StageKind::Map,
                l if l == layers - 1 => StageKind::Reduce,
                _ => StageKind::Custom,
            };
            let id = g.add_stage(format!("s{i}"), kind);
            if layer_of[i] == 0 {
                let exp = rng.gen_range(20.0..(cfg.max_input_bytes as f64).log2());
                let st = g.stage_mut(id);
                st.input_bytes = 2f64.powf(exp) as u64;
                st.output_bytes = st.input_bytes / 10;
            } else {
                g.stage_mut(id).output_bytes = rng.gen_range(1..=64) * MB;
            }
            id
        })
        .collect();
    for (i, &dst) in ids.iter().enumerate() {
        if layer_of[i] == 0 {
            continue;
        }
        let prev_layer: Vec<usize> = (0..cfg.stages)
            .filter(|&j| layer_of[j] == layer_of[i] - 1)
            .collect();
        let mut got_parent = false;
        for &j in &prev_layer {
            if rng.gen_bool(cfg.edge_prob) {
                let bytes = rng.gen_range(1..=512) * MB;
                g.add_edge(ids[j], dst, EdgeKind::Shuffle, bytes).unwrap();
                got_parent = true;
            }
        }
        if !got_parent {
            let j = prev_layer[rng.gen_range(0..prev_layer.len())];
            let bytes = rng.gen_range(1..=512) * MB;
            g.add_edge(ids[j], dst, EdgeKind::Shuffle, bytes).unwrap();
        }
    }
    // Link dangling non-final stages to some stage in the next layer so the
    // DAG stays connected toward its sinks.
    for (i, &src) in ids.iter().enumerate() {
        if layer_of[i] == layers - 1 || g.out_degree(src) > 0 {
            continue;
        }
        let next_layer: Vec<usize> = (0..cfg.stages)
            .filter(|&j| layer_of[j] == layer_of[i] + 1)
            .collect();
        let j = next_layer[rng.gen_range(0..next_layer.len())];
        let bytes = rng.gen_range(1..=512) * MB;
        g.add_edge(src, ids[j], EdgeKind::Shuffle, bytes).unwrap();
    }
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageId;

    #[test]
    fn fig1_shape() {
        let g = fig1_join();
        assert!(g.validate().is_ok());
        assert_eq!(g.num_stages(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.final_stages(), vec![StageId(2)]);
        assert!(g.is_tree_like());
        // Stage 1 processes 4x the data of stage 2 (the Fig. 1/4 premise).
        assert_eq!(g.stage(StageId(0)).input_bytes, 4 * g.stage(StageId(1)).input_bytes);
    }

    #[test]
    fn q95_shape_matches_fig13() {
        let g = q95_shape();
        assert!(g.validate().is_ok());
        assert_eq!(g.num_stages(), 9, "Fig. 13 has 9 stages");
        assert_eq!(g.num_edges(), 8);
        // Exactly two all-gather (broadcast) edges feed the two joins.
        let ag = g.edges().iter().filter(|e| e.kind == EdgeKind::AllGather).count();
        assert_eq!(ag, 2);
        // Single final stage: reduce2.
        let fin = g.final_stages();
        assert_eq!(fin.len(), 1);
        assert_eq!(g.stage(fin[0]).name, "reduce2");
        // Four initial scan stages: map1..map4.
        let init = g.initial_stages();
        assert_eq!(init.len(), 4);
        for s in init {
            assert!(g.stage(s).name.starts_with("map"));
        }
        // Longest chain map1->groupby->reduce1->join1->join2->reduce2.
        assert_eq!(g.max_depth(), 5);
    }

    #[test]
    fn chain_shape() {
        let g = chain(5, GB, 0.5);
        assert!(g.validate().is_ok());
        assert!(g.is_single_path());
        assert_eq!(g.num_edges(), 4);
        // Each edge carries the upstream stage's (shrunken) output and
        // volumes halve along the chain.
        assert_eq!(g.edges()[0].bytes, GB / 2);
        assert_eq!(g.edges()[1].bytes, GB / 4);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn chain_zero_panics() {
        chain(0, GB, 0.5);
    }

    #[test]
    fn fan_in_shape() {
        let g = fan_in(&[GB, 2 * GB, 3 * GB], 0.1);
        assert!(g.validate().is_ok());
        assert!(g.is_tree_like());
        assert_eq!(g.initial_stages().len(), 3);
        assert_eq!(g.final_stages().len(), 1);
        assert_eq!(g.max_depth(), 1);
    }

    #[test]
    fn diamond_is_not_tree_like() {
        let g = diamond(GB);
        assert!(g.validate().is_ok());
        assert!(!g.is_tree_like());
        assert_eq!(g.max_depth(), 2);
    }

    #[test]
    fn random_dag_valid_and_deterministic() {
        for seed in 0..20 {
            let cfg = RandomDagConfig::default();
            let g1 = random_dag(seed, &cfg);
            let g2 = random_dag(seed, &cfg);
            assert!(g1.validate().is_ok(), "seed {seed}");
            assert_eq!(g1.num_edges(), g2.num_edges(), "determinism, seed {seed}");
            // Every stage is on some initial->final path: no orphans.
            for s in g1.stages() {
                let has_parent = g1.in_degree(s.id) > 0;
                let has_child = g1.out_degree(s.id) > 0;
                assert!(
                    has_parent || has_child || g1.num_stages() == 1,
                    "orphan stage in seed {seed}"
                );
            }
        }
    }

    #[test]
    fn random_dag_respects_stage_count() {
        let cfg = RandomDagConfig {
            stages: 17,
            layers: 5,
            ..Default::default()
        };
        let g = random_dag(42, &cfg);
        assert_eq!(g.num_stages(), 17);
    }
}
