//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: cheaply cloneable,
//! reference-counted immutable byte buffers (`Bytes`), a growable builder
//! (`BytesMut`), and little-endian cursor-style accessors via the `Buf` /
//! `BufMut` traits. Clones of `Bytes` share one allocation, preserving the
//! zero-copy property the shared-memory bus relies on.

use std::sync::Arc;

/// Reference-counted immutable slice of bytes. Cloning is O(1) and shares
/// the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte string without copying semantics concerns.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    /// Both halves share the original allocation.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// View as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// New buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Cursor-style little-endian reads; consuming methods advance the buffer.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance past `n` bytes.
    fn advance(&mut self, n: usize);
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Little-endian writes into a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u32_le(7);
        m.put_u8(9);
        m.put_u64_le(u64::MAX - 1);
        m.put_i64_le(-42);
        m.put_f64_le(1.5);
        m.put_slice(b"hi");
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(&b[..], b"hi");
    }

    #[test]
    fn clone_is_zero_copy() {
        let b = Bytes::from(vec![1u8; 64]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
    }

    #[test]
    fn split_to_shares_and_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.clone().split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        let h2 = b.split_to(3);
        assert_eq!(&h2[..], &[1, 2, 3]);
        assert_eq!(&b[..], &[4]);
    }
}
