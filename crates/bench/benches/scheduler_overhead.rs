//! Table 1: Ditto's scheduling overhead per query and slot usage.
//!
//! The paper reports 169–264 µs across Q1/Q16/Q94/Q95 at 25–100 % slot
//! usage, roughly flat in the usage because the complexity depends on the
//! DAG, not the slot count. This bench measures the same grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ditto_bench::setup::{prepare, testbed};
use ditto_cluster::SlotDistribution;
use ditto_core::{DittoScheduler, Objective};
use ditto_sql::queries::Query;
use ditto_storage::Medium;
use std::hint::black_box;

fn scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scheduling_time");
    for q in Query::all() {
        let p = prepare(q, Medium::S3);
        for usage in [0.25, 0.5, 0.75, 1.0] {
            let rm = testbed(&SlotDistribution::Uniform { usage });
            group.bench_with_input(
                BenchmarkId::new(q.name(), format!("{}%", (usage * 100.0) as u32)),
                &rm,
                |b, rm| {
                    b.iter(|| {
                        black_box(p.schedule(&DittoScheduler::new(), rm, Objective::Jct))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scheduler_overhead);
criterion_main!(benches);
