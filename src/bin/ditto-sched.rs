//! `ditto-sched` — schedule a JSON job spec with Ditto.
//!
//! ```sh
//! ditto-sched job.json              # read spec from a file
//! cat job.json | ditto-sched        # or from stdin
//! ditto-sched --simulate job.json   # also simulate the schedule
//! ```
//!
//! Prints the schedule as JSON on stdout; exits non-zero with a message
//! on stderr for malformed specs. See `ditto::jobspec` for the format.

use ditto::jobspec::JobSpec;
use std::io::Read as _;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let simulate = args.iter().any(|a| a == "--simulate");
    args.retain(|a| a != "--simulate");
    let text = match args.first().map(|s| s.as_str()) {
        Some("--help" | "-h") | None if args.is_empty() && atty_stdin() => {
            eprintln!("usage: ditto-sched <job.json>   (or pipe a spec on stdin)");
            std::process::exit(2);
        }
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ditto-sched: cannot read {path:?}: {e}");
                std::process::exit(1);
            }
        },
        _ => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("ditto-sched: failed to read stdin");
                std::process::exit(1);
            }
            buf
        }
    };

    let spec = match JobSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ditto-sched: {e}");
            std::process::exit(1);
        }
    };
    let result = if simulate {
        spec.simulate().map(|(json, jct, cost)| {
            eprintln!("simulated: JCT {jct:.2}s, cost {cost:.1} GB·s");
            json
        })
    } else {
        spec.schedule().map(|(_, json)| json)
    };
    match result {
        Ok(json) => {
            println!("{}", serde_json::to_string_pretty(&json).expect("serializable"));
        }
        Err(e) => {
            eprintln!("ditto-sched: {e}");
            std::process::exit(1);
        }
    }
}

/// Crude stdin-is-a-terminal check without extra dependencies: if no file
/// argument was given we try to read stdin anyway; this helper only gates
/// the friendlier usage message.
fn atty_stdin() -> bool {
    false
}
