//! Rendering experiment results: ASCII tables and JSON artifacts.

use serde::Serialize;

/// Render serializable rows as a fixed-width ASCII table. Rows must
/// serialize to JSON objects with scalar fields.
pub fn render_rows<T: Serialize>(rows: &[T]) -> String {
    let values: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| serde_json::to_value(r).expect("rows are serializable"))
        .collect();
    let Some(first) = values.first() else {
        return "(no rows)\n".to_string();
    };
    let headers: Vec<String> = first
        .as_object()
        .expect("row is an object")
        .keys()
        .cloned()
        .collect();

    let fmt_cell = |v: &serde_json::Value| -> String {
        match v {
            serde_json::Value::Number(n) => {
                if let Some(f) = n.as_f64() {
                    if n.is_f64() {
                        format!("{f:.3}")
                    } else {
                        n.to_string()
                    }
                } else {
                    n.to_string()
                }
            }
            serde_json::Value::String(s) => s.clone(),
            other => other.to_string(),
        }
    };

    let mut table: Vec<Vec<String>> = vec![headers.clone()];
    for v in &values {
        let obj = v.as_object().expect("row is an object");
        table.push(headers.iter().map(|h| fmt_cell(&obj[h])).collect());
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();

    let mut out = String::new();
    for (i, row) in table.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:>w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
            out.push('\n');
        }
    }
    out
}

/// Serialize rows to pretty JSON (for EXPERIMENTS.md artifacts).
pub fn write_json<T: Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).expect("rows are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        jct: f64,
        slots: u32,
    }

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            Row {
                name: "ditto".into(),
                jct: 12.3456,
                slots: 283,
            },
            Row {
                name: "nimble".into(),
                jct: 101.5,
                slots: 283,
            },
        ];
        let t = render_rows(&rows);
        assert!(t.contains("name"));
        assert!(t.contains("12.346"));
        assert!(t.contains("nimble"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn empty_rows_ok() {
        let t = render_rows::<Row>(&[]);
        assert!(t.contains("no rows"));
    }

    #[test]
    fn json_roundtrips() {
        let rows = vec![Row {
            name: "x".into(),
            jct: 1.0,
            slots: 1,
        }];
        let j = write_json(&rows);
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v[0]["name"], "x");
    }
}
