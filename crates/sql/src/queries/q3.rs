//! TPC-DS Q3 (simplified): yearly brand sales report — store sales of one
//! item category, grouped by brand, top brands by revenue.
//!
//! Not part of the paper's evaluation set; included to exercise a DAG
//! shape the four evaluated queries lack — a broadcast dimension join
//! feeding a *two-level* aggregation (partial per-partition group-by, then
//! a shuffle-merged final group-by) ending in a top-N:
//!
//! ```text
//! ss_scan ──gather──▶ join_item ──shuffle──▶ agg ──gather──▶ top
//!   item_scan ──(all-gather)──▲
//! ```

use crate::datagen::Database;
use crate::expr::Pred;
use crate::ops::group_by::{AggFunc, AggSpec};
use crate::plan::{JoinKind, QueryPlan, StageOp, StageSpec};
use crate::table::Table;
use ditto_dag::{DagBuilder, EdgeKind, StageKind};
use std::collections::HashMap;

/// The item category under report.
const CATEGORY: &str = "Electronics";
/// Date window: year 1999 (day index 365..729 → sk 366..730).
const DATE_LO: i64 = 366;
const DATE_HI: i64 = 730;
/// Report size.
const TOP_N: usize = 10;

/// Build the Q3 plan.
pub fn plan() -> QueryPlan {
    let dag = DagBuilder::new("q3")
        .stage("ss_scan", StageKind::Map, 0, 0)
        .stage("item_scan", StageKind::Map, 0, 0)
        .stage("join_item", StageKind::Join, 0, 0)
        .stage("agg", StageKind::GroupBy, 0, 0)
        .stage("top", StageKind::Reduce, 0, 0)
        .edge("ss_scan", "join_item", EdgeKind::Gather, 0)
        .edge("item_scan", "join_item", EdgeKind::AllGather, 0)
        .edge("join_item", "agg", EdgeKind::Shuffle, 0)
        .edge("agg", "top", EdgeKind::Gather, 0)
        .build()
        .expect("q3 DAG is well-formed");

    let stages = vec![
        StageSpec {
            op: StageOp::Scan {
                table: "store_sales".into(),
                projection: vec!["ss_item_sk".into(), "ss_net_paid".into()],
                predicate: Some(Pred::between_i64("ss_sold_date_sk", DATE_LO, DATE_HI)),
            },
            output_key: Some("ss_item_sk".into()),
        },
        StageSpec {
            op: StageOp::Scan {
                table: "item".into(),
                projection: vec!["i_item_sk".into(), "i_brand_id".into()],
                predicate: Some(Pred::eq_str("i_category", CATEGORY)),
            },
            output_key: None,
        },
        StageSpec {
            op: StageOp::Join {
                left: "ss_scan".into(),
                right: "item_scan".into(),
                left_key: "ss_item_sk".into(),
                right_key: "i_item_sk".into(),
                kind: JoinKind::Inner,
            },
            output_key: Some("i_brand_id".into()),
        },
        StageSpec {
            op: StageOp::GroupBy {
                input: "join_item".into(),
                keys: vec!["i_brand_id".into()],
                aggs: vec![AggSpec::new(AggFunc::Sum, "ss_net_paid", "revenue")],
                having: None,
            },
            output_key: Some("i_brand_id".into()),
        },
        StageSpec {
            op: StageOp::SortLimit {
                input: "agg".into(),
                col: "revenue".into(),
                desc: true,
                limit: TOP_N,
            },
            output_key: None,
        },
    ];

    QueryPlan {
        name: "q3".into(),
        dag,
        stages,
    }
}

/// Independent oracle: `(brand, revenue)` pairs, top-N by revenue.
pub fn reference(db: &Database) -> Vec<(i64, f64)> {
    let items = db.table("item");
    let brand_of: HashMap<i64, i64> = items
        .column_req("i_item_sk")
        .as_i64()
        .iter()
        .zip(items.column_req("i_brand_id").as_i64())
        .zip(items.column_req("i_category").as_str())
        .filter(|&(_, cat)| cat == CATEGORY)
        .map(|((&sk, &b), _)| (sk, b))
        .collect();
    let ss = db.table("store_sales");
    let dates = ss.column_req("ss_sold_date_sk").as_i64();
    let item_sk = ss.column_req("ss_item_sk").as_i64();
    let paid = ss.column_req("ss_net_paid").as_f64();
    let mut revenue: HashMap<i64, f64> = HashMap::new();
    for i in 0..ss.num_rows() {
        if dates[i] >= DATE_LO && dates[i] <= DATE_HI {
            if let Some(&b) = brand_of.get(&item_sk[i]) {
                *revenue.entry(b).or_insert(0.0) += paid[i];
            }
        }
    }
    let mut out: Vec<(i64, f64)> = revenue.into_iter().collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(TOP_N);
    out
}

/// Extract `(brand, revenue)` rows from the plan output.
pub fn result_rows(t: &Table) -> Vec<(i64, f64)> {
    t.column_req("i_brand_id")
        .as_i64()
        .iter()
        .copied()
        .zip(t.column_req("revenue").as_f64().iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::ScaleConfig;

    #[test]
    fn shape_is_distinct() {
        let p = plan();
        assert_eq!(p.dag.num_stages(), 5);
        assert_eq!(p.dag.max_depth(), 3);
        assert!(p.dag.is_tree_like());
        p.dag.validate().unwrap();
    }

    #[test]
    fn plan_matches_oracle() {
        let db = Database::generate(ScaleConfig::with_sf(0.4));
        let expected = reference(&db);
        assert!(expected.len() >= 5, "premise: several brands sell");
        let out = plan().execute_reference(&db);
        let got = result_rows(&out);
        assert_eq!(got.len(), expected.len());
        // Revenues must match as sets (ties may reorder equal revenues).
        let sum_got: f64 = got.iter().map(|&(_, r)| r).sum();
        let sum_exp: f64 = expected.iter().map(|&(_, r)| r).sum();
        assert!((sum_got - sum_exp).abs() < 1e-6 * sum_exp.abs().max(1.0));
        assert_eq!(got[0].0, expected[0].0, "top brand agrees");
    }

    #[test]
    fn revenue_sorted_descending() {
        let db = Database::generate(ScaleConfig::with_sf(0.4));
        let out = plan().execute_reference(&db);
        let rows = result_rows(&out);
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
