//! Predictor scorecard: a standing Fig.-11-style accuracy report.
//!
//! The simulator and the adaptive engine emit one `predictor.sample`
//! event per executed stage carrying the model's predicted step
//! durations (`pred_setup` … `pred_write`) next to the realized means
//! (`obs_setup` … `obs_write`). [`PredictorScorecard::from_trace`]
//! collects those samples — plus any `drift.detected` marks from the
//! [`DriftDetector`] — into the paper's Fig.-11 shape: a CDF of
//! per-stage prediction error, a per-step-class bias (mean
//! observed/predicted ratio, diagnosing *which* step the model gets
//! wrong), and the drift events annotating samples taken after the
//! environment moved away from the profile.
//!
//! [`DriftDetector`]: https://docs.rs/ditto-cluster

use crate::span::{AttrValue, TraceData};
use crate::timings::StepTimings;
use serde_json::{Map, Number, Value};

const EPS: f64 = 1e-9;

/// One stage's predicted-vs-observed step timings.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorSample {
    /// Stage index.
    pub stage: u32,
    /// Sample instant, trace seconds (the stage's completion).
    pub ts: f64,
    /// Model-predicted per-task mean step durations.
    pub predicted: StepTimings,
    /// Realized per-task mean step durations.
    pub observed: StepTimings,
}

impl PredictorSample {
    /// Relative error of the stage's total step time:
    /// `|observed - predicted| / predicted` (0 when both are ~zero).
    pub fn rel_error(&self) -> f64 {
        let pred = self.predicted.total();
        let obs = self.observed.total();
        if pred > EPS {
            (obs - pred).abs() / pred
        } else if obs > EPS {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// One drift mark from the runtime monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMark {
    /// Stage whose observations breached the drift band.
    pub stage: u32,
    /// Detection instant, trace seconds.
    pub ts: f64,
    /// Smoothed overall observed/predicted ratio at detection.
    pub factor: f64,
    /// Samples the detector had folded in.
    pub samples: u32,
}

/// The collected predictor-accuracy report. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct PredictorScorecard {
    /// Per-stage samples, ordered by stage index.
    pub samples: Vec<PredictorSample>,
    /// Drift detections, in emission order.
    pub drift_marks: Vec<DriftMark>,
}

impl PredictorScorecard {
    /// Collect `predictor.sample` and `drift.detected` events from a
    /// finished trace.
    pub fn from_trace(data: &TraceData) -> Self {
        let mut samples = Vec::new();
        let mut drift_marks = Vec::new();
        for e in &data.events {
            let u64_attr = |key: &str| match e.attr(key) {
                Some(AttrValue::U64(v)) => Some(*v),
                _ => None,
            };
            let f64_attr = |key: &str| match e.attr(key) {
                Some(AttrValue::F64(v)) => Some(*v),
                Some(AttrValue::U64(v)) => Some(*v as f64),
                _ => None,
            };
            match e.name {
                "predictor.sample" => {
                    let Some(stage) = u64_attr("stage") else { continue };
                    let step = |prefix: &str, name: &str| {
                        f64_attr(&format!("{prefix}_{name}")).unwrap_or(0.0)
                    };
                    samples.push(PredictorSample {
                        stage: stage as u32,
                        ts: e.ts,
                        predicted: StepTimings::new(
                            step("pred", "setup"),
                            step("pred", "read"),
                            step("pred", "compute"),
                            step("pred", "write"),
                        ),
                        observed: StepTimings::new(
                            step("obs", "setup"),
                            step("obs", "read"),
                            step("obs", "compute"),
                            step("obs", "write"),
                        ),
                    });
                }
                "drift.detected" => {
                    let Some(stage) = u64_attr("stage") else { continue };
                    drift_marks.push(DriftMark {
                        stage: stage as u32,
                        ts: e.ts,
                        factor: f64_attr("factor").unwrap_or(1.0),
                        samples: u64_attr("samples").unwrap_or(0) as u32,
                    });
                }
                _ => {}
            }
        }
        samples.sort_by(|a, b| a.stage.cmp(&b.stage).then(a.ts.total_cmp(&b.ts)));
        PredictorScorecard {
            samples,
            drift_marks,
        }
    }

    /// Sorted per-stage relative errors — the x-axis of a Fig.-11 CDF.
    pub fn error_cdf(&self) -> Vec<f64> {
        let mut errors: Vec<f64> = self.samples.iter().map(PredictorSample::rel_error).collect();
        errors.sort_by(f64::total_cmp);
        errors
    }

    /// The `q`-quantile (0..=1) of the relative-error distribution, by
    /// nearest-rank; 0 when there are no samples.
    pub fn quantile(&self, q: f64) -> f64 {
        let cdf = self.error_cdf();
        if cdf.is_empty() {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * cdf.len() as f64).ceil() as usize).max(1) - 1;
        cdf[rank.min(cdf.len() - 1)]
    }

    /// Mean observed/predicted ratio per step class — the model's bias
    /// (1.0 = calibrated, >1 = underprediction). Steps with ~zero
    /// prediction are skipped (no signal).
    pub fn step_bias(&self) -> StepTimings {
        let mut sums = StepTimings::zero();
        let mut counts = [0u32; 4];
        for s in &self.samples {
            let obs = s.observed.as_tuple();
            let pred = s.predicted.as_tuple();
            let slots = [
                &mut sums.setup,
                &mut sums.read,
                &mut sums.compute,
                &mut sums.write,
            ];
            let obs = [obs.0, obs.1, obs.2, obs.3];
            let pred = [pred.0, pred.1, pred.2, pred.3];
            for i in 0..4 {
                if pred[i] > EPS {
                    *slots[i] += obs[i] / pred[i];
                    counts[i] += 1;
                }
            }
        }
        StepTimings::new(
            if counts[0] > 0 { sums.setup / counts[0] as f64 } else { 1.0 },
            if counts[1] > 0 { sums.read / counts[1] as f64 } else { 1.0 },
            if counts[2] > 0 { sums.compute / counts[2] as f64 } else { 1.0 },
            if counts[3] > 0 { sums.write / counts[3] as f64 } else { 1.0 },
        )
    }

    /// Stages with at least one drift mark at or before the sample's
    /// instant — samples the profile could not have been right for.
    fn drifted(&self, sample: &PredictorSample) -> bool {
        self.drift_marks
            .iter()
            .any(|m| m.stage == sample.stage && m.ts <= sample.ts + EPS)
    }

    /// Human-readable scorecard table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "predictor scorecard: {} stage samples, {} drift marks\n",
            self.samples.len(),
            self.drift_marks.len()
        ));
        out.push_str(&format!(
            "{:>6} {:>10} {:>10} {:>9} {}\n",
            "stage", "pred(s)", "obs(s)", "err", "drift"
        ));
        for s in &self.samples {
            out.push_str(&format!(
                "{:>6} {:>10.4} {:>10.4} {:>8.1}% {}\n",
                s.stage,
                s.predicted.total(),
                s.observed.total(),
                100.0 * s.rel_error(),
                if self.drifted(s) { "drifted" } else { "-" },
            ));
        }
        let bias = self.step_bias();
        out.push_str(&format!(
            "bias (obs/pred): setup {:.3}  read {:.3}  compute {:.3}  write {:.3}\n",
            bias.setup, bias.read, bias.compute, bias.write
        ));
        out.push_str(&format!(
            "error quantiles: p50 {:.1}%  p90 {:.1}%  max {:.1}%\n",
            100.0 * self.quantile(0.5),
            100.0 * self.quantile(0.9),
            100.0 * self.quantile(1.0),
        ));
        out
    }

    /// The scorecard as a compact JSON object (deterministic order).
    pub fn to_json(&self) -> String {
        let num = |v: f64| Value::Number(Number::Float(v));
        let mut root = Map::new();
        let samples: Vec<Value> = self
            .samples
            .iter()
            .map(|s| {
                let mut m = Map::new();
                m.insert("stage".into(), Value::Number(Number::PosInt(s.stage as u64)));
                m.insert("ts".into(), num(s.ts));
                m.insert("pred_total".into(), num(s.predicted.total()));
                m.insert("obs_total".into(), num(s.observed.total()));
                m.insert("rel_error".into(), num(s.rel_error()));
                m.insert("drifted".into(), Value::Bool(self.drifted(s)));
                Value::Object(m)
            })
            .collect();
        root.insert("samples".into(), Value::Array(samples));
        let marks: Vec<Value> = self
            .drift_marks
            .iter()
            .map(|d| {
                let mut m = Map::new();
                m.insert("stage".into(), Value::Number(Number::PosInt(d.stage as u64)));
                m.insert("ts".into(), num(d.ts));
                m.insert("factor".into(), num(d.factor));
                m.insert("samples".into(), Value::Number(Number::PosInt(d.samples as u64)));
                Value::Object(m)
            })
            .collect();
        root.insert("drift_marks".into(), Value::Array(marks));
        let bias = self.step_bias();
        let mut b = Map::new();
        b.insert("setup".into(), num(bias.setup));
        b.insert("read".into(), num(bias.read));
        b.insert("compute".into(), num(bias.compute));
        b.insert("write".into(), num(bias.write));
        root.insert("step_bias".into(), Value::Object(b));
        root.insert("p50".into(), num(self.quantile(0.5)));
        root.insert("p90".into(), num(self.quantile(0.9)));
        Value::Object(root).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Track};

    fn sample(rec: &Recorder, stage: u32, ts: f64, pred: [f64; 4], obs: [f64; 4]) {
        rec.event(
            "predictor.sample",
            Track::job(stage),
            ts,
            vec![
                ("stage", stage.into()),
                ("pred_setup", pred[0].into()),
                ("pred_read", pred[1].into()),
                ("pred_compute", pred[2].into()),
                ("pred_write", pred[3].into()),
                ("obs_setup", obs[0].into()),
                ("obs_read", obs[1].into()),
                ("obs_compute", obs[2].into()),
                ("obs_write", obs[3].into()),
            ],
        );
    }

    #[test]
    fn perfect_predictions_score_zero_error() {
        let rec = Recorder::new();
        sample(&rec, 0, 1.0, [0.1, 1.0, 2.0, 0.5], [0.1, 1.0, 2.0, 0.5]);
        sample(&rec, 1, 2.0, [0.1, 0.5, 3.0, 0.2], [0.1, 0.5, 3.0, 0.2]);
        let card = PredictorScorecard::from_trace(&rec.finish());
        assert_eq!(card.samples.len(), 2);
        assert_eq!(card.error_cdf(), vec![0.0, 0.0]);
        assert_eq!(card.quantile(0.9), 0.0);
        let bias = card.step_bias();
        for v in [bias.setup, bias.read, bias.compute, bias.write] {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!(card.render().contains("2 stage samples"));
    }

    #[test]
    fn compute_drift_shows_as_compute_bias() {
        let rec = Recorder::new();
        // Compute takes 2x the prediction on both stages.
        sample(&rec, 0, 1.0, [0.1, 1.0, 2.0, 0.5], [0.1, 1.0, 4.0, 0.5]);
        sample(&rec, 1, 2.0, [0.1, 0.5, 3.0, 0.2], [0.1, 0.5, 6.0, 0.2]);
        let card = PredictorScorecard::from_trace(&rec.finish());
        let bias = card.step_bias();
        assert!((bias.compute - 2.0).abs() < 1e-12);
        assert!((bias.read - 1.0).abs() < 1e-12);
        assert!(card.quantile(0.5) > 0.4, "p50 {}", card.quantile(0.5));
    }

    #[test]
    fn drift_marks_annotate_later_samples() {
        let rec = Recorder::new();
        sample(&rec, 3, 1.0, [0.0, 1.0, 1.0, 0.0], [0.0, 1.0, 1.0, 0.0]);
        rec.event(
            "drift.detected",
            Track::scheduler(1),
            1.5,
            vec![
                ("stage", 3u32.into()),
                ("factor", 1.8f64.into()),
                ("samples", 4u64.into()),
            ],
        );
        sample(&rec, 3, 2.0, [0.0, 1.0, 1.0, 0.0], [0.0, 1.0, 1.9, 0.0]);
        let card = PredictorScorecard::from_trace(&rec.finish());
        assert_eq!(card.drift_marks.len(), 1);
        assert!((card.drift_marks[0].factor - 1.8).abs() < 1e-12);
        assert!(!card.drifted(&card.samples[0]), "pre-drift sample clean");
        assert!(card.drifted(&card.samples[1]), "post-drift sample marked");
        let json = card.to_json();
        assert!(json.contains("\"drifted\":true"));
        assert!(json.contains("\"drifted\":false"));
    }

    #[test]
    fn zero_prediction_with_observation_is_infinite_error() {
        let s = PredictorSample {
            stage: 0,
            ts: 0.0,
            predicted: StepTimings::zero(),
            observed: StepTimings::new(0.0, 1.0, 0.0, 0.0),
        };
        assert!(s.rel_error().is_infinite());
        let z = PredictorSample {
            stage: 0,
            ts: 0.0,
            predicted: StepTimings::zero(),
            observed: StepTimings::zero(),
        };
        assert_eq!(z.rel_error(), 0.0);
    }

    #[test]
    fn empty_trace_yields_empty_scorecard() {
        let card = PredictorScorecard::from_trace(&Recorder::new().finish());
        assert!(card.samples.is_empty());
        assert_eq!(card.quantile(0.5), 0.0);
        assert!(card.to_json().contains("\"samples\":[]"));
    }
}
